"""Self-describing binary containers for on-disk campaign artifacts.

The distributed-campaign subsystem ships Python object graphs between
processes and hosts — checkpoint plans (`repro.kernel.checkpoint`) and
shard results (`repro.distributed.shards`).  Both use the same container
layout so every artifact is versioned and identifiable without
unpickling anything:

* line 1 — ASCII magic: ``REPRO-ARTIFACT <format> <kind>`` (``format``
  is this module's container revision, ``kind`` names the payload);
* line 2 — a compact JSON header with sorted keys: whatever metadata the
  writer needs readers to validate *before* deserialising (fingerprints,
  shard coordinates, payload counts);
* the rest — a canonical pickle of the payload object.

**Trust boundary**: the payload is Python pickle, so loading a
container *executes* whatever its bytes describe — header and
fingerprint validation authenticate nothing.  Only read plans and shard
files produced by hosts you trust (the shard protocol assumes the
campaign operator controls every worker); treat a container from
anywhere else as untrusted code.

Canonical pickling
------------------

``pickle`` output is normally not deterministic for ``set`` and
``frozenset`` values: their iteration order depends on the interpreter's
string-hash seed, so the same plan saved twice could produce different
bytes.  :func:`canonical_dumps` pins that down by pickling every set as
its sorted element list (unsortable element mixes fall back to a
``repr``-keyed sort), at a fixed protocol.  Within one interpreter the
save → load → save cycle is therefore byte-stable, which the
serialization tests rely on; object aliasing inside one payload is
preserved exactly as pickle always preserves it (by identity memo).
"""

from __future__ import annotations

import io
import json
import os
import pickle
import sys

MAGIC = "REPRO-ARTIFACT"

#: Container-layout revision (the magic line's ``format`` field).
CONTAINER_FORMAT = 1

#: Pinned pickle protocol: deterministic output and readable by every
#: Python this project supports.
PICKLE_PROTOCOL = 4


class ContainerError(ValueError):
    """A container file is malformed, unsupported, or of the wrong kind."""


def _sorted_elements(value) -> list:
    try:
        return sorted(value)
    except TypeError:
        return sorted(value, key=repr)


class _CanonicalPickler(pickle._Pickler):
    """Pickler emitting sets/frozensets in sorted element order.

    The C pickler serialises built-in containers directly — neither
    ``reducer_override`` nor ``dispatch_table`` intercepts ``set`` /
    ``frozenset`` there — so this subclasses the pure-Python pickler,
    whose per-type ``dispatch`` is overridable.  Payloads are a few
    hundred kilobytes at most; the speed difference is irrelevant.
    """

    dispatch = dict(pickle._Pickler.dispatch)

    def save(self, obj, save_persistent_id=True):
        # Canonicalise string identity: the pickler's memo shares
        # objects by id, so whether two equal strings pickle as one
        # reference depends on interning accidents of the object graph's
        # construction (instance-dict key sharing, parser interning...).
        # Routing every string through sys.intern makes sharing a
        # function of string *value* alone, which is what keeps repeated
        # saves of equal plans byte-identical.
        if type(obj) is str:
            obj = sys.intern(obj)
        return super().save(obj, save_persistent_id)

    def _save_set(self, obj):
        self.save_reduce(set, (_sorted_elements(obj),), obj=obj)

    def _save_frozenset(self, obj):
        self.save_reduce(frozenset, (_sorted_elements(obj),), obj=obj)

    dispatch[set] = _save_set
    dispatch[frozenset] = _save_frozenset


def canonical_dumps(payload) -> bytes:
    """Pickle ``payload`` with deterministic set ordering."""
    buffer = io.BytesIO()
    _CanonicalPickler(buffer, protocol=PICKLE_PROTOCOL).dump(payload)
    return buffer.getvalue()


def canonical_loads(data: bytes):
    return pickle.loads(data)


def pack_container(kind: str, header: dict, payload) -> bytes:
    """The full container file contents for ``payload``."""
    if any(ch.isspace() for ch in kind):
        raise ContainerError(f"container kind {kind!r} must not contain spaces")
    header_line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    return (
        f"{MAGIC} {CONTAINER_FORMAT} {kind}\n{header_line}\n".encode("utf-8")
        + canonical_dumps(payload)
    )


def write_container(path, kind: str, header: dict, payload) -> None:
    """Write atomically: the file exists complete or not at all.

    Shard files double as completion markers — the resume workflow
    treats presence as "this shard finished" — so a crash mid-write
    must not leave a truncated container behind.
    """
    data = pack_container(kind, header, payload)
    staging = f"{path}.tmp"
    with open(staging, "wb") as handle:
        handle.write(data)
    os.replace(staging, path)


def read_header(path, kind: str | None = None) -> dict:
    """The container's JSON header — no payload deserialisation.

    ``kind`` (when given) must match the magic line's kind field.
    """
    with open(path, "rb") as handle:
        header, _ = _read_preamble(handle, path, kind)
    return header


def read_container(path, kind: str | None = None) -> tuple[dict, object]:
    """``(header, payload)`` of a container file, validated."""
    with open(path, "rb") as handle:
        header, _ = _read_preamble(handle, path, kind)
        payload = canonical_loads(handle.read())
    return header, payload


def _read_preamble(handle, path, kind: str | None) -> tuple[dict, str]:
    magic_line = handle.readline()
    try:
        magic, fmt, found_kind = magic_line.decode("ascii").split()
        format_number = int(fmt)
    except (UnicodeDecodeError, ValueError):
        raise ContainerError(f"{path}: not a {MAGIC} container") from None
    if magic != MAGIC:
        raise ContainerError(f"{path}: not a {MAGIC} container")
    if format_number != CONTAINER_FORMAT:
        raise ContainerError(
            f"{path}: unsupported container format {fmt} "
            f"(this reader supports {CONTAINER_FORMAT})"
        )
    if kind is not None and found_kind != kind:
        raise ContainerError(
            f"{path}: container holds {found_kind!r}, expected {kind!r}"
        )
    header_line = handle.readline()
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ContainerError(f"{path}: malformed container header") from None
    if not isinstance(header, dict):
        raise ContainerError(f"{path}: malformed container header")
    return header, found_kind
