"""Seeded mini-C driver generation against a deterministic scripted bus.

:class:`ScriptedBus` and :class:`ProgramGen` are the cross-backend
differential harness's generator, promoted to a library.  The generator
is parameterised by a :class:`Profile` — the cumulative probability
tables steering statement, expression and loop choice — whose
**default values are exactly the thresholds the differential harness
hardcoded**, so ``ProgramGen(seed)`` consumes the RNG stream
identically and regenerates the historical fuzz programs byte for byte
(``tests/test_backend_differential.py`` now imports from here).

Named profiles skew the same generator toward the workload shapes a
driver population needs covered: polling-heavy wait loops,
error-path-dense branching with early returns, DMA-burst/bulk-output
sequences, and switch/branch-dense dispatch.  Every profile keeps the
tables cumulative (each threshold >= its predecessor), so a profile is
a reweighting, never a different grammar.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.minic.errors import MachineFault

# -- deterministic hardware ----------------------------------------------------


class ScriptedBus:
    """Deterministic bus: reads are a hash of (seed, sequence, port).

    The value stream depends on the *sequence* of reads, so any backend
    divergence cascades into different values and is caught.  Writes are
    recorded for comparison; one port is wired to fault.
    """

    FAULT_PORT = 0x666

    def __init__(self, seed: int):
        self.seed = seed
        self.count = 0
        self.writes: list[tuple[int, int, int]] = []

    def read_port(self, address: int, size: int) -> int:
        if address == self.FAULT_PORT:
            raise MachineFault(
                f"bus fault: read of unclaimed port {address:#x}"
            )
        self.count += 1
        value = (
            self.seed * 2654435761 + self.count * 40503 + address * 97
        ) & 0xFFFFFFFF
        return value & ((1 << size) - 1)

    def write_port(self, address: int, value: int, size: int) -> None:
        if address == self.FAULT_PORT:
            raise MachineFault(
                f"bus fault: write of unclaimed port {address:#x}"
            )
        self.writes.append((address, value, size))


# -- generation profiles -------------------------------------------------------

_INT_TYPES = ("int", "u8", "u16", "u32", "s8", "s16")
_PORTS = (0x1F0, 0x1F7, 0x3F6, 0x23C)
_EDGE_INTS = (
    0, 1, 2, 3, 5, 7, 8, 15, 16, 31, 32, 33, 127, 128, 129, 255, 256,
    1000, 32767, 32768, 65535, 65536, 2147483647,
)
_BIN_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
            "==", "!=", "<", ">", "<=", ">=", "&&", "||")
_ASSIGN_OPS = ("=", "+=", "-=", "&=", "|=", "^=")


@dataclass(frozen=True)
class Profile:
    """Cumulative probability tables steering :class:`ProgramGen`.

    Each group is a sequence of cumulative cutoffs compared against one
    ``rng.random()`` roll (``roll < cutoff`` selects the construct, the
    remainder falls to the last alternative), so reweighting a profile
    never changes *how many* RNG values the generator draws for a given
    decision — only which branch wins.  The defaults are the
    differential harness's historical constants.
    """

    name: str = "mixed"
    description: str = "the differential harness's historical mixture"

    # Statement choice (remainder: bare expression statement).
    s_decl: float = 0.22
    s_assign: float = 0.42
    s_incdec: float = 0.50
    s_if: float = 0.58
    s_loop: float = 0.70
    s_switch: float = 0.74
    s_out: float = 0.78
    s_printk: float = 0.81
    s_jump: float = 0.84
    s_ret: float = 0.86
    s_empty: float = 0.88

    # Expression choice (remainder: comma expression).
    e_leaf: float = 0.35
    e_binop: float = 0.60
    e_unary: float = 0.68
    e_cast: float = 0.76
    e_port: float = 0.84
    e_call: float = 0.90
    e_ternary: float = 0.95

    # Loop kind (remainder: the polling idiom).
    l_while: float = 0.4
    l_for: float = 0.7
    l_dowhile: float = 0.85

    # Program shape.
    max_helpers: int = 2
    helper_fuel: int = 6
    run_fuel: int = 14


#: The historical differential-harness mixture, byte-identical to the
#: pre-library generator for every seed.
DEFAULT_PROFILE = Profile()

#: The corpus profiles: four workload shapes a driver population must
#: cover, all reweightings of the same grammar.
PROFILES: dict[str, Profile] = {
    "mixed": DEFAULT_PROFILE,
    "polling": Profile(
        name="polling",
        description="status-register wait loops and port-read-heavy flow",
        s_decl=0.20, s_assign=0.36, s_incdec=0.42, s_if=0.50,
        s_loop=0.74, s_switch=0.76, s_out=0.80, s_printk=0.82,
        s_jump=0.85, s_ret=0.87, s_empty=0.88,
        e_leaf=0.35, e_binop=0.58, e_unary=0.64, e_cast=0.70,
        e_port=0.88, e_call=0.92, e_ternary=0.96,
        l_while=0.15, l_for=0.30, l_dowhile=0.40,
    ),
    "errorpath": Profile(
        name="errorpath",
        description="dense conditionals with early returns on error paths",
        s_decl=0.18, s_assign=0.34, s_incdec=0.40, s_if=0.62,
        s_loop=0.68, s_switch=0.72, s_out=0.75, s_printk=0.79,
        s_jump=0.83, s_ret=0.92, s_empty=0.93,
    ),
    "dma": Profile(
        name="dma",
        description="bulk output bursts inside counted transfer loops",
        s_decl=0.20, s_assign=0.34, s_incdec=0.40, s_if=0.46,
        s_loop=0.62, s_switch=0.64, s_out=0.84, s_printk=0.86,
        s_jump=0.88, s_ret=0.90, s_empty=0.91,
        e_leaf=0.35, e_binop=0.60, e_unary=0.68, e_cast=0.72,
        e_port=0.86, e_call=0.90, e_ternary=0.95,
        l_while=0.15, l_for=0.75, l_dowhile=0.85,
    ),
    "branchy": Profile(
        name="branchy",
        description="switch-dense dispatch and ternary-heavy expressions",
        s_decl=0.16, s_assign=0.30, s_incdec=0.36, s_if=0.52,
        s_loop=0.58, s_switch=0.74, s_out=0.77, s_printk=0.80,
        s_jump=0.83, s_ret=0.85, s_empty=0.86,
        e_leaf=0.35, e_binop=0.60, e_unary=0.68, e_cast=0.76,
        e_port=0.84, e_call=0.86, e_ternary=0.96,
    ),
}


# -- random program generator --------------------------------------------------


class ProgramGen:
    """Seeded generator of sema-valid mini-C programs."""

    def __init__(self, seed: int, profile: Profile | None = None):
        self.rng = random.Random(seed)
        self.profile = profile if profile is not None else DEFAULT_PROFILE
        self.fresh = 0
        self.functions: list[str] = []  # helpers defined so far

    def name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    def literal(self) -> str:
        value = self.rng.choice(_EDGE_INTS)
        roll = self.rng.random()
        if roll < 0.25:
            return f"{value}u"
        if roll < 0.35 and value:
            return f"(-{value})"
        return str(value)

    def expr(self, env: list[str], depth: int) -> str:
        p = self.profile
        roll = self.rng.random()
        if depth <= 0 or roll < p.e_leaf:
            if env and self.rng.random() < 0.6:
                return self.rng.choice(env)
            return self.literal()
        if roll < p.e_binop:
            op = self.rng.choice(_BIN_OPS)
            left = self.expr(env, depth - 1)
            right = self.expr(env, depth - 1)
            return f"({left} {op} {right})"
        if roll < p.e_unary:
            op = self.rng.choice(("-", "~", "!"))
            return f"({op}{self.expr(env, depth - 1)})"
        if roll < p.e_cast:
            ctype = self.rng.choice(_INT_TYPES)
            return f"(({ctype}){self.expr(env, depth - 1)})"
        if roll < p.e_port:
            port = self.rng.choice(_PORTS)
            builtin = self.rng.choice(("inb", "inw", "inl"))
            if self.rng.random() < 0.25 and env:
                return f"{builtin}({self.rng.choice(env)})"
            return f"{builtin}({port})"
        if roll < p.e_call and self.functions:
            callee = self.rng.choice(self.functions)
            return (
                f"{callee}({self.expr(env, depth - 1)}, "
                f"{self.expr(env, depth - 1)})"
            )
        if roll < p.e_ternary:
            cond = self.expr(env, depth - 1)
            return (
                f"({cond} ? {self.expr(env, depth - 1)} "
                f": {self.expr(env, depth - 1)})"
            )
        return f"({self.expr(env, depth - 1)}, {self.expr(env, depth - 1)})"

    def statements(
        self,
        env: list[str],
        fuel: int,
        indent: str,
        in_loop: bool,
        in_switch: bool,
    ) -> list[str]:
        p = self.profile
        lines: list[str] = []
        local_env = list(env)
        count = self.rng.randint(1, max(1, min(5, fuel)))
        for _ in range(count):
            if fuel <= 0:
                break
            fuel -= 1
            roll = self.rng.random()
            if roll < p.s_decl:
                ctype = self.rng.choice(_INT_TYPES)
                var = self.name("v")
                lines.append(
                    f"{indent}{ctype} {var} = {self.expr(local_env, 2)};"
                )
                local_env.append(var)
            elif roll < p.s_assign and local_env:
                target = self.rng.choice(local_env)
                op = self.rng.choice(_ASSIGN_OPS)
                lines.append(
                    f"{indent}{target} {op} {self.expr(local_env, 2)};"
                )
            elif roll < p.s_incdec and local_env:
                target = self.rng.choice(local_env)
                bump = self.rng.choice(("++", "--"))
                if self.rng.random() < 0.5:
                    lines.append(f"{indent}{target}{bump};")
                else:
                    lines.append(f"{indent}{bump}{target};")
            elif roll < p.s_if:
                lines.append(
                    f"{indent}if ({self.expr(local_env, 2)}) {{"
                )
                lines.extend(
                    self.statements(
                        local_env, fuel // 2, indent + "    ", in_loop, in_switch
                    )
                )
                if self.rng.random() < 0.5:
                    lines.append(f"{indent}}} else {{")
                    lines.extend(
                        self.statements(
                            local_env, fuel // 3, indent + "    ",
                            in_loop, in_switch,
                        )
                    )
                lines.append(f"{indent}}}")
            elif roll < p.s_loop:
                lines.extend(
                    self.loop(local_env, fuel // 2, indent)
                )
            elif roll < p.s_switch:
                lines.extend(
                    self.switch(local_env, fuel // 2, indent)
                )
            elif roll < p.s_out:
                port = self.rng.choice(_PORTS)
                builtin = self.rng.choice(("outb", "outw", "outl"))
                lines.append(
                    f"{indent}{builtin}({self.expr(local_env, 1)}, {port});"
                )
            elif roll < p.s_printk and local_env:
                lines.append(
                    f'{indent}printk("x=%d y=%u", '
                    f"{self.rng.choice(local_env)}, {self.expr(local_env, 1)});"
                )
            elif roll < p.s_jump and in_loop:
                lines.append(
                    f"{indent}{self.rng.choice(('break', 'continue'))};"
                )
                break  # statements after a jump are dead; keep programs lively
            elif roll < p.s_ret:
                lines.append(f"{indent}return {self.expr(local_env, 2)};")
                break
            elif roll < p.s_empty:
                lines.append(f"{indent}{{ ; }}")
            else:
                lines.append(f"{indent}{self.expr(local_env, 2)};")
        if not lines:
            lines.append(f"{indent};")
        return lines

    def loop(self, env: list[str], fuel: int, indent: str) -> list[str]:
        p = self.profile
        kind = self.rng.random()
        counter = self.name("i")
        bound = self.rng.choice((1, 2, 3, 5, 9, 17))
        body_env = env + [counter]
        if kind < p.l_while:
            head = [
                f"{indent}int {counter} = 0;",
                f"{indent}while ({counter} < {bound}) {{",
            ]
            tail = [f"{indent}    {counter}++;", f"{indent}}}"]
        elif kind < p.l_for:
            head = [
                f"{indent}for (int {counter} = 0; {counter} < {bound}; "
                f"{counter}++) {{"
            ]
            tail = [f"{indent}}}"]
        elif kind < p.l_dowhile:
            head = [
                f"{indent}int {counter} = {bound};",
                f"{indent}do {{",
            ]
            tail = [f"{indent}    {counter}--;", f"{indent}}} while ({counter} > 0);"]
        else:
            # Polling idiom: loop until a scripted read matches (or budget).
            port = self.rng.choice(_PORTS)
            mask = self.rng.choice((0x1, 0x7, 0x80, 0xFF))
            head = [
                f"{indent}while ((inb({port}) & {mask}) == {mask}) {{",
            ]
            tail = [f"{indent}}}"]
            return head + [f"{indent}    ;"] + tail
        body = self.statements(body_env, fuel, indent + "    ", True, False)
        return head + body + tail

    def switch(self, env: list[str], fuel: int, indent: str) -> list[str]:
        lines = [f"{indent}switch ({self.expr(env, 1)}) {{"]
        labels = self.rng.sample(range(0, 9), self.rng.randint(1, 3))
        for label in labels:
            lines.append(f"{indent}case {label}:")
            if self.rng.random() < 0.2:
                # Declaration inside a case group: exercises the source
                # backend's closure fallback.
                var = self.name("s")
                lines.append(f"{indent}    int {var} = {self.expr(env, 1)};")
                lines.append(f"{indent}    {var} += 1;")
            lines.extend(
                self.statements(env, max(1, fuel // 3), indent + "    ",
                                False, True)
            )
            if self.rng.random() < 0.7:
                lines.append(f"{indent}    break;")
        if self.rng.random() < 0.6:
            lines.append(f"{indent}default:")
            lines.extend(
                self.statements(env, max(1, fuel // 3), indent + "    ",
                                False, True)
            )
        lines.append(f"{indent}}}")
        return lines

    def function(self, name: str, fuel: int) -> str:
        ret = self.rng.choice(("int", "u32", "s16"))
        params = ["int a", "u32 b"]
        env = ["a", "b"]
        body = self.statements(env, fuel, "    ", False, False)
        body.append(f"    return {self.expr(env, 1)};")
        header = f"{ret} {name}({', '.join(params)}) {{"
        self.functions.append(name)
        return "\n".join([header] + body + ["}"])

    def program(self) -> str:
        p = self.profile
        parts = [
            "u32 g_state = 0u;",
            "int g_mark = -1;",
        ]
        for index in range(self.rng.randint(0, p.max_helpers)):
            parts.append(self.function(f"helper{index}", p.helper_fuel))
        parts.append(self.function("run", p.run_fuel))
        return "\n\n".join(parts)
