"""Deterministic generated-driver workloads (`repro.scenarios`).

The paper evaluates robustness on exactly two drivers; the scaling
story needs thousands.  This package promotes the cross-backend
differential fuzzer's program generator
(``tests/test_backend_differential.py``) into a workload library:

* :mod:`repro.scenarios.generator` — :class:`ScriptedBus` (the
  deterministic scripted device) and :class:`ProgramGen` (the seeded
  mini-C program generator), parameterised by :class:`Profile` weight
  tables whose defaults reproduce the differential harness byte for
  byte;
* :mod:`repro.scenarios.corpus` — :class:`Scenario` (one generated
  driver + device-script pair with a stable id and content digest),
  corpus materialisation sized by a ``scale`` knob, and the
  deterministic JSON manifest;
* :mod:`repro.scenarios.campaign` — scenarios as first-class mutation
  campaign targets: enumeration, incremental compile, checkpoint plans
  and the serial/parallel/engine seams, mirroring
  `repro.mutation.runner` exactly.

``python -m repro.scenarios`` generates, lists and runs corpora from
the command line; `repro.engine.ScenarioRequest` serves scenario
campaigns from a warm engine or daemon.
"""

from repro.scenarios.generator import (
    DEFAULT_PROFILE,
    PROFILES,
    Profile,
    ProgramGen,
    ScriptedBus,
)
from repro.scenarios.corpus import (
    DEFAULT_SCENARIO_BUDGET,
    PROFILE_ORDER,
    Scenario,
    build_scenario,
    corpus_manifest,
    generate_corpus,
    manifest_digest,
    manifest_json,
    scenario_from_id,
)
from repro.scenarios.campaign import (
    ScenarioMachine,
    ScenarioSequence,
    prepare_scenario_campaign,
    run_scenario_campaign,
    scenario_boot,
    scenario_harness,
)

__all__ = [
    "DEFAULT_PROFILE",
    "DEFAULT_SCENARIO_BUDGET",
    "PROFILES",
    "PROFILE_ORDER",
    "Profile",
    "ProgramGen",
    "Scenario",
    "ScenarioMachine",
    "ScenarioSequence",
    "ScriptedBus",
    "build_scenario",
    "corpus_manifest",
    "generate_corpus",
    "manifest_digest",
    "manifest_json",
    "prepare_scenario_campaign",
    "run_scenario_campaign",
    "scenario_boot",
    "scenario_from_id",
    "scenario_harness",
]
