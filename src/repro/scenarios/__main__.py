"""Scenario corpus CLI: ``python -m repro.scenarios <command>``.

Commands::

    generate   materialise a corpus to disk (manifest + programs)
    list       print the corpus manifest without writing anything
    run        mutation campaign against one scenario

Everything is deterministic in ``(profile, index)``: ``generate``
writes the identical bytes on every machine for a given ``--scale``,
and ``run`` accepts a bare scenario id (``polling-003``) because the id
alone reconstructs the program.  ``run --engine N`` routes the campaign
through a warm in-process `repro.engine.Engine` with ``N`` workers —
the result is byte-identical to the serial run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.kernel.checkpoint import GRANULARITIES
from repro.mutation.sampling import DEFAULT_SEED
from repro.scenarios.corpus import (
    PROFILE_ORDER,
    generate_corpus,
    manifest_digest,
    manifest_json,
    scenario_from_id,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="materialise a corpus to disk"
    )
    generate.add_argument(
        "--scale", type=int, required=True,
        help=f"corpus size (round-robin across {', '.join(PROFILE_ORDER)})",
    )
    generate.add_argument(
        "--out", default=None,
        help="output directory (default: print the manifest to stdout)",
    )

    listing = commands.add_parser("list", help="print the corpus manifest")
    listing.add_argument("--scale", type=int, required=True)

    run = commands.add_parser(
        "run", help="mutation campaign against one scenario"
    )
    run.add_argument(
        "--id", required=True, dest="scenario_id",
        help='scenario id, e.g. "polling-003"',
    )
    run.add_argument("--fraction", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run.add_argument(
        "--workers", type=int, default=1,
        help="process-pool evaluation with N workers",
    )
    run.add_argument(
        "--engine", type=int, default=None, metavar="N",
        help="evaluate on a warm in-process engine with N workers",
    )
    run.add_argument("--backend", default=None)
    run.add_argument(
        "--boot-checkpoint",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="resume mutants from checkpoints "
        "(default: REPRO_BOOT_CHECKPOINT)",
    )
    run.add_argument(
        "--granularity", choices=GRANULARITIES, default=None,
        help="checkpoint granularity "
        "(default: REPRO_CHECKPOINT_GRANULARITY, else subcall)",
    )
    run.add_argument("--step-budget", type=int, default=None)

    args = parser.parse_args(argv)

    if args.command in ("generate", "list"):
        scenarios = generate_corpus(args.scale)
        text = manifest_json(scenarios)
        if args.command == "list" or args.out is None:
            sys.stdout.write(text)
            return 0
        os.makedirs(os.path.join(args.out, "programs"), exist_ok=True)
        manifest_path = os.path.join(args.out, "manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        for scenario in scenarios:
            program_path = os.path.join(
                args.out, "programs", scenario.filename
            )
            with open(program_path, "w", encoding="utf-8") as handle:
                handle.write(scenario.source)
        print(f"wrote {len(scenarios)} scenarios to {args.out}")
        print(f"manifest sha256: {manifest_digest(scenarios)}")
        return 0

    if args.command == "run":
        from repro.scenarios.campaign import run_scenario_campaign

        scenario = scenario_from_id(args.scenario_id)
        if args.engine is not None:
            from repro.engine import Engine

            with Engine(workers=args.engine) as engine:
                campaign = run_scenario_campaign(
                    scenario,
                    fraction=args.fraction,
                    seed=args.seed,
                    step_budget=args.step_budget,
                    backend=args.backend,
                    boot_checkpoint=args.boot_checkpoint,
                    checkpoint_granularity=args.granularity,
                    engine=engine,
                )
        else:
            campaign = run_scenario_campaign(
                scenario,
                fraction=args.fraction,
                seed=args.seed,
                step_budget=args.step_budget,
                workers=args.workers,
                backend=args.backend,
                boot_checkpoint=args.boot_checkpoint,
                checkpoint_granularity=args.granularity,
            )
        print(json.dumps({
            "driver": campaign.driver,
            "source_sha256": scenario.digest,
            "lines": scenario.lines,
            "enumerated": campaign.enumerated,
            "tested": campaign.tested,
            "detected_fraction": round(campaign.detected_fraction(), 4),
            "checkpoint_stats": campaign.checkpoint_stats,
        }, indent=2))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
