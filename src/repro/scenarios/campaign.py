"""Scenario mutation campaigns: generated drivers as campaign targets.

This module mirrors `repro.mutation.runner` construct for construct —
mutant enumeration, seeded sampling, incremental compilation,
cross-mutant boot checkpointing, serial and process-pool evaluation,
and the warm-engine seam — with the kernel boot harness swapped for the
scenario harness:

* a scenario "machine" is :class:`ScenarioMachine` — the deterministic
  :class:`~repro.scenarios.generator.ScriptedBus` plus trivially
  snapshottable read/write history;
* the "boot sequence" is :class:`ScenarioSequence` — one driver call
  (``run(3, 11)``, the differential harness's invocation) as a
  resumable state machine with the same surface
  `repro.kernel.kernel.BootSequence` exposes to the checkpoint
  recorder;
* classification maps the same exceptions to the same outcome taxonomy
  (`repro.kernel.outcomes`), with a completed run reporting its return
  value and an I/O digest in the detail string so byte-identity
  assertions cover the device interaction too.

The checkpoint machinery (`repro.kernel.checkpoint`) is reused whole
through its ``harness_factory`` seam, so generated programs get the
same record/resume treatment — sub-call snapshots, divergence mapping,
portable plans — as the bundled drivers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.diagnostics import CompileError
from repro.kernel.checkpoint import (
    CheckpointPlan,
    changed_lines_of,
    checkpoint_for_mutant,
    load_plan,
    record_plan,
    resume_boot,
)
from repro.kernel.kernel import DEFAULT_BACKEND
from repro.kernel.outcomes import BootOutcome, BootReport
from repro.minic import SourceFile, compile_program
from repro.minic.compile import interpreter_for
from repro.minic.errors import (
    DevilAssertion,
    InterpreterBug,
    KernelPanic,
    MachineFault,
    StepBudgetExceeded,
)
from repro.minic.incremental import CampaignCompiler
from repro.mutation.generator import enumerate_c_mutants
from repro.mutation.model import Mutant
from repro.mutation.runner import (
    CampaignResult,
    MutantResult,
    ProgressFn,
    _merge_stats,
    _pool_context,
    _stats_delta,
    build_c_pools,
    resolve_checkpoint_options,
)
from repro.mutation.sampling import DEFAULT_SEED, sample_mutants
from repro.mutation.tagging import Region
from repro.scenarios.generator import ScriptedBus

#: The scenario entry point and its arguments — the differential
#: harness's historical invocation, kept so generated programs exercise
#: both parameters.
RUN_ENTRY = "run"
RUN_ARGS = (3, 11)


class ScenarioMachine:
    """The scripted device behind a scenario, with machine-shaped seams.

    Exposes exactly what the campaign and checkpoint layers need from
    `repro.hw.machine.Machine`: a ``bus`` for the interpreter,
    ``snapshot()``/``restore()`` (the bus history is plain data), and
    ``disk_diff()`` (always empty — scenarios have no disk).
    """

    def __init__(self, bus_seed: int):
        self.bus_seed = bus_seed
        self.bus = ScriptedBus(bus_seed)

    def snapshot(self) -> tuple:
        return (self.bus.count, tuple(self.bus.writes))

    def restore(self, snapshot: tuple) -> None:
        count, writes = snapshot
        self.bus.count = count
        self.bus.writes = list(writes)

    def disk_diff(self) -> list:
        return []

    def io_digest(self) -> int:
        """Content digest of the device interaction (reads + writes)."""
        return zlib.crc32(
            repr((self.bus.count, tuple(self.bus.writes))).encode()
        )


class ScenarioSequence:
    """One scenario run as a resumable, call-indexed state machine.

    The same surface :class:`repro.kernel.kernel.BootSequence` offers
    the checkpoint recorder — ``call_index``, ``done``, ``step()``,
    ``run()``, ``snapshot_state()``/``restore_state()`` — over a single
    driver call.  A restored mid-call snapshot re-enters through the
    interpreter's pending-resume protocol, exactly like the kernel's
    re-entrant call sites.
    """

    _STATE_FIELDS = ("call_index", "phase", "result")

    def __init__(self, interp, machine: ScenarioMachine):
        self.interp = interp
        self.machine = machine
        self.call_index = 0
        self.phase = "run"
        self.result = 0

    def snapshot_state(self) -> dict:
        return {name: getattr(self, name) for name in self._STATE_FIELDS}

    def restore_state(self, state: dict) -> None:
        for name in self._STATE_FIELDS:
            setattr(self, name, state[name])

    @property
    def done(self) -> bool:
        return self.phase == "done"

    def run(self) -> None:
        while self.phase != "done":
            self.step()

    def step(self) -> None:
        if self.phase != "run":
            raise KernelPanic(
                f"scenario sequence re-entered in phase {self.phase!r}"
            )
        interp = self.interp
        if not interp.has_function(RUN_ENTRY):
            raise KernelPanic(
                f"scenario: driver lacks required entry {RUN_ENTRY!r}"
            )
        if interp.has_pending_resume():
            pending = interp.pending_call_name()
            if pending != RUN_ENTRY:
                raise InterpreterBug(
                    f"scenario resume expected pending {RUN_ENTRY!r}, "
                    f"found {pending!r}"
                )
            value = interp.resume_in_flight()
        else:
            value = interp.call(RUN_ENTRY, *RUN_ARGS)
        self.result = int(value) if value is not None else 0
        self.call_index += 1
        self.phase = "done"


def scenario_harness(interp, machine: ScenarioMachine):
    """The ``harness_factory`` for `repro.kernel.checkpoint`.

    Returns ``(sequence, classifier)``: the scenario sequence over
    ``interp`` and a classifier mapping the run to the standard outcome
    taxonomy — same exception precedence as
    `repro.kernel.kernel.classify_run`, with damage assessment replaced
    by the completed run's ``ret``/``io`` detail (scenarios have no
    filesystem, and the detail makes device-interaction divergence
    visible to byte-identity assertions).

    One scenario-only addition: an ``unbound identifier``
    `InterpreterBug` classifies as ``CRASH``.  A mutant identifier swap
    can reference a variable whose declaration a ``switch`` dispatch
    jumped over — statically in scope (so the mutant compiles), never
    bound at run time.  That is undefined behaviour in the *mutant*, the
    same class as the null dereferences `MachineFault` covers, and every
    backend raises it with an identical message, so the report stays
    byte-identical across backends and cold/checkpointed boots.  Any
    other `InterpreterBug` still propagates: those are harness bugs and
    must stay loud.
    """
    sequence = ScenarioSequence(interp, machine)

    def classifier(run, machine, interp) -> BootReport:
        try:
            run()
        except DevilAssertion as event:
            outcome, detail = BootOutcome.RUN_TIME_CHECK, str(event)
        except KernelPanic as event:
            outcome, detail = BootOutcome.HALT, str(event)
        except MachineFault as event:
            outcome, detail = BootOutcome.CRASH, str(event)
        except StepBudgetExceeded as event:
            outcome, detail = BootOutcome.INFINITE_LOOP, str(event)
        except InterpreterBug as event:
            if not str(event).startswith("unbound identifier"):
                raise
            outcome, detail = BootOutcome.CRASH, str(event)
        else:
            outcome = BootOutcome.BOOT
            detail = f"ret {sequence.result}; io {machine.io_digest():#010x}"
        return BootReport(
            outcome=outcome,
            detail=detail,
            steps=interp.steps,
            coverage=set(interp.coverage),
            log=list(interp.log),
            disk_diff=machine.disk_diff(),
        )

    return sequence, classifier


def scenario_boot(
    program,
    machine: ScenarioMachine,
    step_budget: int,
    backend: str | None = None,
) -> BootReport:
    """Run one scenario program cold and classify, like `repro.kernel.boot`."""
    interp_class = interpreter_for(backend or DEFAULT_BACKEND)
    interp = interp_class(
        program, machine.bus, step_budget=step_budget, defer_globals=True
    )
    sequence, classifier = scenario_harness(interp, machine)

    def run() -> None:
        interp.initialize_globals()
        sequence.run()

    return classifier(run, machine, interp)


# -- campaign setup ------------------------------------------------------------


@dataclass
class ScenarioContext:
    """Per-process scenario evaluation state (mirrors ``_EvalContext``)."""

    scenario: object
    budget: int
    backend: str | None
    compiler: CampaignCompiler | None
    checkpoint: bool = False
    granularity: str = "subcall"
    plan_path: str | None = None
    granularity_pinned: bool = False
    _plan: CheckpointPlan | None = None
    _machine: ScenarioMachine | None = None
    _pristine: object = None

    @property
    def source(self) -> str:
        return self.scenario.source

    @property
    def driver_filename(self) -> str:
        return self.scenario.filename

    @classmethod
    def build(
        cls,
        scenario,
        budget: int,
        backend: str | None,
        compile_cache: bool,
        checkpoint: bool = False,
        granularity: str = "subcall",
        compiler: CampaignCompiler | None = None,
        plan_path: str | None = None,
        granularity_pinned: bool = False,
    ) -> "ScenarioContext":
        if compile_cache and compiler is None:
            compiler = CampaignCompiler(scenario.filename, scenario.source, {})
        if not compile_cache:
            compiler = None
        return cls(
            scenario=scenario,
            budget=budget,
            backend=backend,
            compiler=compiler,
            checkpoint=checkpoint,
            granularity=granularity,
            plan_path=plan_path,
            granularity_pinned=granularity_pinned,
        )

    def ensure_plan(self) -> CheckpointPlan:
        if self._plan is None:
            self._machine = ScenarioMachine(self.scenario.bus_seed)
            self._pristine = self._machine.snapshot()
            if self.plan_path is not None:
                self._plan = load_plan(
                    self.plan_path,
                    source=self.scenario.source,
                    driver_filename=self.scenario.filename,
                    granularity=(
                        self.granularity if self.granularity_pinned else None
                    ),
                    step_budget=self.budget,
                )
                self.granularity = self._plan.granularity
            else:
                if self.compiler is not None:
                    baseline = self.compiler.baseline_program
                else:
                    baseline = compile_program(
                        [
                            SourceFile(
                                self.scenario.filename, self.scenario.source
                            )
                        ]
                    )
                self._plan = record_plan(
                    baseline,
                    self._machine,
                    self.budget,
                    backend=self.backend,
                    granularity=self.granularity,
                    harness_factory=scenario_harness,
                )
            if self._plan.report.outcome is not BootOutcome.BOOT:
                raise RuntimeError(
                    "scenario checkpoint recording requires a clean "
                    f"baseline run: {self._plan.report}"
                )
        return self._plan

    def stats_view(self) -> dict | None:
        """Current checkpoint counters, or ``None`` before any boot."""
        return dict(self._plan.stats) if self._plan is not None else None


@dataclass
class ScenarioSetup:
    """The deterministic front half of one scenario campaign.

    Everything up to enumeration, sampling and the baseline run —
    derived from ``(scenario_id, fraction, seed)`` alone, so every
    process (serial runner, pool worker, engine worker, daemon) sees
    the identical ``tested`` list.
    """

    scenario: object
    fraction: float
    seed: int
    driver_filename: str
    source: str
    mutants: list[Mutant]
    tested: list[Mutant]
    clean_steps: int
    budget: int
    compiler: CampaignCompiler | None = None

    @property
    def enumerated(self) -> int:
        return len(self.mutants)


def prepare_scenario_campaign(
    scenario,
    fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    step_budget: int | None = None,
    backend: str | None = None,
    compile_cache: bool = True,
) -> ScenarioSetup:
    """Enumerate, sample and baseline-run one scenario campaign."""
    from repro.scenarios.corpus import DEFAULT_SCENARIO_BUDGET

    files = [SourceFile(scenario.filename, scenario.source)]
    pools = build_c_pools(files, {}, scenario.filename)
    compiler = (
        CampaignCompiler(scenario.filename, scenario.source, {})
        if compile_cache
        else None
    )
    mutants = enumerate_c_mutants(
        scenario.source,
        scenario.filename,
        pools,
        include_registry={},
        # Generated drivers carry no `/* HW-BEGIN */` tags: the whole
        # program is hardware-interaction code, so the whole source is
        # the mutation region.
        regions=[Region(0, len(scenario.source))],
        compiler=compiler,
    )
    tested = sample_mutants(mutants, fraction, seed)
    # Fixed budget (not derived from measured baseline steps) so every
    # process derives the identical plan fingerprint from the spec.
    budget = step_budget or DEFAULT_SCENARIO_BUDGET
    baseline = scenario_boot(
        compile_program(files),
        ScenarioMachine(scenario.bus_seed),
        step_budget=budget,
        backend=backend,
    )
    if baseline.outcome is not BootOutcome.BOOT:
        raise RuntimeError(
            f"baseline scenario {scenario.scenario_id} does not run "
            f"cleanly: {baseline}"
        )
    return ScenarioSetup(
        scenario=scenario,
        fraction=fraction,
        seed=seed,
        driver_filename=scenario.filename,
        source=scenario.source,
        mutants=mutants,
        tested=tested,
        clean_steps=baseline.steps,
        budget=budget,
        compiler=compiler,
    )


# -- evaluation ----------------------------------------------------------------


def scenario_run_one(mutant: Mutant, context: ScenarioContext) -> MutantResult:
    """One mutant through the scenario harness (mirrors ``_run_one``)."""
    mutated = mutant.apply(context.scenario.source)
    try:
        if context.compiler is not None:
            program = context.compiler.compile_variant(mutated)
        else:
            program = compile_program(
                [SourceFile(context.scenario.filename, mutated)]
            )
    except CompileError as error:
        return MutantResult(
            mutant=mutant,
            outcome=BootOutcome.COMPILE_CHECK,
            detail=error.diagnostics[0].code if error.diagnostics else "error",
        )
    if context.checkpoint:
        report = _checkpointed_scenario_boot(program, mutant, context)
    else:
        report = scenario_boot(
            program,
            ScenarioMachine(context.scenario.bus_seed),
            step_budget=context.budget,
            backend=context.backend,
        )
    outcome = report.outcome
    if outcome is BootOutcome.BOOT:
        site_line = (mutant.site.file, mutant.site.line)
        if site_line not in report.coverage:
            outcome = BootOutcome.DEAD_CODE
    return MutantResult(mutant=mutant, outcome=outcome, detail=report.detail)


def _checkpointed_scenario_boot(
    program, mutant: Mutant, context: ScenarioContext
) -> BootReport:
    """Run a mutant from the deepest provably-safe checkpoint.

    Same decision procedure and fidelity argument as the driver
    runner's ``_checkpointed_boot``: resumption restores the exact
    bus-history/interpreter/sequence state the mutant itself would
    reach, cold runs reinstate the pristine machine snapshot, and boots
    run on the ``hybrid`` backend unless the campaign pinned ``tree``.
    """
    plan = context.ensure_plan()
    machine = context._machine
    checkpoint = None
    lines = changed_lines_of(mutant.site, mutant.replacement)
    if lines is not None:
        checkpoint = checkpoint_for_mutant(plan, lines)
    backend = "hybrid" if context.backend != "tree" else "tree"
    if checkpoint is not None:
        plan.stats["resumed"] += 1
        if checkpoint.subcall:
            plan.stats["resumed_subcall"] += 1
        plan.stats["steps_skipped"] += checkpoint.steps
        return resume_boot(
            program,
            checkpoint,
            machine,
            context.budget,
            backend=backend,
            harness_factory=scenario_harness,
        )
    plan.stats["cold"] += 1
    machine.restore(context._pristine)
    return scenario_boot(
        program, machine, step_budget=context.budget, backend=backend
    )


def run_scenario_campaign(
    scenario,
    fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    step_budget: int | None = None,
    progress: ProgressFn | None = None,
    workers: int = 1,
    backend: str | None = None,
    compile_cache: bool = True,
    boot_checkpoint: bool | None = None,
    checkpoint_granularity: str | None = None,
    engine=None,
) -> CampaignResult:
    """Mutation campaign against one scenario (object or stable id).

    The same knobs and guarantees as
    `repro.mutation.runner.run_driver_campaign`: ``workers=N`` merges
    by mutant index (identical to serial), checkpoint options resolve
    from the same environment variables, and ``engine=`` routes the
    campaign through a warm `repro.engine.Engine` as a
    ``ScenarioRequest``.  The result's ``driver`` label is
    ``"scenario:<id>"`` on every path, so engine/daemon results compare
    byte-identical to serial ones.
    """
    if isinstance(scenario, str):
        from repro.scenarios.corpus import scenario_from_id

        scenario = scenario_from_id(scenario)
    if engine is not None:
        from repro.engine.state import ScenarioRequest

        return engine.run_scenario_campaign(
            ScenarioRequest(
                scenario_id=scenario.scenario_id,
                fraction=fraction,
                seed=seed,
                backend=backend,
                compile_cache=compile_cache,
                boot_checkpoint=boot_checkpoint,
                granularity=checkpoint_granularity,
                step_budget=step_budget,
            ),
            progress=progress,
        )
    boot_checkpoint, checkpoint_granularity, granularity_pinned = (
        resolve_checkpoint_options(boot_checkpoint, checkpoint_granularity)
    )
    setup = prepare_scenario_campaign(
        scenario,
        fraction,
        seed,
        step_budget=step_budget,
        backend=backend,
        compile_cache=compile_cache,
    )
    campaign = CampaignResult(
        driver=f"scenario:{scenario.scenario_id}",
        enumerated=setup.enumerated,
        clean_steps=setup.clean_steps,
        step_budget=setup.budget,
    )
    indices = list(range(len(setup.tested)))
    if workers > 1 and len(indices) > 1:
        campaign.results, campaign.checkpoint_stats = (
            _evaluate_scenario_parallel(
                setup,
                indices,
                backend,
                compile_cache,
                boot_checkpoint,
                checkpoint_granularity,
                granularity_pinned,
                workers,
                progress,
            )
        )
        return campaign
    context = ScenarioContext.build(
        setup.scenario,
        setup.budget,
        backend,
        compile_cache,
        checkpoint=boot_checkpoint,
        granularity=checkpoint_granularity,
        compiler=setup.compiler,
        granularity_pinned=granularity_pinned,
    )
    results = []
    for done, index in enumerate(indices):
        if progress is not None:
            progress(done, len(indices))
        results.append(scenario_run_one(setup.tested[index], context))
    campaign.results, campaign.checkpoint_stats = results, context.stats_view()
    return campaign


# -- parallel evaluation -------------------------------------------------------

#: Per-process scenario context, built once by the pool initialiser.
_WORKER_CONTEXT: ScenarioContext | None = None


def _worker_init(
    scenario,
    budget: int,
    backend: str | None,
    compile_cache: bool,
    checkpoint: bool,
    granularity: str,
    plan_path: str | None,
    granularity_pinned: bool,
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ScenarioContext.build(
        scenario,
        budget,
        backend,
        compile_cache,
        checkpoint=checkpoint,
        granularity=granularity,
        plan_path=plan_path,
        granularity_pinned=granularity_pinned,
    )


def _worker_eval(
    item: tuple[int, Mutant],
) -> tuple[int, MutantResult, dict | None]:
    index, mutant = item
    context = _WORKER_CONTEXT
    assert context is not None
    before = context.stats_view()
    result = scenario_run_one(mutant, context)
    return index, result, _stats_delta(before, context.stats_view())


def _evaluate_scenario_parallel(
    setup: ScenarioSetup,
    indices: list[int],
    backend: str | None,
    compile_cache: bool,
    boot_checkpoint: bool,
    checkpoint_granularity: str,
    granularity_pinned: bool,
    workers: int,
    progress: ProgressFn | None,
) -> tuple[list[MutantResult], dict | None]:
    """Pool evaluation merging by index (mirrors ``_evaluate_parallel``).

    The frozen :class:`~repro.scenarios.corpus.Scenario` (plain
    str/int fields) ships through the pool initialiser, so spawn-start
    workers rebuild the identical context without re-running the
    generator's acceptance gate.
    """
    context = _pool_context()
    worker_count = min(workers, len(indices))
    chunksize = max(1, len(indices) // (worker_count * 8))
    slots = {index: slot for slot, index in enumerate(indices)}
    results: list[MutantResult | None] = [None] * len(indices)
    stats: dict | None = None
    with context.Pool(
        worker_count,
        initializer=_worker_init,
        initargs=(
            setup.scenario,
            setup.budget,
            backend,
            compile_cache,
            boot_checkpoint,
            checkpoint_granularity,
            None,
            granularity_pinned,
        ),
    ) as pool:
        completed = 0
        for index, result, delta in pool.imap_unordered(
            _worker_eval,
            [(index, setup.tested[index]) for index in indices],
            chunksize=chunksize,
        ):
            results[slots[index]] = result
            stats = _merge_stats(stats, delta)
            if progress is not None:
                progress(completed, len(indices))
            completed += 1
    assert all(result is not None for result in results)
    return results, stats  # type: ignore[return-value]
