"""Deterministic scenario corpora: ids, digests, and the manifest.

A :class:`Scenario` is one generated driver + device-script pair.  Its
identity is pure data — ``(profile, index)`` — and everything else is
derived deterministically from it:

* the generator seed is ``crc32("scenario:<profile>:<index>:<attempt>")``
  (never Python's per-process randomised ``hash``), where ``attempt``
  counts acceptance-gate rejections, so the seed stream is stable
  across processes, platforms and Python versions;
* the bus seed is ``crc32("bus:<profile>:<index>")`` — attempt-
  independent, so the device script is a property of the scenario slot;
* the acceptance gate requires the candidate program to compile and to
  classify :data:`~repro.kernel.outcomes.BootOutcome.BOOT` under the
  scenario harness within :data:`DEFAULT_SCENARIO_BUDGET` steps
  (backend-independent: the differential suite asserts step equality
  across backends), so every corpus member is a usable baseline for
  mutation campaigns.

:func:`generate_corpus` materialises ``scale`` scenarios round-robin
across :data:`PROFILE_ORDER`; :func:`corpus_manifest` /
:func:`manifest_json` / :func:`manifest_digest` produce the
byte-identical-across-processes manifest the determinism tests and
``tests/goldens/`` pin.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass

from repro.minic import SourceFile, compile_program
from repro.diagnostics import CompileError
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import count_code_lines
from repro.scenarios.generator import PROFILES, ProgramGen
from repro.scenarios.campaign import ScenarioMachine, scenario_boot

#: Corpus profiles in round-robin materialisation order.
PROFILE_ORDER = ("polling", "errorpath", "dma", "branchy")

#: The fixed step budget scenario boots run under — both the acceptance
#: gate here and campaign evaluation (`repro.scenarios.campaign`), so a
#: scenario accepted into the corpus always boots inside campaign
#: budget.
DEFAULT_SCENARIO_BUDGET = 30_000

#: Acceptance-gate rejection cap per scenario slot; in practice the
#: overwhelming majority of candidate seeds boot cleanly.
MAX_ATTEMPTS = 32

#: Manifest schema revision.
CORPUS_VERSION = 1


def _scenario_seed(profile: str, index: int, attempt: int) -> int:
    return zlib.crc32(f"scenario:{profile}:{index}:{attempt}".encode())


def _bus_seed(profile: str, index: int) -> int:
    return zlib.crc32(f"bus:{profile}:{index}".encode())


@dataclass(frozen=True)
class Scenario:
    """One generated driver + device script, fully determined by its id."""

    profile: str
    index: int
    seed: int
    bus_seed: int
    attempt: int
    source: str

    @property
    def scenario_id(self) -> str:
        return f"{self.profile}-{self.index:03d}"

    @property
    def filename(self) -> str:
        return f"{self.scenario_id}.c"

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.source.encode("utf-8")).hexdigest()

    @property
    def lines(self) -> int:
        return count_code_lines(self.source)


def build_scenario(profile: str, index: int) -> Scenario:
    """Materialise scenario ``(profile, index)`` deterministically.

    Candidate seeds are tried in attempt order until one passes the
    acceptance gate (compiles, clean ``BOOT`` within the fixed budget);
    the winning attempt number is part of the scenario, so regeneration
    never re-runs the gate differently.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown scenario profile {profile!r}; "
            f"available: {', '.join(sorted(PROFILES))}"
        )
    for attempt in range(MAX_ATTEMPTS):
        seed = _scenario_seed(profile, index, attempt)
        source = ProgramGen(seed, PROFILES[profile]).program()
        scenario = Scenario(
            profile=profile,
            index=index,
            seed=seed,
            bus_seed=_bus_seed(profile, index),
            attempt=attempt,
            source=source,
        )
        try:
            program = compile_program([SourceFile(scenario.filename, source)])
        except CompileError:  # pragma: no cover - generator emits valid code
            continue
        report = scenario_boot(
            program,
            ScenarioMachine(scenario.bus_seed),
            step_budget=DEFAULT_SCENARIO_BUDGET,
        )
        if report.outcome is BootOutcome.BOOT:
            return scenario
    raise RuntimeError(
        f"no candidate for scenario {profile}-{index:03d} passed the "
        f"acceptance gate in {MAX_ATTEMPTS} attempts"
    )


def scenario_from_id(scenario_id: str) -> Scenario:
    """Rebuild a scenario from its stable id (``"polling-003"``)."""
    profile, _, index_text = scenario_id.rpartition("-")
    if not profile or not index_text.isdigit():
        raise ValueError(f"malformed scenario id {scenario_id!r}")
    return build_scenario(profile, int(index_text))


def generate_corpus(scale: int) -> list[Scenario]:
    """``scale`` scenarios, round-robin across :data:`PROFILE_ORDER`.

    Scenario ``k`` is ``(PROFILE_ORDER[k % len], index=k // len)``, so
    growing ``scale`` only appends — a scale-50 corpus contains the
    scale-8 corpus as a prefix, and every scenario's identity is
    independent of the scale it was materialised at.
    """
    if scale < 1:
        raise ValueError(f"corpus scale {scale} must be >= 1")
    return [
        build_scenario(
            PROFILE_ORDER[k % len(PROFILE_ORDER)], k // len(PROFILE_ORDER)
        )
        for k in range(scale)
    ]


def corpus_manifest(scenarios: list[Scenario]) -> dict:
    """The corpus as pure data: ids, derivation seeds, content digests."""
    return {
        "version": CORPUS_VERSION,
        "scale": len(scenarios),
        "profiles": sorted({scenario.profile for scenario in scenarios}),
        "scenarios": [
            {
                "id": scenario.scenario_id,
                "profile": scenario.profile,
                "index": scenario.index,
                "seed": scenario.seed,
                "bus_seed": scenario.bus_seed,
                "attempt": scenario.attempt,
                "lines": scenario.lines,
                "source_sha256": scenario.digest,
            }
            for scenario in scenarios
        ],
    }


def manifest_json(scenarios: list[Scenario]) -> str:
    """Canonical manifest serialisation — byte-identical everywhere."""
    return (
        json.dumps(corpus_manifest(scenarios), indent=2, sort_keys=True)
        + "\n"
    )


def manifest_digest(scenarios: list[Scenario]) -> str:
    """sha256 of the canonical manifest bytes."""
    return hashlib.sha256(
        manifest_json(scenarios).encode("utf-8")
    ).hexdigest()
