"""Driver sources for the evaluation.

Two IDE drivers implement the same three-function boot ABI
(`repro.kernel.DRIVER_ABI`):

* :mod:`repro.drivers.ide_c` — the "original Linux driver": raw port I/O
  through ``#define``'d port and bit constants, hardware-operating code
  wrapped in ``/* HW-BEGIN */`` ... ``/* HW-END */`` mutation tags
  (paper §3.3: "we manually insert tags to mark the corresponding
  regions");
* :mod:`repro.drivers.ide_cdevil` — the re-engineered driver: CDevil glue
  over the stubs generated from ``specs/ide_piix4.dil``, written in the
  status-switch style the paper notes is responsible for the Devil
  driver's dead-code mutants.

`assemble_c_program` / `assemble_cdevil_program` build the compile-ready
source lists, the latter generating the stub header on the fly.
"""

from __future__ import annotations

from repro.devil import compile_spec
from repro.devil.codegen import CodegenOptions, generate_header
from repro.drivers.busmouse_cdevil import BUSMOUSE_CDEVIL_SOURCE
from repro.drivers.ide_c import IDE_C_SOURCE
from repro.drivers.ide_cdevil import IDE_CDEVIL_SOURCE
from repro.minic.program import SourceFile
from repro.specs import load_spec_source

IDE_HEADER_NAME = "ide.dil.h"
BUSMOUSE_HEADER_NAME = "busmouse.dil.h"


#: The hardware context the stubs are generated for (paper §2: stubs are
#: generated "for the specific hardware/software context").
IDE_BASES = (("cmd", 0x1F0), ("ctl", 0x3F6), ("data", 0x1F0))
BUSMOUSE_BASES = (("base", 0x23C),)


def ide_stub_header(mode: str = "debug") -> str:
    """The generated stub header for the PIIX4 IDE spec."""
    spec = compile_spec(load_spec_source("ide_piix4"))
    return generate_header(spec, CodegenOptions(mode=mode, bases=IDE_BASES))


def busmouse_stub_header(mode: str = "debug", prefix: str = "bm") -> str:
    spec = compile_spec(load_spec_source("logitech_busmouse"))
    return generate_header(
        spec, CodegenOptions(mode=mode, prefix=prefix, bases=BUSMOUSE_BASES)
    )


def assemble_c_program(
    driver_source: str | None = None,
) -> tuple[list[SourceFile], dict[str, str]]:
    """Sources + include registry for the original C driver."""
    text = IDE_C_SOURCE if driver_source is None else driver_source
    return [SourceFile("ide_c.c", text)], {}


def assemble_cdevil_program(
    driver_source: str | None = None,
    mode: str = "debug",
) -> tuple[list[SourceFile], dict[str, str]]:
    """Sources + include registry for the CDevil driver."""
    text = IDE_CDEVIL_SOURCE if driver_source is None else driver_source
    return (
        [SourceFile("ide_cdevil.c", text)],
        {IDE_HEADER_NAME: ide_stub_header(mode)},
    )


__all__ = [
    "BUSMOUSE_CDEVIL_SOURCE",
    "BUSMOUSE_HEADER_NAME",
    "IDE_CDEVIL_SOURCE",
    "IDE_C_SOURCE",
    "IDE_HEADER_NAME",
    "assemble_c_program",
    "assemble_cdevil_program",
    "busmouse_stub_header",
    "ide_stub_header",
]
