'''The Devil re-engineered IDE driver: CDevil glue over generated stubs.

Everything except the ``#include`` is CDevil code — the mutation target of
Table 4.  Stylistic points that matter to the evaluation (and that the
paper calls out):

* every command is followed by a ``switch`` on a status helper whose error
  arms are never taken during a clean boot — the source of the Devil
  driver's dead-code mutants;
* sector loops run over the kernel-supplied ``len`` instead of a local
  literal (the glue takes transfer sizes from the request, the way the
  paper's re-engineered drivers take them from ``struct request``);
* ``dil_eq`` is used for enum comparison, giving the run-time type check
  of paper §2.3 a call site.
'''

IDE_CDEVIL_SOURCE = r"""
/* repro IDE disk driver, re-engineered over Devil stubs. */
#include "ide.dil.h"

/* CDEVIL-BEGIN */
#define IDE_TIMEOUT 5000

static int wait_not_busy(void)
{
    int t;
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (dil_eq(get_busy(), IDLE)) { return 0; }
    }
    return -1;
}

static int wait_ready(void)
{
    int t;
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (dil_eq(get_busy(), IDLE) && dil_eq(get_ready(), READY)) { return 0; }
    }
    return -1;
}

static int wait_data(void)
{
    int t;
    for (t = 0; t < IDE_TIMEOUT; t++) {
        if (dil_eq(get_busy(), IDLE)) {
            if (dil_eq(get_error_bit(), ERROR_SET)) { return -2; }
            if (dil_eq(get_data_request(), DATA_READY)) { return 0; }
        }
    }
    return -1;
}

static int command_status(void)
{
    if (wait_not_busy() != 0) { return -1; }
    if (dil_eq(get_error_bit(), ERROR_SET)) { return -2; }
    return 0;
}

int ide_init(void)
{
    u32 sectors;
    u16 word;
    u16 device_type;
    int i;

    devil_init();
    set_soft_reset(1u);
    udelay(10);
    set_soft_reset(0u);
    switch (command_status()) {
    case 0:
        break;
    case -1:
        printk("ide: reset timeout\n");
        return -1;
    case -2:
        printk("ide: reset error %d\n", get_error());
        return -2;
    }

    set_irq_masked(1u);
    set_Drive(MASTER);
    set_addressing(LBA);
    if (wait_ready() != 0) { return -3; }
    if (!dil_eq(get_Drive(), MASTER)) { return -4; }
    if (!dil_eq(get_addressing(), LBA)) { return -4; }

    set_feature(3u);
    set_Command(SET_FEATURES);
    switch (command_status()) {
    case 0:
        break;
    default:
        printk("ide: set features rejected\n");
        return -5;
    }

    set_Command(IDENTIFY);
    if (wait_data() != 0) { return -6; }
    sectors = 0u;
    device_type = 0u;
    for (i = 0; i < 256; i++) {
        word = (u16)get_sector_data();
        if (i == 0) { device_type = word; }
        if (i == 60) { sectors = sectors | (u32)word; }
        if (i == 61) { sectors = sectors | ((u32)word << 16); }
    }
    if ((device_type & 0x8000u) != 0u) { return -7; }
    printk("ide: disk with %u sectors\n", sectors);
    return (int)sectors;
}

static int do_transfer(u32 lba, u16 buf[], u32 len, int writing)
{
    u32 i;
    if (wait_ready() != 0) { return -1; }
    set_sector_count(1u);
    set_lba(lba);
    if (writing) {
        set_Command(WRITE_SECTORS);
    } else {
        set_Command(READ_SECTORS);
    }
    if (wait_data() != 0) { return -2; }
    if (writing) {
        for (i = 0u; i < len; i++) { set_sector_data(buf[i]); }
    } else {
        for (i = 0u; i < len; i++) { buf[i] = (u16)get_sector_data(); }
    }
    switch (command_status()) {
    case 0:
        break;
    case -1:
        printk("ide: transfer timeout\n");
        return -3;
    case -2:
        printk("ide: transfer error %d\n", get_error());
        return -4;
    }
    return 0;
}

int ide_read(u32 lba, u16 buf[], u32 len)
{
    return do_transfer(lba, buf, len, 0);
}

int ide_write(u32 lba, u16 buf[], u32 len)
{
    return do_transfer(lba, buf, len, 1);
}
/* CDEVIL-END */
"""
