'''A CDevil busmouse driver, used by the examples and integration tests.

Mirrors Figure 1 of the paper: the driver detects the mouse through the
signature register, configures it, then polls motion deltas through the
typed stubs (prefix ``bm``).
'''

BUSMOUSE_CDEVIL_SOURCE = r"""
/* repro busmouse driver over Devil stubs. */
#include "busmouse.dil.h"

#define BM_SIGNATURE_VALUE 0xa5

static int bm_present;

int bm_probe(void)
{
    bm_devil_init();
    bm_set_signature((u8)BM_SIGNATURE_VALUE);
    if (bm_get_signature() != (u8)BM_SIGNATURE_VALUE) {
        bm_present = 0;
        return -1;
    }
    bm_set_config(CONFIGURATION);
    bm_set_interrupt(DISABLE);
    bm_present = 1;
    return 0;
}

int bm_get_state(void)
{
    s8 dx;
    s8 dy;
    u8 buttons;
    if (bm_present == 0) { return -1; }
    dx = bm_get_dx();
    dy = bm_get_dy();
    buttons = bm_get_buttons();
    /* Pack for the caller: buttons in bits 18..16, dy in 15..8, dx in 7..0. */
    return ((int)buttons << 16) | (((int)dy & 0xff) << 8) | ((int)dx & 0xff);
}
"""
