'''The "original Linux" IDE driver: raw C port I/O (hd.c lineage).

Everything between ``/* HW-BEGIN */`` and ``/* HW-END */`` is hardware
operating code — the regions the paper mutates (§3.3).  The error checks
are single-line, the style the paper observes keeps the C driver free of
dead-code mutants.
'''

IDE_C_SOURCE = r"""
/* repro IDE disk driver, original C style. */

/* HW-BEGIN */
#define HD_DATA     0x1f0
#define HD_ERROR    0x1f1
#define HD_NSECTOR  0x1f2
#define HD_SECTOR   0x1f3
#define HD_LCYL     0x1f4
#define HD_HCYL     0x1f5
#define HD_CURRENT  0x1f6
#define HD_STATUS   0x1f7
#define HD_COMMAND  0x1f7
#define HD_CMD      0x3f6

#define STAT_ERR    0x01
#define STAT_INDEX  0x02
#define STAT_ECC    0x04
#define STAT_DRQ    0x08
#define STAT_SEEK   0x10
#define STAT_WRERR  0x20
#define STAT_READY  0x40
#define STAT_BUSY   0x80

#define WIN_RESTORE  0x10
#define WIN_READ     0x20
#define WIN_WRITE    0x30
#define WIN_VERIFY   0x40
#define WIN_DIAGNOSE 0x90
#define WIN_IDENTIFY 0xec

#define SEL_LBA      0xe0
#define SEL_DRV1     0x10
#define SRST_ON      0x04
#define SRST_OFF     0x00
#define DIAG_OK      0x01

#define HD_TIMEOUT   5000
#define HD_WORDS     256
/* HW-END */

static u32 hd_sectors;

/* HW-BEGIN */
static int wait_ready(void)
{
    int t;
    for (t = 0; t < HD_TIMEOUT; t++) {
        if ((inb(HD_STATUS) & (STAT_BUSY | STAT_READY)) == STAT_READY) { return 0; }
    }
    return -1;
}

static int wait_drq(void)
{
    int t;
    u8 s;
    for (t = 0; t < HD_TIMEOUT; t++) {
        s = inb(HD_STATUS);
        if (s & STAT_ERR) { return -2; }
        if (s & STAT_DRQ) { return 0; }
    }
    return -1;
}

static void hd_out(u8 drive, u8 nsect, u32 lba, u8 cmd)
{
    outb((u8)(SEL_LBA | (drive << 4) | ((lba >> 24) & 0x0f)), HD_CURRENT);
    outb(nsect, HD_NSECTOR);
    outb((u8)(lba & 0xff), HD_SECTOR);
    outb((u8)((lba >> 8) & 0xff), HD_LCYL);
    outb((u8)((lba >> 16) & 0xff), HD_HCYL);
    outb(cmd, HD_COMMAND);
}

static int hd_reset(void)
{
    outb(SRST_ON, HD_CMD);
    udelay(10);
    outb(SRST_OFF, HD_CMD);
    /* Settle spin, hd.c style: the controller is busy only briefly. */
    while (inb(HD_STATUS) & STAT_BUSY) { ; }
    if ((inb(HD_ERROR) & 0x7f) != DIAG_OK) { return -2; }
    return 0;
}

static int hd_identify(u16 id[])
{
    outb((u8)SEL_LBA, HD_CURRENT);
    if (wait_ready() != 0) { return -1; }
    outb(WIN_IDENTIFY, HD_COMMAND);
    if (wait_drq() != 0) { return -2; }
    insw(HD_DATA, id, HD_WORDS);
    if (inb(HD_STATUS) & STAT_ERR) { return -3; }
    return 0;
}
/* HW-END */

int ide_init(void)
{
    u16 id[256];
    if (hd_reset() != 0) { printk("hd: reset failed\n"); return -1; }
    if (hd_identify(id) != 0) { printk("hd: identify failed\n"); return -2; }
    if ((id[0] & 0x8000) != 0) { return -3; }
    hd_sectors = (u32)id[60] | ((u32)id[61] << 16);
    printk("hd: disk with %u sectors\n", hd_sectors);
    return (int)hd_sectors;
}

int ide_read(u32 lba, u16 buf[], u32 len)
{
/* HW-BEGIN */
    if (wait_ready() != 0) { return -1; }
    hd_out(0, 1, lba, WIN_READ);
    if (wait_drq() != 0) { return -2; }
    insw(HD_DATA, buf, HD_WORDS);
    if (inb(HD_STATUS) & STAT_ERR) { return -3; }
/* HW-END */
    return 0;
}

int ide_write(u32 lba, u16 buf[], u32 len)
{
/* HW-BEGIN */
    if (wait_ready() != 0) { return -1; }
    hd_out(0, 1, lba, WIN_WRITE);
    if (wait_drq() != 0) { return -2; }
    outsw(HD_DATA, buf, HD_WORDS);
    /* Drain spin: wait out the media write. */
    while (inb(HD_STATUS) & STAT_BUSY) { ; }
    if (inb(HD_STATUS) & STAT_ERR) { return -4; }
/* HW-END */
    return 0;
}
"""
