"""Token definitions for the Devil lexer.

Tokens carry their exact source span (``offset``/``length`` into the
original text) because the mutation engine (`repro.mutation.devil_ops`)
rewrites Devil programs *textually*, splicing a mutated token back into the
source.  Keeping spans exact guarantees mutants differ from the original in
precisely one token, as the paper's error model requires (§3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.diagnostics import SourceLocation


class TokenKind(enum.Enum):
    IDENT = "identifier"
    INT = "integer"
    BITPATTERN = "bit-pattern"  # quoted, e.g. '1001000.'
    KEYWORD = "keyword"
    PUNCT = "punctuation"
    EOF = "end of input"


#: Reserved words of the Devil language.  ``trigger`` is deliberately *not*
#: reserved on its own: it only acts as a keyword after ``read``/``write``
#: in an attribute position, and specs may use it as an identifier.
KEYWORDS = frozenset(
    {
        "device",
        "register",
        "variable",
        "type",
        "private",
        "read",
        "write",
        "mask",
        "pre",
        "post",
        "volatile",
        "trigger",
        "int",
        "signed",
        "bool",
        "bit",
        "port",
    }
)

#: Multi-character punctuation, longest first so the lexer is greedy.
MULTI_PUNCT = ("<=>", "<=", "=>", "..")

SINGLE_PUNCT = frozenset("{}()[],;:=@#")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    offset: int
    line: int
    column: int
    filename: str = "<spec>"

    @property
    def length(self) -> int:
        return len(self.text)

    @property
    def end(self) -> int:
        return self.offset + len(self.text)

    @property
    def location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    @property
    def int_value(self) -> int:
        """Numeric value of an INT token (decimal or 0x-hexadecimal)."""
        if self.kind is not TokenKind.INT:
            raise ValueError(f"not an integer token: {self!r}")
        return parse_devil_int(self.text)

    @property
    def pattern_value(self) -> str:
        """Payload of a BITPATTERN token, quotes stripped."""
        if self.kind is not TokenKind.BITPATTERN:
            raise ValueError(f"not a bit-pattern token: {self!r}")
        return self.text[1:-1]

    def __str__(self) -> str:
        return self.text


def parse_devil_int(text: str) -> int:
    """Parse a Devil integer literal (decimal or ``0x`` hexadecimal)."""
    lowered = text.lower()
    if lowered.startswith("0x"):
        return int(lowered[2:], 16)
    return int(text, 10)
