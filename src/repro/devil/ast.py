"""Abstract syntax tree for Devil specifications.

The tree mirrors the three layers of the language (paper §2.1):

* a *device* declaration parameterised by ranged ports,
* *register* declarations built on ports (with optional read/write split,
  bit masks, and access pre-actions),
* *variable* declarations built from register bit fragments, carrying a
  Devil type.

Named *type* declarations are also supported (the paper lists "types" among
the uniquely-named, mutable entities in §2.2/§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import SourceLocation


@dataclass(frozen=True)
class IntSetElement:
    """One element of an integer set/range expression: ``lo`` or ``lo..hi``."""

    lo: int
    hi: int | None = None
    location: SourceLocation = field(default_factory=SourceLocation)

    def values(self) -> list[int]:
        if self.hi is None:
            return [self.lo]
        step = 1 if self.hi >= self.lo else -1
        return list(range(self.lo, self.hi + step, step))


@dataclass(frozen=True)
class PortParam:
    """A port parameter of the device: ``base : bit[8] port @ {0..3}``."""

    name: str
    data_size: int
    offsets: tuple[IntSetElement, ...]
    location: SourceLocation = field(default_factory=SourceLocation)

    def offset_values(self) -> list[int]:
        seen: list[int] = []
        for element in self.offsets:
            for value in element.values():
                if value not in seen:
                    seen.append(value)
        return seen


@dataclass(frozen=True)
class PortRef:
    """A port constructor use: ``base @ 1`` (offset may be omitted)."""

    base: str
    offset: int | None
    location: SourceLocation = field(default_factory=SourceLocation)

    def key(self) -> tuple[str, int]:
        return (self.base, 0 if self.offset is None else self.offset)

    def __str__(self) -> str:
        if self.offset is None:
            return self.base
        return f"{self.base}@{self.offset}"


@dataclass(frozen=True)
class PreAction:
    """A context-establishing assignment: ``pre {index = 0}``."""

    variable: str
    value: int
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return f"{self.variable} = {self.value}"


@dataclass(frozen=True)
class RegisterDecl:
    """A register: sized bit vector reachable through one or two ports.

    ``read_port``/``write_port`` reflect the optional ``read``/``write``
    attributes: a bare port means read/write through the same port, in which
    case both fields reference the same :class:`PortRef`.
    """

    name: str
    size: int
    read_port: PortRef | None
    write_port: PortRef | None
    mask: str | None
    pre_actions: tuple[PreAction, ...]
    post_actions: tuple[PreAction, ...]
    location: SourceLocation = field(default_factory=SourceLocation)
    #: True when the declaration carried no explicit ``: bit[n]`` and the
    #: size was inferred from the mask (or defaulted to 8).
    size_inferred: bool = False

    @property
    def readable(self) -> bool:
        return self.read_port is not None

    @property
    def writable(self) -> bool:
        return self.write_port is not None

    def effective_mask(self) -> str:
        """Mask string, MSB first, defaulting to all-relevant bits."""
        if self.mask is not None:
            return self.mask
        return "." * self.size


@dataclass(frozen=True)
class Fragment:
    """A bit slice of a register used to build a variable.

    ``hi``/``lo`` are bit indices (MSB-first notation, ``hi >= lo`` in a
    well-formed spec); both ``None`` means the whole register.
    """

    register: str
    hi: int | None
    lo: int | None
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def is_whole(self) -> bool:
        return self.hi is None and self.lo is None

    def __str__(self) -> str:
        if self.is_whole:
            return self.register
        if self.hi == self.lo:
            return f"{self.register}[{self.hi}]"
        return f"{self.register}[{self.hi}..{self.lo}]"


# --- Devil type expressions -------------------------------------------------


@dataclass(frozen=True)
class IntTypeExpr:
    """``int(n)`` or ``signed int(n)``."""

    width: int
    signed: bool = False
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        prefix = "signed " if self.signed else ""
        return f"{prefix}int({self.width})"


@dataclass(frozen=True)
class BoolTypeExpr:
    """``bool`` — one bit, read back as 0/1."""

    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class EnumMember:
    """One mapping of an enumerated type: ``SLAVE <=> '1'``.

    ``direction`` is ``"<="`` (read-only mapping), ``"=>"`` (write-only) or
    ``"<=>"`` (both).
    """

    name: str
    direction: str
    pattern: str
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def readable(self) -> bool:
        return self.direction in ("<=", "<=>")

    @property
    def writable(self) -> bool:
        return self.direction in ("=>", "<=>")

    def __str__(self) -> str:
        return f"{self.name} {self.direction} '{self.pattern}'"


@dataclass(frozen=True)
class EnumTypeExpr:
    """``{ A => '1', B => '0' }``."""

    members: tuple[EnumMember, ...]
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return "{ " + ", ".join(str(m) for m in self.members) + " }"


@dataclass(frozen=True)
class IntSetTypeExpr:
    """``int {0, 2, 3}`` or ``int {0..2, 5}`` — a fixed set of values."""

    elements: tuple[IntSetElement, ...]
    location: SourceLocation = field(default_factory=SourceLocation)

    def values(self) -> list[int]:
        seen: list[int] = []
        for element in self.elements:
            for value in element.values():
                if value not in seen:
                    seen.append(value)
        return seen

    def __str__(self) -> str:
        parts = []
        for element in self.elements:
            if element.hi is None:
                parts.append(str(element.lo))
            else:
                parts.append(f"{element.lo}..{element.hi}")
        return "int {" + ", ".join(parts) + "}"


@dataclass(frozen=True)
class NamedTypeExpr:
    """A reference to a ``type`` declaration."""

    name: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return self.name


TypeExpr = IntTypeExpr | BoolTypeExpr | EnumTypeExpr | IntSetTypeExpr | NamedTypeExpr


@dataclass(frozen=True)
class TypeDecl:
    """A named type: ``type drive_t = { SLAVE <=> '1', MASTER <=> '0' };``"""

    name: str
    definition: TypeExpr
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True)
class VariableDecl:
    """A device variable assembled from register fragments.

    ``attributes`` is a subset of {"volatile", "read trigger",
    "write trigger"}; ``private`` variables are internal to the spec (used
    by pre-actions) and absent from the generated functional interface.
    """

    name: str
    private: bool
    fragments: tuple[Fragment, ...]
    attributes: frozenset[str]
    type_expr: TypeExpr
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def volatile(self) -> bool:
        return "volatile" in self.attributes


@dataclass(frozen=True)
class DeviceSpec:
    """Root of a Devil specification."""

    name: str
    params: tuple[PortParam, ...]
    types: tuple[TypeDecl, ...]
    registers: tuple[RegisterDecl, ...]
    variables: tuple[VariableDecl, ...]
    location: SourceLocation = field(default_factory=SourceLocation)

    def register(self, name: str) -> RegisterDecl | None:
        for decl in self.registers:
            if decl.name == name:
                return decl
        return None

    def variable(self, name: str) -> VariableDecl | None:
        for decl in self.variables:
            if decl.name == name:
                return decl
        return None

    def param(self, name: str) -> PortParam | None:
        for decl in self.params:
            if decl.name == name:
                return decl
        return None

    def type_decl(self, name: str) -> TypeDecl | None:
        for decl in self.types:
            if decl.name == name:
                return decl
        return None
