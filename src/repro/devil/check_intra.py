"""Intra-layer consistency checks (paper §2.2, first half).

Within each abstraction layer we verify type properties and uniqueness:

* I1 — every use of a port / register / named type matches a definition;
* I2 — read/write attributes are respected where locally decidable;
* I3 — sizes line up: port offsets within the declared range, register
  size against port data size, mask length against register size, fragment
  bit ranges against register size, type width against variable width, enum
  pattern length against variable width, set values within the width;
* I4 — uniqueness of port parameters, registers, variables, named types,
  enum member names and enum bit patterns.

The pass also *resolves* declarations into the ``layout`` representations,
because checking and resolution need the same arithmetic.  Unresolvable
declarations are reported and skipped; inter-layer checks then run on the
survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import DiagnosticSink, SourceLocation
from repro.devil import ast
from repro.devil.layout import (
    CheckedRegister,
    CheckedVariable,
    MaskInfo,
    ResolvedFragment,
    resolve_fragment,
)
from repro.devil.types import (
    BoolType,
    DevilType,
    DevilTypeError,
    EnumType,
    EnumValue,
    IntSetType,
    IntType,
    parse_enum_pattern,
)


@dataclass
class SymbolTables:
    """Resolved entities produced by the intra-layer pass."""

    params: dict[str, ast.PortParam] = field(default_factory=dict)
    registers: dict[str, CheckedRegister] = field(default_factory=dict)
    variables: dict[str, CheckedVariable] = field(default_factory=dict)
    named_types: dict[str, ast.TypeDecl] = field(default_factory=dict)
    #: Debug-mode type tags (Figure 4's ``type`` field), keyed by the C
    #: struct base name; assigned in declaration order starting at 1.
    type_tags: dict[str, int] = field(default_factory=dict)


class IntraChecker:
    def __init__(self, device: ast.DeviceSpec, sink: DiagnosticSink):
        self.device = device
        self.sink = sink
        self.tables = SymbolTables()
        self._next_tag = 1

    # -- entry point -----------------------------------------------------

    def run(self) -> SymbolTables:
        self._collect_params()
        self._collect_named_types()
        self._collect_registers()
        self._collect_variables()
        return self.tables

    # -- helpers -----------------------------------------------------------

    def _error(self, code: str, message: str, location: SourceLocation) -> None:
        self.sink.error(code, message, location)

    def _allocate_tag(self, struct_name: str) -> int:
        if struct_name not in self.tables.type_tags:
            self.tables.type_tags[struct_name] = self._next_tag
            self._next_tag += 1
        return self.tables.type_tags[struct_name]

    # -- layer 1: ports ------------------------------------------------------

    def _collect_params(self) -> None:
        for param in self.device.params:
            if param.name in self.tables.params:
                self._error(
                    "devil-dup-param",
                    f"port parameter {param.name!r} declared twice",
                    param.location,
                )
                continue
            if param.data_size <= 0 or param.data_size > 64:
                self._error(
                    "devil-port-size",
                    f"port {param.name!r} has unsupported data size {param.data_size}",
                    param.location,
                )
                continue
            if not param.offset_values():
                self._error(
                    "devil-offset-range",
                    f"port {param.name!r} declares an empty offset range",
                    param.location,
                )
                continue
            for element in param.offsets:
                if element.lo < 0 or (element.hi is not None and element.hi < 0):
                    self._error(
                        "devil-offset-range",
                        f"port {param.name!r} has a negative offset",
                        element.location,
                    )
            self.tables.params[param.name] = param

    # -- named types --------------------------------------------------------

    def _collect_named_types(self) -> None:
        for decl in self.device.types:
            if decl.name in self.tables.named_types:
                self._error(
                    "devil-dup-type",
                    f"type {decl.name!r} declared twice",
                    decl.location,
                )
                continue
            if isinstance(decl.definition, ast.NamedTypeExpr):
                self._error(
                    "devil-type-alias",
                    f"type {decl.name!r} may not alias another named type",
                    decl.location,
                )
                continue
            self.tables.named_types[decl.name] = decl

    # -- layer 2: registers --------------------------------------------------

    def _collect_registers(self) -> None:
        for decl in self.device.registers:
            if decl.name in self.tables.registers:
                self._error(
                    "devil-dup-register",
                    f"register {decl.name!r} declared twice",
                    decl.location,
                )
                continue
            checked = self._check_register(decl)
            if checked is not None:
                self.tables.registers[decl.name] = checked

    def _check_register(self, decl: ast.RegisterDecl) -> CheckedRegister | None:
        port_sizes: list[int] = []
        ok = True
        seen: set[int] = set()
        for port in (decl.read_port, decl.write_port):
            if port is None or id(port) in seen:
                continue
            seen.add(id(port))
            param = self.tables.params.get(port.base)
            if param is None:
                self._error(
                    "devil-undef-port",
                    f"register {decl.name!r} uses undeclared port {port.base!r}",
                    port.location,
                )
                ok = False
                continue
            offset = 0 if port.offset is None else port.offset
            if offset not in param.offset_values():
                self._error(
                    "devil-offset-range",
                    f"register {decl.name!r}: offset {offset} outside the "
                    f"declared range of port {port.base!r}",
                    port.location,
                )
                ok = False
            port_sizes.append(param.data_size)

        if not ok:
            return None

        port_size = port_sizes[0] if port_sizes else 8
        if any(size != port_size for size in port_sizes):
            self._error(
                "devil-port-size",
                f"register {decl.name!r}: read and write ports have different "
                "data sizes",
                decl.location,
            )
            return None

        if decl.size != port_size:
            self._error(
                "devil-port-size",
                f"register {decl.name!r} is bit[{decl.size}] but its port "
                f"transfers bit[{port_size}]",
                decl.location,
            )
            return None

        mask_string = decl.effective_mask()
        if len(mask_string) != decl.size:
            self._error(
                "devil-mask-size",
                f"register {decl.name!r}: mask {mask_string!r} has "
                f"{len(mask_string)} bits, register has {decl.size}",
                decl.location,
            )
            return None

        mask = MaskInfo.from_string(mask_string)
        if mask.relevant == 0:
            self._error(
                "devil-mask-size",
                f"register {decl.name!r}: mask {mask_string!r} leaves no "
                "relevant bit",
                decl.location,
            )
            return None
        return CheckedRegister(decl=decl, mask=mask, port_size=port_size)

    # -- layer 3: variables --------------------------------------------------

    def _collect_variables(self) -> None:
        for decl in self.device.variables:
            if decl.name in self.tables.variables:
                self._error(
                    "devil-dup-variable",
                    f"variable {decl.name!r} declared twice",
                    decl.location,
                )
                continue
            checked = self._check_variable(decl)
            if checked is not None:
                self.tables.variables[decl.name] = checked

    def _check_variable(self, decl: ast.VariableDecl) -> CheckedVariable | None:
        fragments: list[ResolvedFragment] = []
        readable = True
        writable = True
        for fragment in decl.fragments:
            register = self.tables.registers.get(fragment.register)
            if register is None:
                self._error(
                    "devil-undef-register",
                    f"variable {decl.name!r} uses undeclared register "
                    f"{fragment.register!r}",
                    fragment.location,
                )
                return None
            if not fragment.is_whole:
                assert fragment.hi is not None and fragment.lo is not None
                if fragment.hi < fragment.lo:
                    self._error(
                        "devil-frag-range",
                        f"variable {decl.name!r}: reversed bit range "
                        f"[{fragment.hi}..{fragment.lo}]",
                        fragment.location,
                    )
                    return None
                if fragment.hi >= register.size or fragment.lo < 0:
                    self._error(
                        "devil-frag-range",
                        f"variable {decl.name!r}: bits "
                        f"[{fragment.hi}..{fragment.lo}] outside register "
                        f"{register.name!r} (bit[{register.size}])",
                        fragment.location,
                    )
                    return None
            resolved = resolve_fragment(fragment, register.decl)
            stray = resolved.mask & ~register.mask.relevant
            if stray:
                self._error(
                    "devil-irrelevant-bit",
                    f"variable {decl.name!r} uses bit(s) {_bit_list(stray)} of "
                    f"register {register.name!r} that the mask marks "
                    "non-relevant",
                    fragment.location,
                )
                return None
            readable = readable and register.readable
            writable = writable and register.writable
            fragments.append(resolved)

        width = sum(fragment.width for fragment in fragments)
        devil_type = self._resolve_type(decl, width)
        if devil_type is None:
            return None

        tag = 0
        if devil_type.struct_encoded:
            tag = self._allocate_tag(_struct_base_name(decl, devil_type))

        return CheckedVariable(
            decl=decl,
            fragments=tuple(fragments),
            devil_type=devil_type,
            readable=readable,
            writable=writable,
            type_tag=tag,
        )

    # -- type resolution ----------------------------------------------------

    def _resolve_type(
        self, decl: ast.VariableDecl, width: int
    ) -> DevilType | None:
        return self._resolve_type_expr(decl.type_expr, width, decl.name, decl.location)

    def _resolve_type_expr(
        self,
        expr: ast.TypeExpr,
        width: int,
        name_hint: str,
        use_location: SourceLocation,
    ) -> DevilType | None:
        if isinstance(expr, ast.IntTypeExpr):
            if expr.width != width:
                self._error(
                    "devil-type-width",
                    f"variable {name_hint!r} assembles {width} bit(s) but its "
                    f"type is {expr}",
                    expr.location,
                )
                return None
            return IntType(width=width, signed=expr.signed)

        if isinstance(expr, ast.BoolTypeExpr):
            if width != 1:
                self._error(
                    "devil-type-width",
                    f"variable {name_hint!r} assembles {width} bit(s) but "
                    "bool is one bit",
                    expr.location,
                )
                return None
            return BoolType(width=1)

        if isinstance(expr, ast.IntSetTypeExpr):
            return self._resolve_set(expr, width, name_hint)

        if isinstance(expr, ast.EnumTypeExpr):
            return self._resolve_enum(expr, width, name_hint)

        if isinstance(expr, ast.NamedTypeExpr):
            decl = self.tables.named_types.get(expr.name)
            if decl is None:
                self._error(
                    "devil-undef-type",
                    f"variable {name_hint!r} uses undeclared type {expr.name!r}",
                    expr.location,
                )
                return None
            return self._resolve_type_expr(
                decl.definition, width, decl.name, expr.location
            )

        raise AssertionError(f"unhandled type expression {expr!r}")

    def _resolve_set(
        self, expr: ast.IntSetTypeExpr, width: int, name_hint: str
    ) -> IntSetType | None:
        values = expr.values()
        limit = 1 << width
        ok = True
        for value in values:
            if value < 0 or value >= limit:
                self._error(
                    "devil-set-range",
                    f"{name_hint!r}: set value {value} does not fit in "
                    f"{width} bit(s)",
                    expr.location,
                )
                ok = False
        if not ok:
            return None
        return IntSetType(
            width=width, values=tuple(sorted(set(values))), type_name=name_hint
        )

    def _resolve_enum(
        self, expr: ast.EnumTypeExpr, width: int, name_hint: str
    ) -> EnumType | None:
        members: list[EnumValue] = []
        names: set[str] = set()
        ok = True
        for member in expr.members:
            if member.name in names:
                self._error(
                    "devil-dup-member",
                    f"{name_hint!r}: enum member {member.name!r} declared twice",
                    member.location,
                )
                ok = False
                continue
            names.add(member.name)
            if len(member.pattern) != width:
                self._error(
                    "devil-pattern-width",
                    f"{name_hint!r}: pattern '{member.pattern}' of "
                    f"{member.name!r} has {len(member.pattern)} bit(s), "
                    f"variable has {width}",
                    member.location,
                )
                ok = False
                continue
            try:
                bits, care = parse_enum_pattern(member.pattern)
            except DevilTypeError as exc:
                self._error("devil-pattern-char", f"{name_hint!r}: {exc}", member.location)
                ok = False
                continue
            value = EnumValue(
                name=member.name,
                bits=bits,
                care=care,
                readable=member.readable,
                writable=member.writable,
            )
            for previous in members:
                if previous.readable and value.readable and previous.overlaps(value):
                    self._error(
                        "devil-dup-pattern",
                        f"{name_hint!r}: read patterns of {previous.name!r} "
                        f"and {value.name!r} overlap",
                        member.location,
                    )
                    ok = False
                if (
                    previous.writable
                    and value.writable
                    and previous.bits == value.bits
                    and previous.care == value.care
                ):
                    self._error(
                        "devil-dup-pattern",
                        f"{name_hint!r}: {previous.name!r} and {value.name!r} "
                        "write the same pattern",
                        member.location,
                    )
                    ok = False
            members.append(value)
        if not ok or not members:
            return None
        return EnumType(width=width, members=tuple(members), type_name=name_hint)


def _struct_base_name(decl: ast.VariableDecl, devil_type: DevilType) -> str:
    """C struct base name for a struct-encoded type (Figure 4: ``Drive_t_``)."""
    if isinstance(devil_type, (EnumType, IntSetType)) and devil_type.type_name:
        return devil_type.type_name
    return decl.name


def _bit_list(mask: int) -> str:
    bits = [str(i) for i in range(mask.bit_length()) if mask & (1 << i)]
    return ",".join(reversed(bits))
