"""Lexer for the Devil interface definition language.

The concrete syntax follows Figure 3 of the paper: ``//`` line comments,
``/* ... */`` block comments, decimal and ``0x`` hexadecimal integers, and
single-quoted bit patterns such as ``'1001000.'`` used for register masks
and enum value mappings.
"""

from __future__ import annotations

from repro.diagnostics import CompileError, Diagnostic, Severity, SourceLocation
from repro.devil.tokens import (
    KEYWORDS,
    MULTI_PUNCT,
    SINGLE_PUNCT,
    Token,
    TokenKind,
)

#: Characters allowed inside a quoted bit pattern.  ``.`` marks a relevant
#: bit, ``0``/``1`` fixed bits, ``*`` an irrelevant bit (paper §2.1).
PATTERN_CHARS = frozenset("01*.")


class DevilLexError(CompileError):
    """A character sequence that is not part of the Devil language."""


def _error(message: str, location: SourceLocation) -> DevilLexError:
    return DevilLexError(
        [Diagnostic(Severity.ERROR, "devil-lex", message, location)]
    )


class Lexer:
    """Single-pass scanner producing a list of :class:`Token`."""

    def __init__(self, source: str, filename: str = "<spec>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        if index < len(self.source):
            return self.source[index]
        return ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise _error("unterminated block comment", start)
            else:
                return

    def _make(self, kind: TokenKind, text: str, offset: int, line: int, column: int) -> Token:
        return Token(kind, text, offset, line, column, self.filename)

    def tokens(self) -> list[Token]:
        result: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                result.append(
                    self._make(TokenKind.EOF, "", self.pos, self.line, self.column)
                )
                return result
            result.append(self._next_token())

    def _next_token(self) -> Token:
        char = self._peek()
        offset, line, column = self.pos, self.line, self.column

        if char.isalpha() or char == "_":
            end = self.pos
            while end < len(self.source) and (
                self.source[end].isalnum() or self.source[end] == "_"
            ):
                end += 1
            text = self.source[self.pos : end]
            self._advance(len(text))
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return self._make(kind, text, offset, line, column)

        if char.isdigit():
            return self._lex_number(offset, line, column)

        if char == "'":
            return self._lex_pattern(offset, line, column)

        for punct in MULTI_PUNCT:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return self._make(TokenKind.PUNCT, punct, offset, line, column)

        if char in SINGLE_PUNCT:
            self._advance()
            return self._make(TokenKind.PUNCT, char, offset, line, column)

        raise _error(f"unexpected character {char!r}", self._location())

    def _lex_number(self, offset: int, line: int, column: int) -> Token:
        end = self.pos
        if self.source.startswith(("0x", "0X"), self.pos):
            end += 2
            digits = 0
            while end < len(self.source) and self.source[end] in "0123456789abcdefABCDEF":
                end += 1
                digits += 1
            if digits == 0:
                raise _error("hexadecimal literal with no digits", self._location())
        else:
            while end < len(self.source) and self.source[end].isdigit():
                end += 1
            # Reject "0x"-less hex-looking suffixes like 12ab early: an
            # identifier immediately following a number is never valid Devil.
            if end < len(self.source) and (
                self.source[end].isalpha() or self.source[end] == "_"
            ):
                raise _error(
                    f"malformed number near {self.source[offset:end + 1]!r}",
                    self._location(),
                )
        text = self.source[self.pos : end]
        self._advance(len(text))
        return self._make(TokenKind.INT, text, offset, line, column)

    def _lex_pattern(self, offset: int, line: int, column: int) -> Token:
        end = self.pos + 1
        while end < len(self.source) and self.source[end] != "'":
            if self.source[end] == "\n":
                raise _error("unterminated bit pattern", self._location())
            end += 1
        if end >= len(self.source):
            raise _error("unterminated bit pattern", self._location())
        body = self.source[self.pos + 1 : end]
        if not body:
            raise _error("empty bit pattern", self._location())
        bad = set(body) - PATTERN_CHARS
        if bad:
            raise _error(
                f"invalid bit-pattern character(s) {sorted(bad)!r}; "
                "allowed: 0 1 * .",
                self._location(),
            )
        text = self.source[self.pos : end + 1]
        self._advance(len(text))
        return self._make(TokenKind.BITPATTERN, text, offset, line, column)


def tokenize(source: str, filename: str = "<spec>") -> list[Token]:
    """Tokenize ``source``, returning a token list ending with EOF."""
    return Lexer(source, filename).tokens()
