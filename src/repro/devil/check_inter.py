"""Inter-layer consistency checks (paper §2.2, second half).

The layered structure of Devil introduces redundancy across layers, which
this pass exploits:

* X1 — attribute consistency: a readable variable only uses readable
  registers (and vice versa for write); enum mapping directions agree with
  the variable's readability/writability; trigger attributes agree too.
* X2 — no omission: every port parameter and every declared offset is used
  by some register; every register (and every *relevant* register bit)
  feeds some variable; readable enum mappings are exhaustive; private
  variables are referenced by some pre-action.
* X3 — no overlap: a (port, offset, direction) is claimed by at most one
  register unless pre-action contexts or relevant masks are disjoint; no
  register bit belongs to two variables.
* pre-actions: target a defined, writable variable with an in-domain value,
  and do not chain (a pre-action variable's registers must themselves be
  pre-action free).
"""

from __future__ import annotations

from repro.diagnostics import DiagnosticSink
from repro.devil import ast
from repro.devil.check_intra import SymbolTables
from repro.devil.layout import CheckedRegister, CheckedVariable
from repro.devil.types import DevilTypeError, EnumType


class InterChecker:
    def __init__(
        self, device: ast.DeviceSpec, tables: SymbolTables, sink: DiagnosticSink
    ):
        self.device = device
        self.tables = tables
        self.sink = sink

    def run(self) -> None:
        self._check_pre_actions()
        self._check_variable_directions()
        self._check_no_omission()
        self._check_no_overlap()

    # -- pre-actions --------------------------------------------------------

    def _check_pre_actions(self) -> None:
        for register in self.tables.registers.values():
            for action in (
                *register.decl.pre_actions,
                *register.decl.post_actions,
            ):
                target = self.tables.variables.get(action.variable)
                if target is None:
                    self.sink.error(
                        "devil-undef-variable",
                        f"register {register.name!r}: pre-action targets "
                        f"undeclared variable {action.variable!r}",
                        action.location,
                    )
                    continue
                if not target.writable:
                    self.sink.error(
                        "devil-access",
                        f"register {register.name!r}: pre-action writes "
                        f"read-only variable {action.variable!r}",
                        action.location,
                    )
                try:
                    target.devil_type.encode(action.value)
                except DevilTypeError:
                    self.sink.error(
                        "devil-pre-range",
                        f"register {register.name!r}: pre-action value "
                        f"{action.value} outside {target.devil_type.describe()}",
                        action.location,
                    )
                for fragment in target.fragments:
                    via = self.tables.registers.get(fragment.register)
                    if via is not None and (
                        via.decl.pre_actions or via.decl.post_actions
                    ):
                        self.sink.error(
                            "devil-pre-cycle",
                            f"register {register.name!r}: pre-action variable "
                            f"{action.variable!r} itself lives in register "
                            f"{via.name!r} which has pre-actions",
                            action.location,
                        )

    # -- X1: directions -------------------------------------------------------

    def _check_variable_directions(self) -> None:
        for variable in self.tables.variables.values():
            self._check_one_direction(variable)

    def _check_one_direction(self, variable: CheckedVariable) -> None:
        decl = variable.decl
        if not variable.readable and not variable.writable:
            self.sink.error(
                "devil-access",
                f"variable {decl.name!r} is neither readable nor writable "
                "(its registers' attributes conflict)",
                decl.location,
            )
            return

        if "read trigger" in decl.attributes and not variable.readable:
            self.sink.error(
                "devil-access",
                f"variable {decl.name!r} has a read trigger but is not readable",
                decl.location,
            )
        if "write trigger" in decl.attributes and not variable.writable:
            self.sink.error(
                "devil-access",
                f"variable {decl.name!r} has a write trigger but is not writable",
                decl.location,
            )

        devil_type = variable.devil_type
        if isinstance(devil_type, EnumType):
            readable = devil_type.readable_members()
            writable = devil_type.writable_members()
            if readable and not variable.readable:
                self.sink.error(
                    "devil-dir",
                    f"variable {decl.name!r} has read mappings but is not "
                    "readable",
                    decl.location,
                )
            if writable and not variable.writable:
                self.sink.error(
                    "devil-dir",
                    f"variable {decl.name!r} has write mappings but is not "
                    "writable",
                    decl.location,
                )
            if variable.readable and not readable:
                self.sink.error(
                    "devil-dir",
                    f"variable {decl.name!r} is readable but its type has no "
                    "read mapping",
                    decl.location,
                )
            if variable.writable and not writable:
                self.sink.error(
                    "devil-dir",
                    f"variable {decl.name!r} is writable but its type has no "
                    "write mapping",
                    decl.location,
                )
            if variable.readable and readable and not devil_type.read_exhaustive():
                self.sink.error(
                    "devil-enum-exhaustive",
                    f"variable {decl.name!r}: read mappings do not cover all "
                    f"{1 << devil_type.width} value(s)",
                    decl.location,
                )

    # -- X2: no omission --------------------------------------------------------

    def _check_no_omission(self) -> None:
        used_offsets: dict[str, set[int]] = {name: set() for name in self.tables.params}
        for register in self.tables.registers.values():
            for port in (register.decl.read_port, register.decl.write_port):
                if port is None or port.base not in used_offsets:
                    continue
                used_offsets[port.base].add(0 if port.offset is None else port.offset)

        for name, param in self.tables.params.items():
            used = used_offsets[name]
            if not used:
                self.sink.error(
                    "devil-unused-param",
                    f"port parameter {name!r} is never used by a register",
                    param.location,
                )
                continue
            missing = [o for o in param.offset_values() if o not in used]
            if missing:
                self.sink.error(
                    "devil-unused-offset",
                    f"port {name!r}: declared offset(s) "
                    f"{', '.join(map(str, missing))} never used",
                    param.location,
                )

        used_bits: dict[str, int] = {}
        for variable in self.tables.variables.values():
            for fragment in variable.fragments:
                used_bits[fragment.register] = (
                    used_bits.get(fragment.register, 0) | fragment.mask
                )

        for register in self.tables.registers.values():
            usage = used_bits.get(register.name)
            if usage is None:
                self.sink.error(
                    "devil-unused-register",
                    f"register {register.name!r} is not used by any variable",
                    register.decl.location,
                )
                continue
            unused = register.mask.relevant & ~usage
            if unused:
                self.sink.error(
                    "devil-unused-bits",
                    f"register {register.name!r}: relevant bit(s) "
                    f"{_bit_list(unused)} not used by any variable",
                    register.decl.location,
                )

        referenced: set[str] = set()
        for register in self.tables.registers.values():
            for action in (
                *register.decl.pre_actions,
                *register.decl.post_actions,
            ):
                referenced.add(action.variable)
        for variable in self.tables.variables.values():
            if variable.private and variable.name not in referenced:
                self.sink.error(
                    "devil-unused-private",
                    f"private variable {variable.name!r} is not referenced by "
                    "any pre-action",
                    variable.decl.location,
                )

    # -- X3: no overlap -----------------------------------------------------------

    def _check_no_overlap(self) -> None:
        claims: dict[tuple[str, int, str], list[CheckedRegister]] = {}
        for register in self.tables.registers.values():
            entries = []
            if register.decl.read_port is not None:
                entries.append(("read", register.decl.read_port))
            if register.decl.write_port is not None:
                entries.append(("write", register.decl.write_port))
            for direction, port in entries:
                key = (port.base, 0 if port.offset is None else port.offset, direction)
                claims.setdefault(key, []).append(register)

        for (base, offset, direction), registers in sorted(claims.items()):
            for index, first in enumerate(registers):
                for second in registers[index + 1 :]:
                    if _registers_disjoint(first, second):
                        continue
                    self.sink.error(
                        "devil-port-overlap",
                        f"registers {first.name!r} and {second.name!r} both "
                        f"{direction} port {base}@{offset} without disjoint "
                        "masks or pre-actions",
                        second.decl.location,
                    )

        owners: dict[str, dict[int, str]] = {}
        for variable in self.tables.variables.values():
            for fragment in variable.fragments:
                per_register = owners.setdefault(fragment.register, {})
                for bit in range(fragment.lo, fragment.hi + 1):
                    previous = per_register.get(bit)
                    if previous is not None and previous != variable.name:
                        self.sink.error(
                            "devil-bit-overlap",
                            f"bit {bit} of register {fragment.register!r} is "
                            f"used by both {previous!r} and {variable.name!r}",
                            variable.decl.location,
                        )
                    per_register[bit] = variable.name


def _registers_disjoint(first: CheckedRegister, second: CheckedRegister) -> bool:
    """Paper §2.2: same-port registers are legal when their pre-action
    contexts or their relevant masks are disjoint."""
    if first.mask.relevant & second.mask.relevant == 0:
        return True
    first_context = first.pre_context()
    second_context = second.pre_context()
    for name, value in first_context.items():
        if name in second_context and second_context[name] != value:
            return True
    return False


def _bit_list(mask: int) -> str:
    bits = [str(i) for i in range(mask.bit_length()) if mask & (1 << i)]
    return ",".join(reversed(bits))
