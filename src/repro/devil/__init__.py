"""The Devil interface definition language.

This package reimplements the Devil compiler described in Réveillère &
Muller (DSN 2001): a three-layer IDL (ports, registers, device variables),
a consistency checker over both layers (paper §2.2), a C stub generator
with production and debug modes (paper §2.3 / Figure 4), and a Python
runtime that executes checked specifications directly against simulated
hardware.

Typical use::

    from repro.devil import compile_spec
    from repro.devil.codegen import generate_header, CodegenOptions

    spec = compile_spec(open("busmouse.dil").read())
    header = generate_header(spec, CodegenOptions(mode="debug", prefix="bm"))
"""

from repro.devil.compiler import CheckedSpec, check_spec, compile_spec, parse_spec

__all__ = ["CheckedSpec", "check_spec", "compile_spec", "parse_spec"]
