"""Incremental Devil spec compilation for mutation campaigns.

``run_devil_campaign`` (Table 2) checks thousands of single-token
variants of one specification; the stock pipeline re-lexes and re-parses
the whole spec per variant, and lexing alone dominates the campaign.
This module caches what variants share:

* **line-lex splice** — every physical line except the mutated one lexes
  to the same tokens, so the variant's token stream is the baseline's
  with just the mutated line re-lexed and spliced in;
* **declaration splice** — only the top-level declaration(s) covering
  the changed tokens are re-parsed; untouched declarations' ASTs are
  reused (the Devil parser keeps no cross-declaration state);
* the intra- and inter-layer **checks run in full** per variant: they
  are cross-declaration by construction (duplicate names, register
  cover, type references) and cost a fraction of the parse.

Fidelity: campaign-visible results (detected / accepted, and the
diagnostic codes feeding ``MutantResult.detail``) are identical to
``spec_errors``; any variant the splice path cannot prove equivalent —
multi-line edits, edits on comment/pattern-sensitive or header lines,
and variants whose spliced re-parse errors (so the canonical full parse
owns the diagnostics) — falls back to the from-scratch pipeline.

Token ``offset`` fields after a spliced line are stale by the edit's
length delta.  Offsets exist for the *mutation generator*'s textual
splicing against the pristine baseline; the parser and the checkers
consume only ``kind``/``text``/``line``/``column``, which the splice
keeps exact.
"""

from __future__ import annotations

from repro.devil import ast
from repro.devil.compiler import check_spec, spec_errors
from repro.devil.lexer import tokenize
from repro.devil.parser import Parser
from repro.devil.tokens import Token, TokenKind
from repro.diagnostics import CompileError, Diagnostic

#: Characters that can open/close a comment or a quoted bit pattern; an
#: edit featuring none of these cannot change lexical structure around it.
_LEX_SENSITIVE = frozenset("/*'\"")


class _DeclGroup:
    """One top-level declaration and its token span."""

    __slots__ = ("category", "decl", "start", "end")

    def __init__(self, category: str, decl, start: int, end: int):
        self.category = category
        self.decl = decl
        self.start = start
        self.end = end


class SpecCampaignCompiler:
    """Check many single-edit variants of one Devil spec, fast.

    The baseline must itself parse (construction raises otherwise — the
    campaign asserts the unmutated spec compiles first).
    """

    def __init__(self, source: str, filename: str = "<spec>"):
        self.source = source
        self.filename = filename
        self._lines = source.split("\n")
        self._tokens = tokenize(source, filename)  # EOF-terminated
        self._line_spans = self._compute_line_spans()
        self._line_offsets = self._compute_line_offsets()
        self._groups, self._header, self._device = self._parse_groups()
        #: Cache-effectiveness counters (for benchmarks and tests).
        self.stats = {"spliced": 0, "full": 0, "identical": 0}

    # -- baseline bookkeeping ---------------------------------------------

    def _compute_line_spans(self) -> dict[int, tuple[int, int]]:
        spans: dict[int, tuple[int, int]] = {}
        for index, token in enumerate(self._tokens):
            if token.kind is TokenKind.EOF:
                break
            span = spans.get(token.line)
            spans[token.line] = (
                (index, index + 1) if span is None else (span[0], index + 1)
            )
        return spans

    def _compute_line_offsets(self) -> list[int]:
        offsets = [0]
        for line in self._lines[:-1]:
            offsets.append(offsets[-1] + len(line) + 1)
        return offsets

    def _parse_groups(self):
        """Parse the baseline, recording every declaration's token span.

        Mirrors ``Parser._parse_device`` exactly, with the body loop
        instrumented; the Devil grammar keeps no state across
        declarations, so each span can be re-parsed in isolation.
        """
        parser = Parser(self._tokens)
        start = parser._expect_keyword("device")
        name = parser._expect_ident("device name")
        parser._expect_punct("(")
        params = [parser._parse_param()]
        while parser.current.is_punct(","):
            parser._advance()
            params.append(parser._parse_param())
        parser._expect_punct(")")
        parser._expect_punct("{")
        header_end = parser.index

        groups: list[_DeclGroup] = []
        while not parser.current.is_punct("}"):
            if parser.current.kind is TokenKind.EOF:
                raise parser._error("unterminated device body")
            group_start = parser.index
            category, decl = self._parse_one_decl(parser)
            groups.append(_DeclGroup(category, decl, group_start, parser.index))
        parser._expect_punct("}")
        if parser.current.kind is not TokenKind.EOF:
            raise parser._error("trailing input after device declaration")

        device = ast.DeviceSpec(
            name=name.text,
            params=tuple(params),
            types=tuple(g.decl for g in groups if g.category == "types"),
            registers=tuple(
                g.decl for g in groups if g.category == "registers"
            ),
            variables=tuple(
                g.decl for g in groups if g.category == "variables"
            ),
            location=start.location,
        )
        header = (name, tuple(params), start, header_end)
        return groups, header, device

    @staticmethod
    def _parse_one_decl(parser: Parser):
        if parser.current.is_keyword("type"):
            return "types", parser._parse_type_decl()
        if parser.current.is_keyword("register"):
            return "registers", parser._parse_register()
        if parser.current.is_keyword("variable") or parser.current.is_keyword(
            "private"
        ):
            return "variables", parser._parse_variable()
        raise parser._error("expected 'type', 'register' or 'variable'")

    # -- variant pipeline --------------------------------------------------

    def errors_for_variant(self, text: str) -> list[Diagnostic]:
        """All error diagnostics for ``text`` — ``spec_errors`` semantics."""
        if text == self.source:
            self.stats["identical"] += 1
            return self._check_errors(self._device)
        device = self._spliced_device(text)
        if device is None:
            self.stats["full"] += 1
            return spec_errors(text, self.filename)
        self.stats["spliced"] += 1
        return self._check_errors(device)

    def variant_parses(self, text: str) -> bool:
        """Whether ``text`` lexes and parses (the enumeration gate)."""
        if text == self.source:
            return True
        spliced = self._splice_tokens(text)
        if spliced is None:
            return self._full_parses(text)
        try:
            if self._parse_variant(*spliced) is None:
                return self._full_parses(text)
        except CompileError:
            # A re-parse error at the slice boundary is not always a
            # program error (a mutated declaration could consume its
            # successor's tokens and still parse as a whole); the full
            # parse is authoritative either way.
            return self._full_parses(text)
        return True

    def _full_parses(self, text: str) -> bool:
        try:
            Parser(tokenize(text, self.filename)).parse_spec()
        except CompileError:
            return False
        return True

    @staticmethod
    def _check_errors(device) -> list[Diagnostic]:
        try:
            check_spec(device)
        except CompileError as exc:
            return exc.diagnostics
        return []

    def _spliced_device(self, text: str):
        """Variant ``DeviceSpec`` via splicing, or None for the full path."""
        spliced = self._splice_tokens(text)
        if spliced is None:
            return None
        try:
            return self._parse_variant(*spliced)
        except CompileError:
            # The spliced re-parse fails; let the canonical full parse
            # produce the (identical-code, canonical-location) errors.
            return None

    def _splice_tokens(self, text: str):
        """(tokens, changed_lo, changed_hi) in baseline indices, or None."""
        base_lines = self._lines
        lines = text.split("\n")
        if len(lines) != len(base_lines):
            return None
        changed = -1
        for index, (old, new) in enumerate(zip(base_lines, lines)):
            if old != new:
                if changed >= 0:
                    return None
                changed = index
        if changed < 0:
            return None
        old, new = base_lines[changed], lines[changed]
        if _LEX_SENSITIVE.intersection(old) or _LEX_SENSITIVE.intersection(new):
            return None
        line_number = changed + 1
        span = self._line_spans.get(line_number)
        if span is None:
            # No tokens on the line (blank or comment interior): lexical
            # context is unclear, full pipeline decides.
            return None
        try:
            lexed = tokenize(new, self.filename)
        except CompileError:
            return None  # canonical path owns the error locations
        base_offset = self._line_offsets[changed]
        rebased = [
            Token(
                kind=token.kind,
                text=token.text,
                offset=base_offset + token.offset,
                line=line_number,
                column=token.column,
                filename=token.filename,
            )
            for token in lexed
            if token.kind is not TokenKind.EOF
        ]
        start, end = span
        tokens = list(self._tokens)
        tokens[start:end] = rebased
        # The changed span is reported in *baseline* indices; the suffix
        # sits shifted by the token-count delta in the spliced stream.
        return tokens, start, end

    def _parse_variant(self, tokens, changed_lo, changed_hi):
        """Re-parse only the declarations covering the changed tokens.

        Returns None when the change falls outside every declaration
        span (device header, braces, trailing text) — the caller takes
        the full pipeline.  Raises ``CompileError`` on re-parse errors.
        """
        delta = len(tokens) - len(self._tokens)
        first = last = None
        for index, group in enumerate(self._groups):
            if group.end > changed_lo and group.start < changed_hi:
                if first is None:
                    first = index
                last = index
        if first is None:
            return None
        affected = self._groups[first : last + 1]
        if affected[0].start > changed_lo or affected[-1].end < changed_hi:
            return None  # the edit leaks outside the declaration spans
        slice_start = affected[0].start
        slice_end = affected[-1].end + delta

        stream = tokens[slice_start:slice_end]
        tail = stream[-1] if stream else tokens[changed_lo]
        stream.append(
            Token(TokenKind.EOF, "", tail.end, tail.line, 1, self.filename)
        )
        parser = Parser(stream)
        reparsed: list[tuple[str, object]] = []
        while parser.current.kind is not TokenKind.EOF:
            reparsed.append(self._parse_one_decl(parser))

        ordered: list[tuple[str, object]] = [
            (group.category, group.decl) for group in self._groups[:first]
        ]
        ordered.extend(reparsed)
        ordered.extend(
            (group.category, group.decl) for group in self._groups[last + 1 :]
        )
        name, params, start, _ = self._header
        return ast.DeviceSpec(
            name=name.text,
            params=params,
            types=tuple(d for c, d in ordered if c == "types"),
            registers=tuple(d for c, d in ordered if c == "registers"),
            variables=tuple(d for c, d in ordered if c == "variables"),
            location=start.location,
        )
