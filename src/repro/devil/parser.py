"""Recursive-descent parser for Devil specifications.

The accepted grammar covers everything Figure 3 and §2.3 of the paper use,
plus named ``type`` declarations::

    spec       := 'device' IDENT '(' param (',' param)* ')' '{' item* '}'
    param      := IDENT ':' 'bit' '[' INT ']' 'port' '@' '{' intset '}'
    item       := typedecl | register | variable
    typedecl   := 'type' IDENT '=' typeexpr ';'
    register   := 'register' IDENT '=' regattr (',' regattr)*
                  (':' 'bit' '[' INT ']')? ';'
    regattr    := ('read'|'write')? portref | 'mask' PATTERN
                | ('pre'|'post') '{' action ((';'|',') action)* ';'? '}'
    portref    := IDENT ('@' INT)?
    action     := IDENT '=' INT
    variable   := 'private'? 'variable' IDENT '=' frag ('#' frag)*
                  (',' varattr)* ':' typeexpr ';'
    frag       := IDENT ('[' INT ('..' INT)? ']')?
    varattr    := 'volatile' | ('read'|'write') 'trigger'
    typeexpr   := 'signed'? 'int' '(' INT ')' | 'int' '{' intset '}' | 'bool'
                | '{' enummember (',' enummember)* '}' | IDENT
    enummember := IDENT ('=>'|'<='|'<=>') PATTERN
    intset     := INT ('..' INT)? (',' INT ('..' INT)?)*

Mutation-friendliness note: the set/range separators ``,`` and ``..`` and
the mapping arrows ``<=``/``=>``/``<=>`` are interchangeable *syntactically*
(their confusion is a §3.2 operator mutation), so the parser accepts any of
them anywhere the class is legal and leaves semantics to the checker.
"""

from __future__ import annotations

from repro.diagnostics import CompileError, Diagnostic, Severity, SourceLocation
from repro.devil import ast
from repro.devil.lexer import tokenize
from repro.devil.tokens import Token, TokenKind

#: Variable attributes recognised after the fragment list.
_ENUM_ARROWS = ("<=>", "<=", "=>")


class DevilParseError(CompileError):
    """Input is not syntactically valid Devil."""


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> DevilParseError:
        token = token or self.current
        found = token.text or "end of input"
        return DevilParseError(
            [
                Diagnostic(
                    Severity.ERROR,
                    "devil-parse",
                    f"{message} (found {found!r})",
                    token.location,
                )
            ]
        )

    def _expect_punct(self, text: str) -> Token:
        if not self.current.is_punct(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            raise self._error(f"expected keyword {text!r}")
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise self._error(f"expected {what}")
        return self._advance()

    def _expect_int(self, what: str = "integer") -> Token:
        if self.current.kind is not TokenKind.INT:
            raise self._error(f"expected {what}")
        return self._advance()

    def _expect_pattern(self) -> Token:
        if self.current.kind is not TokenKind.BITPATTERN:
            raise self._error("expected quoted bit pattern")
        return self._advance()

    # -- grammar ---------------------------------------------------------

    def parse_spec(self) -> ast.DeviceSpec:
        device = self._parse_device()
        if self.current.kind is not TokenKind.EOF:
            raise self._error("trailing input after device declaration")
        return device

    def _parse_device(self) -> ast.DeviceSpec:
        start = self._expect_keyword("device")
        name = self._expect_ident("device name")
        self._expect_punct("(")
        params = [self._parse_param()]
        while self.current.is_punct(","):
            self._advance()
            params.append(self._parse_param())
        self._expect_punct(")")
        self._expect_punct("{")

        types: list[ast.TypeDecl] = []
        registers: list[ast.RegisterDecl] = []
        variables: list[ast.VariableDecl] = []
        while not self.current.is_punct("}"):
            if self.current.kind is TokenKind.EOF:
                raise self._error("unterminated device body")
            if self.current.is_keyword("type"):
                types.append(self._parse_type_decl())
            elif self.current.is_keyword("register"):
                registers.append(self._parse_register())
            elif self.current.is_keyword("variable") or self.current.is_keyword("private"):
                variables.append(self._parse_variable())
            else:
                raise self._error("expected 'type', 'register' or 'variable'")
        self._expect_punct("}")
        return ast.DeviceSpec(
            name=name.text,
            params=tuple(params),
            types=tuple(types),
            registers=tuple(registers),
            variables=tuple(variables),
            location=start.location,
        )

    def _parse_param(self) -> ast.PortParam:
        name = self._expect_ident("port parameter name")
        self._expect_punct(":")
        self._expect_keyword("bit")
        self._expect_punct("[")
        size = self._expect_int("port data size")
        self._expect_punct("]")
        self._expect_keyword("port")
        self._expect_punct("@")
        self._expect_punct("{")
        offsets = self._parse_int_set()
        self._expect_punct("}")
        return ast.PortParam(
            name=name.text,
            data_size=size.int_value,
            offsets=tuple(offsets),
            location=name.location,
        )

    def _parse_int_set(self) -> list[ast.IntSetElement]:
        elements = [self._parse_int_set_element()]
        while self.current.is_punct(","):
            self._advance()
            elements.append(self._parse_int_set_element())
        return elements

    def _parse_int_set_element(self) -> ast.IntSetElement:
        lo = self._expect_int("set element")
        hi: Token | None = None
        if self.current.is_punct(".."):
            self._advance()
            hi = self._expect_int("range upper bound")
        return ast.IntSetElement(
            lo=lo.int_value,
            hi=None if hi is None else hi.int_value,
            location=lo.location,
        )

    def _parse_type_decl(self) -> ast.TypeDecl:
        start = self._expect_keyword("type")
        name = self._expect_ident("type name")
        self._expect_punct("=")
        definition = self._parse_type_expr()
        self._expect_punct(";")
        return ast.TypeDecl(name=name.text, definition=definition, location=start.location)

    # -- registers -------------------------------------------------------

    def _parse_register(self) -> ast.RegisterDecl:
        start = self._expect_keyword("register")
        name = self._expect_ident("register name")
        self._expect_punct("=")

        read_port: ast.PortRef | None = None
        write_port: ast.PortRef | None = None
        mask: str | None = None
        pre_actions: list[ast.PreAction] = []
        post_actions: list[ast.PreAction] = []

        while True:
            if self.current.is_keyword("read") or self.current.is_keyword("write"):
                mode = self._advance().text
                port = self._parse_port_ref()
                if mode == "read":
                    if read_port is not None:
                        raise self._error("duplicate read port", self.current)
                    read_port = port
                else:
                    if write_port is not None:
                        raise self._error("duplicate write port", self.current)
                    write_port = port
            elif self.current.is_keyword("mask"):
                self._advance()
                pattern = self._expect_pattern()
                if mask is not None:
                    raise self._error("duplicate mask", pattern)
                mask = pattern.pattern_value
            elif self.current.is_keyword("pre"):
                self._advance()
                pre_actions.extend(self._parse_actions())
            elif self.current.is_keyword("post"):
                self._advance()
                post_actions.extend(self._parse_actions())
            elif self.current.kind is TokenKind.IDENT:
                port = self._parse_port_ref()
                if read_port is not None or write_port is not None:
                    raise self._error("duplicate port specification", self.current)
                read_port = port
                write_port = port
            else:
                raise self._error("expected port, 'read', 'write', 'mask', 'pre' or 'post'")

            if self.current.is_punct(","):
                self._advance()
                continue
            break

        size: int | None = None
        if self.current.is_punct(":"):
            self._advance()
            self._expect_keyword("bit")
            self._expect_punct("[")
            size = self._expect_int("register size").int_value
            self._expect_punct("]")
        self._expect_punct(";")

        inferred = size is None
        if size is None:
            size = len(mask) if mask is not None else 8
        return ast.RegisterDecl(
            name=name.text,
            size=size,
            read_port=read_port,
            write_port=write_port,
            mask=mask,
            pre_actions=tuple(pre_actions),
            post_actions=tuple(post_actions),
            location=start.location,
            size_inferred=inferred,
        )

    def _parse_port_ref(self) -> ast.PortRef:
        base = self._expect_ident("port name")
        offset: int | None = None
        if self.current.is_punct("@"):
            self._advance()
            offset = self._expect_int("port offset").int_value
        return ast.PortRef(base=base.text, offset=offset, location=base.location)

    def _parse_actions(self) -> list[ast.PreAction]:
        self._expect_punct("{")
        actions = [self._parse_action()]
        while self.current.is_punct(";") or self.current.is_punct(","):
            self._advance()
            if self.current.is_punct("}"):
                break
            actions.append(self._parse_action())
        self._expect_punct("}")
        return actions

    def _parse_action(self) -> ast.PreAction:
        name = self._expect_ident("variable name")
        self._expect_punct("=")
        value = self._expect_int("action value")
        return ast.PreAction(
            variable=name.text, value=value.int_value, location=name.location
        )

    # -- variables ---------------------------------------------------------

    def _parse_variable(self) -> ast.VariableDecl:
        private = False
        start = self.current
        if self.current.is_keyword("private"):
            private = True
            self._advance()
        self._expect_keyword("variable")
        name = self._expect_ident("variable name")
        self._expect_punct("=")

        fragments = [self._parse_fragment()]
        while self.current.is_punct("#"):
            self._advance()
            fragments.append(self._parse_fragment())

        attributes: set[str] = set()
        while self.current.is_punct(","):
            self._advance()
            if self.current.is_keyword("volatile"):
                self._advance()
                attributes.add("volatile")
            elif self.current.is_keyword("read") or self.current.is_keyword("write"):
                mode = self._advance().text
                self._expect_keyword("trigger")
                attributes.add(f"{mode} trigger")
            else:
                raise self._error("expected variable attribute")

        self._expect_punct(":")
        type_expr = self._parse_type_expr()
        self._expect_punct(";")
        return ast.VariableDecl(
            name=name.text,
            private=private,
            fragments=tuple(fragments),
            attributes=frozenset(attributes),
            type_expr=type_expr,
            location=start.location,
        )

    def _parse_fragment(self) -> ast.Fragment:
        register = self._expect_ident("register name")
        hi: int | None = None
        lo: int | None = None
        if self.current.is_punct("["):
            self._advance()
            hi = self._expect_int("bit index").int_value
            lo = hi
            if self.current.is_punct(".."):
                self._advance()
                lo = self._expect_int("bit index").int_value
            self._expect_punct("]")
        return ast.Fragment(register=register.text, hi=hi, lo=lo, location=register.location)

    # -- type expressions ---------------------------------------------------

    def _parse_type_expr(self) -> ast.TypeExpr:
        token = self.current

        if token.is_keyword("signed"):
            self._advance()
            self._expect_keyword("int")
            self._expect_punct("(")
            width = self._expect_int("type width")
            self._expect_punct(")")
            return ast.IntTypeExpr(
                width=width.int_value, signed=True, location=token.location
            )

        if token.is_keyword("int"):
            self._advance()
            if self.current.is_punct("("):
                self._advance()
                width = self._expect_int("type width")
                self._expect_punct(")")
                return ast.IntTypeExpr(
                    width=width.int_value, signed=False, location=token.location
                )
            if self.current.is_punct("{"):
                self._advance()
                elements = self._parse_int_set()
                self._expect_punct("}")
                return ast.IntSetTypeExpr(
                    elements=tuple(elements), location=token.location
                )
            raise self._error("expected '(' or '{' after 'int'")

        if token.is_keyword("bool"):
            self._advance()
            return ast.BoolTypeExpr(location=token.location)

        if token.is_punct("{"):
            self._advance()
            members = [self._parse_enum_member()]
            while self.current.is_punct(","):
                self._advance()
                members.append(self._parse_enum_member())
            self._expect_punct("}")
            return ast.EnumTypeExpr(members=tuple(members), location=token.location)

        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.NamedTypeExpr(name=token.text, location=token.location)

        raise self._error("expected a type")

    def _parse_enum_member(self) -> ast.EnumMember:
        name = self._expect_ident("enum member name")
        direction = None
        for arrow in _ENUM_ARROWS:
            if self.current.is_punct(arrow):
                direction = self._advance().text
                break
        if direction is None:
            raise self._error("expected '=>', '<=' or '<=>'")
        pattern = self._expect_pattern()
        return ast.EnumMember(
            name=name.text,
            direction=direction,
            pattern=pattern.pattern_value,
            location=name.location,
        )


def parse(source: str, filename: str = "<spec>") -> ast.DeviceSpec:
    """Parse Devil source text into a :class:`~repro.devil.ast.DeviceSpec`."""
    return Parser(tokenize(source, filename)).parse_spec()
