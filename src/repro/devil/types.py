"""Resolved Devil types.

Type *expressions* (``repro.devil.ast``) are syntax; the checker resolves
them against the width of the variable they annotate, producing the
semantic types in this module.  Resolved types know how to

* validate a value (``contains``),
* encode a value to raw register bits and decode bits back
  (``encode``/``decode``), including sign extension, enum mappings and
  wildcard (``*``) bits in enum patterns,
* describe themselves to the code generators (distinct C struct types in
  debug mode — paper §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class DevilTypeError(ValueError):
    """A value does not belong to a Devil type's domain."""


@dataclass(frozen=True)
class DevilType:
    """Base class: a Devil type occupying ``width`` bits."""

    width: int

    #: Types represented as a distinct C struct in debug mode (enum, bool,
    #: int-set); plain integers stay C integers with run-time range asserts.
    struct_encoded: bool = field(default=False, init=False)

    def contains(self, value: object) -> bool:
        raise NotImplementedError

    def encode(self, value: object) -> int:
        """Map an API-level value to raw bits (unsigned, ``width`` wide)."""
        raise NotImplementedError

    def decode(self, bits: int) -> object:
        """Map raw bits to an API-level value; raises on non-domain bits."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(DevilType):
    signed: bool = False

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def contains(self, value: object) -> bool:
        return isinstance(value, int) and self.min_value <= value <= self.max_value

    def encode(self, value: object) -> int:
        if not self.contains(value):
            raise DevilTypeError(f"{value!r} not in {self.describe()}")
        assert isinstance(value, int)
        return value & ((1 << self.width) - 1)

    def decode(self, bits: int) -> int:
        bits &= (1 << self.width) - 1
        if self.signed and bits >= (1 << (self.width - 1)):
            return bits - (1 << self.width)
        return bits

    def describe(self) -> str:
        prefix = "signed " if self.signed else ""
        return f"{prefix}int({self.width})"


@dataclass(frozen=True)
class BoolType(DevilType):
    width: int = 1

    def contains(self, value: object) -> bool:
        return isinstance(value, bool) or value in (0, 1)

    def encode(self, value: object) -> int:
        if not self.contains(value):
            raise DevilTypeError(f"{value!r} is not a bool")
        return 1 if value else 0

    def decode(self, bits: int) -> bool:
        return bool(bits & 1)

    def describe(self) -> str:
        return "bool"


@dataclass(frozen=True)
class EnumValue:
    """A resolved enum member.

    ``bits``/``care`` encode the member's pattern: positions outside
    ``care`` were ``*`` in the source (don't-care on read, written as 0).
    """

    name: str
    bits: int
    care: int
    readable: bool
    writable: bool

    def matches(self, raw: int) -> bool:
        return (raw & self.care) == self.bits

    def overlaps(self, other: "EnumValue") -> bool:
        """Whether some raw value matches both patterns."""
        common = self.care & other.care
        return (self.bits & common) == (other.bits & common)

    def coverage(self, width: int) -> int:
        """Number of raw values this pattern matches."""
        wildcard_bits = width - bin(self.care & ((1 << width) - 1)).count("1")
        return 1 << wildcard_bits

    def __str__(self) -> str:
        return self.name


def parse_enum_pattern(pattern: str) -> tuple[int, int]:
    """Parse a value pattern of 0/1/* into ``(bits, care)``.

    ``.`` is *not* legal in a value pattern (it belongs to register masks);
    callers turn the raised error into a checker diagnostic — this is one of
    the mechanisms that catches §3.2 pattern-character mutations.
    """
    bits = care = 0
    for char in pattern:
        bits <<= 1
        care <<= 1
        if char == "1":
            bits |= 1
            care |= 1
        elif char == "0":
            care |= 1
        elif char == "*":
            pass
        else:
            raise DevilTypeError(
                f"character {char!r} not allowed in a value pattern (only 0 1 *)"
            )
    return bits, care


@dataclass(frozen=True)
class EnumType(DevilType):
    members: tuple[EnumValue, ...] = ()
    #: Name of the ``type`` declaration, or the owning variable for inline
    #: enums — gives each enum a distinct C struct in debug mode (Figure 4).
    type_name: str = ""

    struct_encoded: bool = field(default=True, init=False)

    def member(self, name: str) -> EnumValue | None:
        for value in self.members:
            if value.name == name:
                return value
        return None

    def contains(self, value: object) -> bool:
        if isinstance(value, EnumValue):
            return value in self.members
        if isinstance(value, str):
            return self.member(value) is not None
        return False

    def encode(self, value: object) -> int:
        member = value if isinstance(value, EnumValue) else None
        if member is None and isinstance(value, str):
            member = self.member(value)
        if member is None or member not in self.members:
            raise DevilTypeError(f"{value!r} not a member of {self.describe()}")
        if not member.writable:
            raise DevilTypeError(f"{member.name} has no write mapping")
        return member.bits  # '*' positions written as 0

    def decode(self, bits: int) -> EnumValue:
        for member in self.members:
            if member.readable and member.matches(bits):
                return member
        raise DevilTypeError(
            f"device returned {bits:#x}, not a readable member of {self.describe()}"
        )

    def readable_members(self) -> tuple[EnumValue, ...]:
        return tuple(m for m in self.members if m.readable)

    def writable_members(self) -> tuple[EnumValue, ...]:
        return tuple(m for m in self.members if m.writable)

    def read_exhaustive(self) -> bool:
        """Whether readable patterns cover every raw value exactly once.

        The paper's no-omission rule: "Read elements of a type mapping must
        be exhaustive" (§2.2).  Overlap is reported separately, so here we
        only require full coverage.
        """
        covered = 0
        for member in self.readable_members():
            covered += member.coverage(self.width)
        return covered >= (1 << self.width)

    def describe(self) -> str:
        body = ", ".join(m.name for m in self.members)
        return f"enum {self.type_name or ''}{{{body}}}"


@dataclass(frozen=True)
class IntSetType(DevilType):
    """A fixed set of integers.

    Deliberately *not* struct-encoded: the paper's §2.3 example ("the stub
    for reading a variable of type int{0,2,3} contains an assertion that
    verifies that the value read is a two-bit integer that is not equal to
    1") shows set-typed stubs trafficking in plain integers guarded by
    run-time assertions.
    """

    values: tuple[int, ...] = ()
    type_name: str = ""

    def contains(self, value: object) -> bool:
        return isinstance(value, int) and value in self.values

    def encode(self, value: object) -> int:
        if not self.contains(value):
            raise DevilTypeError(f"{value!r} not in {self.describe()}")
        assert isinstance(value, int)
        return value & ((1 << self.width) - 1)

    def decode(self, bits: int) -> int:
        bits &= (1 << self.width) - 1
        if bits not in self.values:
            raise DevilTypeError(
                f"device returned {bits:#x}, not in {self.describe()}"
            )
        return bits

    def describe(self) -> str:
        return "int {" + ", ".join(str(v) for v in self.values) + "}"
