"""A tiny indented-C writer used by the stub generators."""

from __future__ import annotations


class CWriter:
    """Accumulates C source text with consistent indentation."""

    def __init__(self, indent: str = "    "):
        self._indent = indent
        self._depth = 0
        self._lines: list[str] = []

    def line(self, text: str = "") -> "CWriter":
        if text:
            self._lines.append(self._indent * self._depth + text)
        else:
            self._lines.append("")
        return self

    def blank(self) -> "CWriter":
        if self._lines and self._lines[-1] != "":
            self._lines.append("")
        return self

    def comment(self, text: str) -> "CWriter":
        return self.line(f"/* {text} */")

    def open_block(self, header: str) -> "CWriter":
        self.line(header + " {")
        self._depth += 1
        return self

    def close_block(self, suffix: str = "") -> "CWriter":
        self._depth -= 1
        return self.line("}" + suffix)

    def lines(self, text: str) -> "CWriter":
        for raw in text.splitlines():
            self.line(raw)
        return self

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"
