"""Shared helpers for the Devil stub generators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.devil.layout import CheckedRegister, CheckedVariable
from repro.devil.types import BoolType, EnumType, IntSetType, IntType


@dataclass(frozen=True)
class CodegenOptions:
    """Knobs of the stub generator.

    ``mode`` selects production (bare, fast) or debug stubs (distinct C
    struct per enum type plus run-time assertions — paper §2.3).  ``prefix``
    is prepended to every generated name, mirroring the paper's
    ``#define dev_name bm`` mechanism; the Figure 4 listing corresponds to
    an empty prefix.

    ``bases`` optionally maps port parameters to concrete addresses.  This
    is the paper's "generation of stubs for the specific hardware/software
    context": with bases given, the port globals are baked into the
    generated header (outside any mutation region) and ``devil_init``
    takes no arguments; without them, the driver passes addresses to
    ``devil_init`` at run time.
    """

    mode: str = "debug"  # "debug" | "production"
    prefix: str = ""
    bases: tuple[tuple[str, int], ...] | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("debug", "production"):
            raise ValueError(f"unknown codegen mode {self.mode!r}")
        if isinstance(self.bases, dict):
            object.__setattr__(self, "bases", tuple(sorted(self.bases.items())))

    def base_of(self, param: str) -> int | None:
        if self.bases is None:
            return None
        for name, address in self.bases:
            if name == param:
                return address
        return None

    @property
    def debug(self) -> bool:
        return self.mode == "debug"

    def name(self, base: str) -> str:
        return f"{self.prefix}_{base}" if self.prefix else base


def c_int_type(width: int, signed: bool = False) -> str:
    """Narrowest kernel integer typedef holding ``width`` bits."""
    for bits, unsigned_name, signed_name in (
        (8, "u8", "s8"),
        (16, "u16", "s16"),
        (32, "u32", "s32"),
    ):
        if width <= bits:
            return signed_name if signed else unsigned_name
    raise ValueError(f"unsupported width {width}")


def c_hex(value: int) -> str:
    """Unsigned hexadecimal literal, Figure-4 style (``0xefu``)."""
    return f"0x{value:x}u"


def io_read_fn(size: int) -> str:
    return {8: "inb", 16: "inw", 32: "inl"}[size]


def io_write_fn(size: int) -> str:
    return {8: "outb", 16: "outw", 32: "outl"}[size]


def struct_base_name(variable: CheckedVariable) -> str:
    """Base name of the debug-mode struct for an enum-typed variable."""
    devil_type = variable.devil_type
    if isinstance(devil_type, EnumType) and devil_type.type_name:
        return devil_type.type_name
    return variable.name


def value_c_type(variable: CheckedVariable, options: CodegenOptions) -> str:
    """C type of the variable's API-level value."""
    devil_type = variable.devil_type
    if isinstance(devil_type, EnumType) and options.debug:
        return options.name(f"{struct_base_name(variable)}_t")
    if isinstance(devil_type, IntType):
        return c_int_type(devil_type.width, devil_type.signed)
    if isinstance(devil_type, (IntSetType, BoolType)):
        return c_int_type(devil_type.width, signed=False)
    if isinstance(devil_type, EnumType):
        # Production mode: enums collapse to their raw bit value.
        return c_int_type(devil_type.width, signed=False)
    raise AssertionError(f"unhandled type {devil_type!r}")


def cache_field(register: CheckedRegister) -> str:
    return f"cache_{register.name}"


def registers_in_emission_order(
    registers: dict[str, CheckedRegister],
) -> tuple[list[CheckedRegister], list[CheckedRegister]]:
    """Split registers into (context-free, context-dependent).

    Context-free registers (no pre/post actions) are emitted first; the
    private-variable stubs they support come next; registers whose access
    requires pre-actions follow, so every call is to an already-defined
    static inline function.
    """
    plain: list[CheckedRegister] = []
    contextual: list[CheckedRegister] = []
    for register in registers.values():
        if register.decl.pre_actions or register.decl.post_actions:
            contextual.append(register)
        else:
            plain.append(register)
    return plain, contextual
