"""C stub generation from checked Devil specifications (paper §2.3)."""

from repro.devil.codegen.common import CodegenOptions
from repro.devil.codegen.header import generate_header

__all__ = ["CodegenOptions", "generate_header"]
