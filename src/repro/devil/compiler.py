"""Devil compiler driver: parse → intra-layer check → inter-layer check.

The result of a successful compilation is a :class:`CheckedSpec`, the
single source of truth consumed by the C code generators
(`repro.devil.codegen`), the Python runtime (`repro.devil.runtime`) and the
experiment harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import CompileError, Diagnostic, DiagnosticSink
from repro.devil import ast
from repro.devil.check_inter import InterChecker
from repro.devil.check_intra import IntraChecker, SymbolTables
from repro.devil.layout import CheckedRegister, CheckedVariable
from repro.devil.parser import parse


@dataclass
class CheckedSpec:
    """A consistency-checked Devil specification."""

    device: ast.DeviceSpec
    tables: SymbolTables
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def registers(self) -> dict[str, CheckedRegister]:
        return self.tables.registers

    @property
    def variables(self) -> dict[str, CheckedVariable]:
        return self.tables.variables

    def public_variables(self) -> list[CheckedVariable]:
        """The functional interface: every non-private variable."""
        return [v for v in self.tables.variables.values() if not v.private]

    def private_variables(self) -> list[CheckedVariable]:
        return [v for v in self.tables.variables.values() if v.private]

    def register(self, name: str) -> CheckedRegister:
        return self.tables.registers[name]

    def variable(self, name: str) -> CheckedVariable:
        return self.tables.variables[name]


def parse_spec(source: str, filename: str = "<spec>") -> ast.DeviceSpec:
    """Parse Devil source text; raises :class:`CompileError` on bad syntax."""
    return parse(source, filename)


def check_spec(device: ast.DeviceSpec) -> CheckedSpec:
    """Run both checker layers; raises :class:`CompileError` on any error.

    All diagnostics are collected before raising, so a single run reports
    every inconsistency — the behaviour the mutation harness measures.
    """
    sink = DiagnosticSink()
    tables = IntraChecker(device, sink).run()
    InterChecker(device, tables, sink).run()
    sink.raise_if_errors()
    return CheckedSpec(device=device, tables=tables, diagnostics=sink.diagnostics)


def compile_spec(source: str, filename: str = "<spec>") -> CheckedSpec:
    """Compile Devil source text to a :class:`CheckedSpec`."""
    return check_spec(parse_spec(source, filename))


def spec_errors(source: str, filename: str = "<spec>") -> list[Diagnostic]:
    """All error diagnostics for ``source``, or ``[]`` if it compiles.

    Convenience used by the Table 2 harness: a mutant is *detected* exactly
    when this list is non-empty.
    """
    try:
        compile_spec(source, filename)
    except CompileError as exc:
        return exc.diagnostics
    return []
