"""Execute a checked Devil specification directly from Python.

The C stubs of `repro.devil.codegen` are what the paper ships; this module
is the same semantics without the C detour: a :class:`DeviceHandle` binds a
:class:`~repro.devil.compiler.CheckedSpec` to port bases on an I/O bus and
exposes typed ``get``/``set``/``trigger`` operations with exactly the
debug-mode checks of the generated stubs (domain assertions, set
membership, device-conformance mask checks).

Any object with ``read_port(address, size) -> int`` and
``write_port(address, value, size)`` works as a bus;
:class:`repro.hw.bus.IOBus` is the standard implementation.
"""

from __future__ import annotations

from typing import Protocol

from repro.devil.compiler import CheckedSpec
from repro.devil.layout import CheckedRegister, CheckedVariable
from repro.devil.types import DevilTypeError, EnumType, EnumValue


class Bus(Protocol):
    def read_port(self, address: int, size: int) -> int: ...

    def write_port(self, address: int, value: int, size: int) -> None: ...


class DevilAssertionError(AssertionError):
    """A debug-stub assertion fired (the paper's "Run-time check" class)."""


class DeviceHandle:
    """Typed access to one device instance through its Devil spec.

    ``bases`` maps each port parameter of the device to its physical base
    address; with a single parameter a bare integer is accepted.

    ``debug=True`` (default) enables the run-time checks of the paper's
    debug stubs; ``debug=False`` behaves like production stubs.
    """

    def __init__(
        self,
        spec: CheckedSpec,
        bus: Bus,
        bases: dict[str, int] | int,
        debug: bool = True,
    ):
        self.spec = spec
        self.bus = bus
        self.debug = debug
        params = [param.name for param in spec.device.params]
        if isinstance(bases, int):
            if len(params) != 1:
                raise ValueError(
                    f"device {spec.name!r} has {len(params)} port parameters; "
                    "pass a mapping"
                )
            bases = {params[0]: bases}
        missing = [name for name in params if name not in bases]
        if missing:
            raise ValueError(f"missing base address(es) for {', '.join(missing)}")
        self.bases = dict(bases)
        self._cache: dict[str, int] = {
            name: 0 for name, register in spec.registers.items() if register.writable
        }

    # -- assertion plumbing ---------------------------------------------

    def _assert(self, condition: bool, message: str) -> None:
        if self.debug and not condition:
            raise DevilAssertionError(f"Devil assertion failed: {message}")

    # -- register access ----------------------------------------------------

    def _port_address(self, register: CheckedRegister, direction: str) -> int:
        port = (
            register.decl.read_port
            if direction == "read"
            else register.decl.write_port
        )
        assert port is not None, f"register {register.name} lacks a {direction} port"
        offset = 0 if port.offset is None else port.offset
        return self.bases[port.base] + offset

    def _run_actions(self, register: CheckedRegister, which: str) -> None:
        actions = (
            register.decl.pre_actions
            if which == "pre"
            else register.decl.post_actions
        )
        for action in actions:
            self.set(action.variable, action.value)

    def read_register(self, name: str) -> int:
        """Raw register read, honouring pre/post actions and debug checks."""
        register = self.spec.registers[name]
        if not register.readable:
            raise DevilTypeError(f"register {name!r} is not readable")
        self._run_actions(register, "pre")
        raw = self.bus.read_port(self._port_address(register, "read"), register.size)
        self._run_actions(register, "post")
        self._assert(
            register.mask.conforms_on_read(raw),
            f"register {name!r} read {raw:#x}, fixed bits expect "
            f"{register.mask.fixed_value:#x} under {register.mask.fixed:#x}",
        )
        return raw

    def write_register(self, name: str, value: int) -> None:
        """Raw register write: mask composition then the port access."""
        register = self.spec.registers[name]
        if not register.writable:
            raise DevilTypeError(f"register {name!r} is not writable")
        self._run_actions(register, "pre")
        wire = register.mask.compose_write(value)
        self.bus.write_port(self._port_address(register, "write"), wire, register.size)
        self._cache[name] = value
        self._run_actions(register, "post")

    # -- variable access -------------------------------------------------------

    def variable(self, name: str) -> CheckedVariable:
        try:
            return self.spec.variables[name]
        except KeyError:
            raise KeyError(
                f"device {self.spec.name!r} has no variable {name!r}"
            ) from None

    def get(self, name: str):
        """Read a device variable, returning a typed value."""
        variable = self.variable(name)
        if not variable.readable:
            raise DevilTypeError(f"variable {name!r} is not readable")
        parts = [
            fragment.extract(self.read_register(fragment.register))
            for fragment in variable.fragments
        ]
        bits = variable.join_bits(parts)
        if not self.debug:
            return variable.devil_type.decode(bits)
        try:
            return variable.devil_type.decode(bits)
        except DevilTypeError as exc:
            raise DevilAssertionError(f"Devil assertion failed: {exc}") from exc

    def set(self, name: str, value) -> None:
        """Write a device variable from a typed value."""
        variable = self.variable(name)
        if not variable.writable:
            raise DevilTypeError(f"variable {name!r} is not writable")
        devil_type = variable.devil_type
        if self.debug and not devil_type.contains(value):
            raise DevilAssertionError(
                f"Devil assertion failed: {value!r} not in {devil_type.describe()}"
            )
        bits = devil_type.encode(value)
        for fragment, fragment_bits in variable.split_bits(bits):
            register = self.spec.registers[fragment.register]
            covers_all = (
                fragment.mask & register.mask.relevant
            ) == register.mask.relevant
            base = 0 if covers_all else self._cache.get(fragment.register, 0)
            self.write_register(
                fragment.register, fragment.insert(base, fragment_bits)
            )

    def trigger(self, name: str) -> None:
        """Re-issue the cached value of a ``write trigger`` variable."""
        variable = self.variable(name)
        if "write trigger" not in variable.decl.attributes:
            raise DevilTypeError(f"variable {name!r} has no write trigger")
        for fragment in variable.fragments:
            self.write_register(
                fragment.register, self._cache.get(fragment.register, 0)
            )

    def latch(self, name: str) -> None:
        """Read a ``read trigger`` variable purely for its side effect."""
        variable = self.variable(name)
        if "read trigger" not in variable.decl.attributes:
            raise DevilTypeError(f"variable {name!r} has no read trigger")
        for fragment in variable.fragments:
            self.read_register(fragment.register)

    def enum_value(self, variable_name: str, member_name: str) -> EnumValue:
        """Look up an enum constant of a variable's type (e.g. ``MASTER``)."""
        devil_type = self.variable(variable_name).devil_type
        if not isinstance(devil_type, EnumType):
            raise DevilTypeError(f"variable {variable_name!r} is not enum-typed")
        member = devil_type.member(member_name)
        if member is None:
            raise DevilTypeError(
                f"{devil_type.describe()} has no member {member_name!r}"
            )
        return member
