"""Bit-layout resolution for checked Devil specifications.

This module turns syntactic declarations into *resolved* entities with all
bit arithmetic precomputed:

* :class:`MaskInfo` — the integer views of a register mask string
  (``'1..00000'`` &c., MSB first): which bits are relevant (``.``), which
  are forced on write (``0``/``1``) and which are checkable on read;
* :class:`ResolvedFragment` — a variable fragment with concrete ``hi``/
  ``lo`` bit positions;
* :class:`CheckedRegister` / :class:`CheckedVariable` — declaration plus
  derived facts, shared by the checker, the code generators and the Python
  runtime, so all three agree bit-for-bit on the semantics.

Composition order follows the paper: in ``dx = x_high[3..0] # x_low[3..0]``
the *first* fragment is the most significant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devil import ast
from repro.devil.types import DevilType


@dataclass(frozen=True)
class MaskInfo:
    """Integer decomposition of a register mask string."""

    size: int
    relevant: int  # bits marked '.'
    force_one: int  # bits marked '1' (forced high on write)
    fixed: int  # bits marked '0' or '1' (device-conformance checkable)
    fixed_value: int  # expected value of the fixed bits

    @classmethod
    def from_string(cls, mask: str) -> "MaskInfo":
        size = len(mask)
        relevant = force_one = fixed = fixed_value = 0
        for index, char in enumerate(mask):
            bit = 1 << (size - 1 - index)
            if char == ".":
                relevant |= bit
            elif char == "1":
                force_one |= bit
                fixed |= bit
                fixed_value |= bit
            elif char == "0":
                fixed |= bit
            elif char == "*":
                pass
            else:
                raise ValueError(f"invalid mask character {char!r}")
        return cls(size, relevant, force_one, fixed, fixed_value)

    def compose_write(self, relevant_bits: int) -> int:
        """Raw value to put on the wire for the given relevant-bit value."""
        return (relevant_bits & self.relevant) | self.force_one

    def conforms_on_read(self, raw: int) -> bool:
        """Whether a raw read matches the fixed bits of the mask."""
        return (raw & self.fixed) == self.fixed_value


@dataclass(frozen=True)
class ResolvedFragment:
    """A fragment with concrete bit bounds (``hi >= lo``)."""

    register: str
    hi: int
    lo: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    @property
    def mask(self) -> int:
        """Mask of the fragment's bits, in register bit positions."""
        return ((1 << self.width) - 1) << self.lo

    def extract(self, raw: int) -> int:
        """Pull the fragment's bits out of a raw register value."""
        return (raw >> self.lo) & ((1 << self.width) - 1)

    def insert(self, base: int, bits: int) -> int:
        """Replace the fragment's bits inside ``base`` with ``bits``."""
        return (base & ~self.mask) | ((bits << self.lo) & self.mask)

    def __str__(self) -> str:
        if self.hi == self.lo:
            return f"{self.register}[{self.hi}]"
        return f"{self.register}[{self.hi}..{self.lo}]"


@dataclass(frozen=True)
class CheckedRegister:
    """A register declaration plus resolved mask facts."""

    decl: ast.RegisterDecl
    mask: MaskInfo
    #: Port data size of the port(s) this register is reached through.
    port_size: int

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def size(self) -> int:
        return self.decl.size

    @property
    def readable(self) -> bool:
        return self.decl.readable

    @property
    def writable(self) -> bool:
        return self.decl.writable

    def pre_context(self) -> dict[str, int]:
        """Pre-action assignments as a mapping, for disjointness tests."""
        return {action.variable: action.value for action in self.decl.pre_actions}


@dataclass(frozen=True)
class CheckedVariable:
    """A variable declaration plus resolved fragments and type."""

    decl: ast.VariableDecl
    fragments: tuple[ResolvedFragment, ...]
    devil_type: DevilType
    readable: bool
    writable: bool
    #: Spec-unique counter stamped into debug-mode struct values (the
    #: ``type`` field of Figure 4).
    type_tag: int = 0

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def private(self) -> bool:
        return self.decl.private

    @property
    def width(self) -> int:
        return sum(fragment.width for fragment in self.fragments)

    def split_bits(self, bits: int) -> list[tuple[ResolvedFragment, int]]:
        """Split an encoded value into per-fragment bit groups, MSB first."""
        remaining = self.width
        parts: list[tuple[ResolvedFragment, int]] = []
        for fragment in self.fragments:
            remaining -= fragment.width
            parts.append(
                (fragment, (bits >> remaining) & ((1 << fragment.width) - 1))
            )
        return parts

    def join_bits(self, parts: list[int]) -> int:
        """Concatenate per-fragment bit groups (MSB first) into one value."""
        if len(parts) != len(self.fragments):
            raise ValueError("fragment count mismatch")
        value = 0
        for fragment, bits in zip(self.fragments, parts):
            value = (value << fragment.width) | (bits & ((1 << fragment.width) - 1))
        return value


def resolve_fragment(
    fragment: ast.Fragment, register: ast.RegisterDecl
) -> ResolvedFragment:
    """Resolve a syntactic fragment against its register's size.

    Whole-register fragments become ``[size-1..0]``.  Bounds are *not*
    validated here — the checker owns that, so it can report rather than
    raise.
    """
    if fragment.is_whole:
        return ResolvedFragment(register.name, register.size - 1, 0)
    assert fragment.hi is not None and fragment.lo is not None
    hi, lo = fragment.hi, fragment.lo
    if hi < lo:  # normalised so downstream bit math is uniform
        hi, lo = lo, hi
    return ResolvedFragment(register.name, hi, lo)


def used_bits_by_register(
    variables: list[CheckedVariable],
) -> dict[str, int]:
    """Union of variable-fragment bits per register name."""
    usage: dict[str, int] = {}
    for variable in variables:
        for fragment in variable.fragments:
            usage[fragment.register] = usage.get(fragment.register, 0) | fragment.mask
    return usage
