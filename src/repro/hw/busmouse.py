"""Logitech busmouse model — the device of the paper's Figure 3.

Register map (base, 4 ports):

* base+0 — data: returns the nibble selected by the index register
  (0 = x low, 1 = x high, 2 = y low, 3 = y high + buttons in bits 7..5);
* base+1 — signature: write-then-read scratch register drivers use to
  detect the device;
* base+2 — control: bit 7 set → bits 6..5 select the data index;
  bit 7 clear → bit 4 controls interrupt enable (0 = enabled);
* base+3 — configuration (write-only).
"""

from __future__ import annotations

from repro.hw.device import Device


class LogitechBusmouse(Device):
    name = "busmouse"

    def __init__(self, base: int = 0x23C):
        self.base = base
        self.reset()

    def port_ranges(self) -> list[tuple[int, int]]:
        return [(self.base, 4)]

    def reset(self) -> None:
        self.signature = 0
        self.config = 0
        self.index = 0
        self.interrupt_disabled = True
        self.dx = 0
        self.dy = 0
        self.buttons = 0  # 3 bits, active state

    _SNAPSHOT_FIELDS = (
        "signature",
        "config",
        "index",
        "interrupt_disabled",
        "dx",
        "dy",
        "buttons",
    )

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self._SNAPSHOT_FIELDS}

    def restore(self, snapshot: dict) -> None:
        for name, value in snapshot.items():
            setattr(self, name, value)

    # -- host-side stimulus (tests / examples) ----------------------------

    def move(self, dx: int, dy: int, buttons: int | None = None) -> None:
        """Accumulate mouse motion; values clamp to the 8-bit counters."""
        self.dx = max(-128, min(127, self.dx + dx))
        self.dy = max(-128, min(127, self.dy + dy))
        if buttons is not None:
            self.buttons = buttons & 0x7

    def clear_motion(self) -> None:
        self.dx = 0
        self.dy = 0

    # -- I/O -----------------------------------------------------------------

    def io_read(self, address: int, size: int) -> int:
        offset = address - self.base
        if offset == 0:
            return self._data_nibble()
        if offset == 1:
            return self.signature
        if offset == 2:
            # Reading the control port reflects the index bits.
            return 0x80 | (self.index << 5)
        return 0xFF

    def io_write(self, address: int, value: int, size: int) -> None:
        offset = address - self.base
        if offset == 1:
            self.signature = value & 0xFF
        elif offset == 2:
            if value & 0x80:
                self.index = (value >> 5) & 0x3
            else:
                self.interrupt_disabled = bool(value & 0x10)
        elif offset == 3:
            self.config = value & 0xFF

    def _data_nibble(self) -> int:
        dx = self.dx & 0xFF
        dy = self.dy & 0xFF
        if self.index == 0:
            return dx & 0x0F
        if self.index == 1:
            return (dx >> 4) & 0x0F
        if self.index == 2:
            return dy & 0x0F
        # y high: buttons in bits 7..5 (active low on real hardware; the
        # spec types them as a plain 3-bit integer, so we expose them raw).
        return ((self.buttons & 0x7) << 5) | ((dy >> 4) & 0x0F)
