"""3Dlabs Permedia 2 graphics card model (port-mapped projection).

The real Permedia 2 is memory-mapped; Devil abstracts the mapping behind
ports, so the model exposes the control space through an index/data window
(the idiom its DOS-era VGA compatibility uses) plus the RAMDAC's palette
autoincrement registers — the two access patterns its Devil specification
exercises (indexed access pre-actions and sequenced palette writes).
"""

from __future__ import annotations

from repro.hw.device import Device

#: Well-known control registers reachable through the index window.
REG_RESET_STATUS = 0x00
REG_CHIP_CONFIG = 0x02
REG_FIFO_SPACE = 0x03
REG_VIDEO_CONTROL = 0x10
REG_SCREEN_BASE = 0x11
REG_SCREEN_STRIDE = 0x12
REG_HTOTAL = 0x13
REG_VTOTAL = 0x14

CHIP_ID = 0x3D

FIFO_DEPTH = 32


class Permedia2(Device):
    name = "permedia2"

    def __init__(self, base: int = 0x3C0):
        self.base = base
        self.reset()

    def port_ranges(self) -> list[tuple[int, int]]:
        return [(self.base, 16)]

    def reset(self) -> None:
        self.index = 0
        self.registers = {
            REG_RESET_STATUS: 0,
            REG_CHIP_CONFIG: CHIP_ID,
            REG_FIFO_SPACE: FIFO_DEPTH,
            REG_VIDEO_CONTROL: 0,
            REG_SCREEN_BASE: 0,
            REG_SCREEN_STRIDE: 0,
            REG_HTOTAL: 0,
            REG_VTOTAL: 0,
        }
        self.palette = [(0, 0, 0)] * 256
        self.palette_index = 0
        self.palette_phase = 0  # 0=r 1=g 2=b
        self.palette_stage = [0, 0, 0]
        self.fifo_used = 0

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        # Palette entries are immutable tuples, so the list copy shares
        # them safely.
        return {
            "index": self.index,
            "registers": dict(self.registers),
            "palette": list(self.palette),
            "palette_index": self.palette_index,
            "palette_phase": self.palette_phase,
            "palette_stage": list(self.palette_stage),
            "fifo_used": self.fifo_used,
        }

    def restore(self, snapshot: dict) -> None:
        self.index = snapshot["index"]
        self.registers = dict(snapshot["registers"])
        self.palette = list(snapshot["palette"])
        self.palette_index = snapshot["palette_index"]
        self.palette_phase = snapshot["palette_phase"]
        self.palette_stage = list(snapshot["palette_stage"])
        self.fifo_used = snapshot["fifo_used"]

    # -- I/O ---------------------------------------------------------------

    def io_read(self, address: int, size: int) -> int:
        offset = address - self.base
        if offset == 0:  # index register
            return self.index
        if offset == 1:  # data register
            if self.index == REG_FIFO_SPACE:
                return FIFO_DEPTH - self.fifo_used
            return self.registers.get(self.index, 0) & 0xFF
        if offset == 4:  # palette read index
            return self.palette_index
        if offset == 5:  # palette data (autoincrement through r,g,b)
            value = self.palette[self.palette_index][self.palette_phase]
            self._advance_palette()
            return value
        if offset == 8:  # chip id low
            return CHIP_ID
        return 0xFF

    def io_write(self, address: int, value: int, size: int) -> None:
        offset = address - self.base
        if offset == 0:
            self.index = value & 0xFF
        elif offset == 1:
            if self.index == REG_RESET_STATUS and value & 0x80:
                self.reset()
                return
            self.registers[self.index] = value & 0xFF
            self.fifo_used = min(FIFO_DEPTH, self.fifo_used + 1)
        elif offset == 4:
            self.palette_index = value & 0xFF
            self.palette_phase = 0
        elif offset == 5:
            self.palette_stage[self.palette_phase] = value & 0xFF
            if self.palette_phase == 2:
                self.palette[self.palette_index] = tuple(self.palette_stage)
            self._advance_palette()
        elif offset == 8 and value == 0:
            self.fifo_used = 0  # host-visible FIFO drain strobe

    def _advance_palette(self) -> None:
        self.palette_phase += 1
        if self.palette_phase == 3:
            self.palette_phase = 0
            self.palette_index = (self.palette_index + 1) & 0xFF
