"""Base class for simulated devices."""

from __future__ import annotations


class StatefulSnapshotError(RuntimeError):
    """A device mutated state while relying on the base no-op snapshot.

    Raised by :meth:`repro.hw.machine.Machine.snapshot` when an attached
    device whose class never overrode :meth:`Device.snapshot` no longer
    matches the state it was attached with: a checkpoint taken of such a
    machine would silently leak the device's state across restores.
    """


class Device:
    """A port-mapped device.

    Subclasses implement :meth:`port_ranges`, :meth:`io_read` and
    :meth:`io_write`; addresses passed in are absolute, so models usually
    subtract their base first.
    """

    name = "device"

    def port_ranges(self) -> list[tuple[int, int]]:
        """Claimed ranges as ``(first_port, length)`` pairs."""
        raise NotImplementedError

    def io_read(self, address: int, size: int) -> int:
        raise NotImplementedError

    def io_write(self, address: int, value: int, size: int) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Return to power-on state (default: nothing)."""

    def snapshot(self):
        """Opaque snapshot of mutable device state (default: stateless).

        ``restore(snapshot())`` must reproduce every observable behaviour
        of the device at the snapshot point — the boot checkpointing
        machinery (`repro.kernel.checkpoint`) relies on it.  Stateful
        devices override both; the default covers devices whose reads
        and writes touch no instance state.  `repro.hw.machine.Machine`
        enforces the contract for attached devices: one that mutates
        state while still using this default raises
        :class:`StatefulSnapshotError` at snapshot time instead of
        silently leaking state across restores.
        """
        return None

    def restore(self, snapshot) -> None:
        """Reinstate state captured by :meth:`snapshot` (default: no-op)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
