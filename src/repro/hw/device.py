"""Base class for simulated devices."""

from __future__ import annotations


class Device:
    """A port-mapped device.

    Subclasses implement :meth:`port_ranges`, :meth:`io_read` and
    :meth:`io_write`; addresses passed in are absolute, so models usually
    subtract their base first.
    """

    name = "device"

    def port_ranges(self) -> list[tuple[int, int]]:
        """Claimed ranges as ``(first_port, length)`` pairs."""
        raise NotImplementedError

    def io_read(self, address: int, size: int) -> int:
        raise NotImplementedError

    def io_write(self, address: int, value: int, size: int) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Return to power-on state (default: nothing)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
