"""NE2000 (ns8390) Ethernet controller model.

The interesting property for Devil is its *paged* register file: bits 7..6
of the command register select one of three register pages at the same
port addresses — exactly the pre-action pattern of the busmouse index
register, but wider.  The model implements pages 0 and 1, the remote-DMA
engine over a 16 KiB buffer, and the station-address PROM.
"""

from __future__ import annotations

from repro.hw.device import Device

BUFFER_SIZE = 16 * 1024

# Command register bits.
CR_STP = 0x01
CR_STA = 0x02
CR_TXP = 0x04
CR_RD_READ = 0x08
CR_RD_WRITE = 0x10
CR_RD_ABORT = 0x20

DEFAULT_MAC = (0x00, 0x40, 0x05, 0x20, 0x01, 0x36)


class Ne2000(Device):
    name = "ne2000"

    def __init__(self, base: int = 0x300, mac: tuple[int, ...] = DEFAULT_MAC):
        self.base = base
        self.mac = tuple(mac)
        self.reset()

    def port_ranges(self) -> list[tuple[int, int]]:
        return [(self.base, 32)]  # 16 registers + data port + reset port

    def reset(self) -> None:
        self.command = CR_STP | CR_RD_ABORT
        self.page0 = {
            "pstart": 0, "pstop": 0, "bnry": 0, "tpsr": 0, "tbcr0": 0,
            "tbcr1": 0, "isr": 0x80, "rsar0": 0, "rsar1": 0, "rbcr0": 0,
            "rbcr1": 0, "rcr": 0, "tcr": 0, "dcr": 0, "imr": 0,
        }
        self.page1 = {
            "par": list(self.mac), "curr": 0, "mar": [0] * 8,
        }
        self.buffer = bytearray(BUFFER_SIZE)
        # Station address PROM (doubled bytes, as on real cards).
        self.prom = bytearray()
        for byte in self.mac:
            self.prom.extend((byte, byte))
        self.prom.extend(b"WW")  # word-wide marker
        self.remote_address = 0
        self.remote_count = 0
        self.remote_mode = "idle"

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        # ``prom`` is derived from the immutable ``mac`` and only ever
        # rebuilt (identically) by reset(), so it needs no capture.
        return {
            "command": self.command,
            "page0": dict(self.page0),
            "page1": {
                "par": list(self.page1["par"]),
                "curr": self.page1["curr"],
                "mar": list(self.page1["mar"]),
            },
            "buffer": bytes(self.buffer),
            "remote_address": self.remote_address,
            "remote_count": self.remote_count,
            "remote_mode": self.remote_mode,
        }

    def restore(self, snapshot: dict) -> None:
        self.command = snapshot["command"]
        self.page0 = dict(snapshot["page0"])
        page1 = snapshot["page1"]
        self.page1 = {
            "par": list(page1["par"]),
            "curr": page1["curr"],
            "mar": list(page1["mar"]),
        }
        self.buffer = bytearray(snapshot["buffer"])
        self.remote_address = snapshot["remote_address"]
        self.remote_count = snapshot["remote_count"]
        self.remote_mode = snapshot["remote_mode"]

    # -- helpers -----------------------------------------------------------

    @property
    def page(self) -> int:
        return (self.command >> 6) & 0x3

    def _remote_setup(self) -> None:
        self.remote_address = self.page0["rsar0"] | (self.page0["rsar1"] << 8)
        self.remote_count = self.page0["rbcr0"] | (self.page0["rbcr1"] << 8)

    def _remote_read_byte(self) -> int:
        if self.remote_count <= 0:
            return 0xFF
        address = self.remote_address
        if address < len(self.prom) and self.remote_mode == "prom":
            value = self.prom[address]
        else:
            value = self.buffer[address % BUFFER_SIZE]
        self.remote_address += 1
        self.remote_count -= 1
        if self.remote_count == 0:
            self.page0["isr"] |= 0x40  # remote DMA complete
        return value

    def _remote_write_byte(self, value: int) -> None:
        if self.remote_count <= 0:
            return
        self.buffer[self.remote_address % BUFFER_SIZE] = value & 0xFF
        self.remote_address += 1
        self.remote_count -= 1
        if self.remote_count == 0:
            self.page0["isr"] |= 0x40

    # -- I/O ------------------------------------------------------------------

    _PAGE0_READ = [
        "command", "clda0", "clda1", "bnry", "tsr", "ncr", "fifo", "isr",
        "crda0", "crda1", "res1", "res2", "rsr", "cntr0", "cntr1", "cntr2",
    ]
    _PAGE0_WRITE = [
        "command", "pstart", "pstop", "bnry", "tpsr", "tbcr0", "tbcr1", "isr",
        "rsar0", "rsar1", "rbcr0", "rbcr1", "rcr", "tcr", "dcr", "imr",
    ]

    def io_read(self, address: int, size: int) -> int:
        offset = address - self.base
        if offset == 0x10:  # data port
            if size == 16:
                low = self._remote_read_byte()
                high = self._remote_read_byte()
                return low | (high << 8)
            return self._remote_read_byte()
        if offset == 0x1F:  # reset port
            self.page0["isr"] |= 0x80
            return 0
        if offset == 0:
            return self.command
        if self.page == 0:
            name = self._PAGE0_READ[offset] if offset < 16 else None
            if name == "isr":
                return self.page0["isr"]
            if name in ("bnry",):
                return self.page0["bnry"]
            if name in ("clda0", "crda0"):
                return self.remote_address & 0xFF
            if name in ("clda1", "crda1"):
                return (self.remote_address >> 8) & 0xFF
            if name == "tsr":
                return 0x01  # transmit ok
            if name == "rsr":
                return 0x01  # receive ok
            return 0
        if self.page == 1:
            if 1 <= offset <= 6:
                return self.page1["par"][offset - 1]
            if offset == 7:
                return self.page1["curr"]
            if 8 <= offset <= 15:
                return self.page1["mar"][offset - 8]
        return 0

    def io_write(self, address: int, value: int, size: int) -> None:
        offset = address - self.base
        if offset == 0x10:  # data port
            if size == 16:
                self._remote_write_byte(value & 0xFF)
                self._remote_write_byte((value >> 8) & 0xFF)
            else:
                self._remote_write_byte(value)
            return
        if offset == 0x1F:
            self.reset()
            return
        if offset == 0:
            self.command = value & 0xFF
            if value & (CR_RD_READ | CR_RD_WRITE) and not value & CR_RD_ABORT:
                self._remote_setup()
                # Remote reads below address 32 hit the station PROM, as on
                # a freshly reset card; everything else is packet memory.
                self.remote_mode = "prom" if self.remote_address < 32 else "buffer"
            if value & CR_TXP:
                self.page0["isr"] |= 0x02  # packet transmitted
            return
        if self.page == 0 and offset < 16:
            name = self._PAGE0_WRITE[offset]
            if name == "isr":
                self.page0["isr"] &= ~value & 0xFF  # write-1-to-clear
            else:
                self.page0[name] = value & 0xFF
            return
        if self.page == 1:
            if 1 <= offset <= 6:
                self.page1["par"][offset - 1] = value & 0xFF
            elif offset == 7:
                self.page1["curr"] = value & 0xFF
            elif 8 <= offset <= 15:
                self.page1["mar"][offset - 8] = value & 0xFF
