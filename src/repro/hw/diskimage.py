"""Sector-addressed disk images with a bootable toy filesystem.

The paper's worst mutants physically corrupted the partition table or
filesystem of the test machine ("two mutants of the original IDE driver
crashed the partition table/filesystem and required reformatting the
disk").  To reproduce that failure mode the disk image carries:

* an MBR at LBA 0 (0xAA55 signature, one partition entry),
* an "RFS1" superblock at the partition start holding a file table with
  per-file checksums,
* file sectors filled with deterministic content.

``repro.kernel.fsck`` compares a booted image against its pristine twin;
any divergence is the paper's "Damaged boot" outcome.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass, field

SECTOR_SIZE = 512

MBR_SIGNATURE = 0xAA55
PARTITION_ENTRY_OFFSET = 446
SUPERBLOCK_MAGIC = b"RFS1"

#: Default geometry: a deliberately small disk so campaigns stay fast.
#: The partition straddles LBA 256 so the driver's mid/high LBA task-file
#: bytes carry real payload during boot.
DEFAULT_SECTORS = 512
DEFAULT_PARTITION_START = 250
DEFAULT_FILE_COUNT = 8
DEFAULT_FILE_SECTORS = 2


@dataclass
class DiskImage:
    """A mutable array of sectors with write tracking."""

    sectors: list[bytes] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    @classmethod
    def blank(cls, sector_count: int = DEFAULT_SECTORS) -> "DiskImage":
        return cls(sectors=[bytes(SECTOR_SIZE)] * sector_count)

    @classmethod
    def bootable(
        cls,
        sector_count: int = DEFAULT_SECTORS,
        partition_start: int = DEFAULT_PARTITION_START,
        file_count: int = DEFAULT_FILE_COUNT,
        file_sectors: int = DEFAULT_FILE_SECTORS,
        seed: int = 2001,
    ) -> "DiskImage":
        """Build a disk a kernel can mount: MBR + superblock + files."""
        disk = cls.blank(sector_count)

        partition_size = sector_count - partition_start
        mbr = bytearray(SECTOR_SIZE)
        entry = PARTITION_ENTRY_OFFSET
        mbr[entry + 0] = 0x80  # bootable
        mbr[entry + 4] = 0x83  # "Linux" type
        mbr[entry + 8 : entry + 12] = partition_start.to_bytes(4, "little")
        mbr[entry + 12 : entry + 16] = partition_size.to_bytes(4, "little")
        mbr[510] = MBR_SIGNATURE & 0xFF
        mbr[511] = MBR_SIGNATURE >> 8
        disk.sectors[0] = bytes(mbr)

        # Files first (so checksums can go into the superblock).
        file_table: list[tuple[int, int, int]] = []  # (start, sectors, crc)
        next_lba = partition_start + 1
        for index in range(file_count):
            content = bytearray()
            for sector in range(file_sectors):
                payload = (
                    f"RFS file {index} sector {sector} seed {seed} ".encode()
                )
                block = (payload * (SECTOR_SIZE // len(payload) + 1))[:SECTOR_SIZE]
                disk.sectors[next_lba + sector] = bytes(block)
                content.extend(block)
            file_table.append(
                (next_lba, file_sectors, zlib.crc32(bytes(content)) & 0xFFFFFFFF)
            )
            next_lba += file_sectors

        superblock = bytearray(SECTOR_SIZE)
        superblock[0:4] = SUPERBLOCK_MAGIC
        superblock[4:8] = partition_size.to_bytes(4, "little")
        superblock[8:12] = file_count.to_bytes(4, "little")
        offset = 16
        for start, length, crc in file_table:
            superblock[offset : offset + 4] = start.to_bytes(4, "little")
            superblock[offset + 4 : offset + 8] = length.to_bytes(4, "little")
            superblock[offset + 8 : offset + 12] = crc.to_bytes(4, "little")
            offset += 12
        disk.sectors[partition_start] = bytes(superblock)
        disk.writes.clear()
        return disk

    # -- geometry ---------------------------------------------------------------

    @property
    def sector_count(self) -> int:
        return len(self.sectors)

    # -- access -----------------------------------------------------------------

    def read_sector(self, lba: int) -> bytes:
        if not 0 <= lba < len(self.sectors):
            raise IndexError(f"LBA {lba} outside disk of {len(self.sectors)}")
        return self.sectors[lba]

    def write_sector(self, lba: int, data: bytes) -> None:
        if not 0 <= lba < len(self.sectors):
            raise IndexError(f"LBA {lba} outside disk of {len(self.sectors)}")
        if len(data) != SECTOR_SIZE:
            raise ValueError(f"sector write of {len(data)} bytes")
        self.sectors[lba] = bytes(data)
        self.writes.append(lba)

    def copy(self) -> "DiskImage":
        return DiskImage(sectors=list(self.sectors))

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> tuple[tuple[bytes, ...], tuple[int, ...]]:
        """Copy-on-write snapshot: shares the immutable sector payloads.

        Only the sector *pointer table* and the write log are copied;
        ``write_sector`` replaces whole ``bytes`` objects, so the shared
        payloads can never be mutated under a snapshot.
        """
        return (tuple(self.sectors), tuple(self.writes))

    def restore(self, snapshot: tuple[tuple[bytes, ...], tuple[int, ...]]) -> None:
        sectors, writes = snapshot
        self.sectors = list(sectors)
        self.writes = list(writes)

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        for sector in self.sectors:
            digest.update(sector)
        return digest.hexdigest()

    def differs_from(self, other: "DiskImage") -> list[int]:
        """LBAs whose content differs between the two images."""
        return [
            lba
            for lba, (mine, theirs) in enumerate(zip(self.sectors, other.sectors))
            if mine != theirs
        ]


def words_to_bytes(words: list[int]) -> bytes:
    """Little-endian byte view of 16-bit words (IDE data-port order)."""
    return struct.pack(f"<{len(words)}H", *[word & 0xFFFF for word in words])


def bytes_to_words(data: bytes) -> list[int]:
    """Inverse of :func:`words_to_bytes`."""
    if len(data) % 2:
        return [
            data[index] | (data[index + 1] << 8)
            for index in range(0, len(data), 2)
        ]
    return list(struct.unpack(f"<{len(data) // 2}H", data))
