"""Intel 82371FB (PIIX) PCI IDE bus-master model.

The bus-master IDE function exposes, per channel, a command register, a
status register and a 32-bit PRD (physical region descriptor) table
pointer in I/O space.  The model accepts DMA programming and "completes"
transfers instantly — enough substrate for the Devil specification and its
driver examples; the boot-path experiments use PIO, as the paper's 2.2-era
driver does.
"""

from __future__ import annotations

from repro.hw.device import Device

# Command register bits.
BMICOM_START = 0x01
BMICOM_READ = 0x08  # direction: 1 = device-to-memory

# Status register bits.
BMISTA_ACTIVE = 0x01
BMISTA_ERROR = 0x02
BMISTA_IRQ = 0x04
BMISTA_DMA0_CAP = 0x20
BMISTA_DMA1_CAP = 0x40


class BusMaster82371FB(Device):
    name = "piix-bm"

    def __init__(self, base: int = 0xF000):
        self.base = base
        self.reset()

    def port_ranges(self) -> list[tuple[int, int]]:
        return [(self.base, 16)]  # two channels x 8 bytes

    def reset(self) -> None:
        self.command = [0, 0]
        self.status = [BMISTA_DMA0_CAP | BMISTA_DMA1_CAP] * 2
        self.prd = [0, 0]
        self.transfers: list[tuple[int, int, int]] = []  # (channel, prd, dir)

    def snapshot(self) -> dict:
        return {
            "command": list(self.command),
            "status": list(self.status),
            "prd": list(self.prd),
            "transfers": list(self.transfers),
        }

    def restore(self, snapshot: dict) -> None:
        self.command = list(snapshot["command"])
        self.status = list(snapshot["status"])
        self.prd = list(snapshot["prd"])
        self.transfers = list(snapshot["transfers"])

    def _channel(self, offset: int) -> int:
        return 0 if offset < 8 else 1

    def io_read(self, address: int, size: int) -> int:
        offset = address - self.base
        channel = self._channel(offset)
        reg = offset & 0x7
        if reg == 0:
            return self.command[channel]
        if reg == 2:
            return self.status[channel]
        if reg == 4:
            if size == 32:
                return self.prd[channel]
            return self.prd[channel] & 0xFF
        if reg in (5, 6, 7):
            return (self.prd[channel] >> ((reg - 4) * 8)) & 0xFF
        return 0

    def io_write(self, address: int, value: int, size: int) -> None:
        offset = address - self.base
        channel = self._channel(offset)
        reg = offset & 0x7
        if reg == 0:
            starting = bool(value & BMICOM_START) and not (
                self.command[channel] & BMICOM_START
            )
            self.command[channel] = value & 0xFF
            if starting:
                # Instant-completion DMA: record and raise IRQ+done.
                self.transfers.append(
                    (channel, self.prd[channel], (value >> 3) & 1)
                )
                self.status[channel] |= BMISTA_IRQ
                self.status[channel] &= ~BMISTA_ACTIVE & 0xFF
        elif reg == 2:
            # Write-1-to-clear for IRQ and ERROR bits.
            self.status[channel] &= ~(value & (BMISTA_IRQ | BMISTA_ERROR)) & 0xFF
        elif reg == 4:
            if size == 32:
                self.prd[channel] = value & 0xFFFFFFFC
            else:
                self.prd[channel] = (self.prd[channel] & ~0xFF) | (value & 0xFC)
        elif reg in (5, 6, 7):
            shift = (reg - 4) * 8
            mask = ~(0xFF << shift) & 0xFFFFFFFF
            self.prd[channel] = (self.prd[channel] & mask) | ((value & 0xFF) << shift)
