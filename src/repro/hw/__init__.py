"""Simulated hardware: the devices the paper's specifications describe.

An :class:`~repro.hw.bus.IOBus` decodes port accesses to attached device
models.  Five devices are modelled, matching Table 2 of the paper:

* :class:`~repro.hw.busmouse.LogitechBusmouse` — Figure 3's device;
* :class:`~repro.hw.ide.IdeController` (+ :class:`~repro.hw.diskimage.DiskImage`)
  — the PIIX4-style IDE disk controller the driver experiments run on;
* :class:`~repro.hw.ne2000.Ne2000` — paged-register Ethernet controller;
* :class:`~repro.hw.pci.BusMaster82371FB` — PCI IDE bus master;
* :class:`~repro.hw.permedia2.Permedia2` — indexed-access graphics card.

`repro.hw.machine` assembles them into bootable machine configurations.
"""

from repro.hw.bus import BusFault, IOBus
from repro.hw.device import Device, StatefulSnapshotError
from repro.hw.diskimage import DiskImage
from repro.hw.busmouse import LogitechBusmouse
from repro.hw.ide import IdeController
from repro.hw.ne2000 import Ne2000
from repro.hw.pci import BusMaster82371FB
from repro.hw.permedia2 import Permedia2
from repro.hw.machine import Machine, standard_pc

__all__ = [
    "BusFault",
    "BusMaster82371FB",
    "Device",
    "DiskImage",
    "IOBus",
    "IdeController",
    "LogitechBusmouse",
    "Machine",
    "Ne2000",
    "Permedia2",
    "StatefulSnapshotError",
    "standard_pc",
]
