"""PIIX4-style IDE disk controller model.

Implements the register-level protocol a Linux 2.2-era IDE driver speaks:
the command block (data/error/nsector/sector/lcyl/hcyl/select/status) at
one base, the control block (altstatus/devctl) at another, BSY/DRDY/DRQ
status sequencing, software reset, IDENTIFY, READ/WRITE SECTORS (LBA and
CHS addressing) and READ VERIFY.

Fidelity notes relevant to the evaluation:

* after a command or reset the controller reports BSY for a couple of
  status reads, so driver polling loops are genuinely exercised (mutants
  that break the loop bound become the paper's "Infinite loop" class);
* WRITE SECTORS really commits to the attached :class:`DiskImage` with
  write tracking — mutants that redirect or corrupt writes produce the
  paper's "Damaged boot" / reformat-the-disk failures;
* selecting an absent drive parks status at 0x00, so probe loops time out
  the way real hardware does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.device import Device
from repro.hw.diskimage import DiskImage, bytes_to_words, words_to_bytes

# Status bits.
STAT_BSY = 0x80
STAT_DRDY = 0x40
STAT_DF = 0x20
STAT_DSC = 0x10
STAT_DRQ = 0x08
STAT_CORR = 0x04
STAT_IDX = 0x02
STAT_ERR = 0x01

# Error bits.
ERR_AMNF = 0x01
ERR_ABRT = 0x04
ERR_IDNF = 0x10

# Commands.
CMD_RECALIBRATE = 0x10
CMD_READ = 0x20
CMD_READ_NORETRY = 0x21
CMD_WRITE = 0x30
CMD_WRITE_NORETRY = 0x31
CMD_VERIFY = 0x40
CMD_DIAGNOSTICS = 0x90
CMD_INITPARAMS = 0x91
CMD_FLUSH = 0xE7
CMD_IDENTIFY = 0xEC
CMD_SETFEATURES = 0xEF

#: CHS geometry exposed by the model (kept tiny, like the disk).
HEADS = 4
SECTORS_PER_TRACK = 16

#: Number of status reads a fresh command reports BSY for.
BUSY_READS = 2

MODEL_STRING = "REPRO IDE DISK RR-4136"


@dataclass
class _DriveState:
    disk: DiskImage | None
    buffer: list[int] = field(default_factory=list)
    buffer_index: int = 0
    mode: str = "idle"  # idle | read | write
    pending_sectors: int = 0
    next_lba: int = 0
    write_accumulator: list[int] = field(default_factory=list)

    @property
    def present(self) -> bool:
        return self.disk is not None


class IdeController(Device):
    """One IDE channel with a master and an optional slave drive."""

    name = "ide"

    def __init__(
        self,
        master: DiskImage | None,
        slave: DiskImage | None = None,
        command_base: int = 0x1F0,
        control_base: int = 0x3F6,
    ):
        self.command_base = command_base
        self.control_base = control_base
        self.drives = [_DriveState(master), _DriveState(slave)]
        self.reset()

    # -- Device interface ----------------------------------------------------

    def port_ranges(self) -> list[tuple[int, int]]:
        return [(self.command_base, 8), (self.control_base, 1)]

    def reset(self) -> None:
        self.error = 0x01  # diagnostic pass code, as after power-on
        self.error_flag = False  # the status-register ERR bit
        self.features = 0
        self.nsector = 0x01
        self.sector = 0x01
        self.lcyl = 0
        self.hcyl = 0
        self.select = 0xA0
        self.devctl = 0
        self.busy_reads = BUSY_READS
        self.in_srst = False
        for drive in self.drives:
            drive.mode = "idle"
            drive.buffer = []
            drive.buffer_index = 0
            drive.pending_sectors = 0
            drive.write_accumulator = []

    # -- checkpointing --------------------------------------------------------

    #: Scalar controller registers captured by :meth:`snapshot`.
    _SNAPSHOT_FIELDS = (
        "error",
        "error_flag",
        "features",
        "nsector",
        "sector",
        "lcyl",
        "hcyl",
        "select",
        "devctl",
        "busy_reads",
        "in_srst",
    )

    def snapshot(self) -> dict:
        """Controller + per-drive transfer state (disks snapshot separately)."""
        return {
            "regs": {name: getattr(self, name) for name in self._SNAPSHOT_FIELDS},
            "drives": [
                {
                    "buffer": list(drive.buffer),
                    "buffer_index": drive.buffer_index,
                    "mode": drive.mode,
                    "pending_sectors": drive.pending_sectors,
                    "next_lba": drive.next_lba,
                    "write_accumulator": list(drive.write_accumulator),
                }
                for drive in self.drives
            ],
        }

    def restore(self, snapshot: dict) -> None:
        for name, value in snapshot["regs"].items():
            setattr(self, name, value)
        for drive, state in zip(self.drives, snapshot["drives"]):
            drive.buffer = list(state["buffer"])
            drive.buffer_index = state["buffer_index"]
            drive.mode = state["mode"]
            drive.pending_sectors = state["pending_sectors"]
            drive.next_lba = state["next_lba"]
            drive.write_accumulator = list(state["write_accumulator"])

    # -- helpers --------------------------------------------------------------

    @property
    def _drive(self) -> _DriveState:
        return self.drives[(self.select >> 4) & 1]

    def _lba(self) -> int:
        if self.select & 0x40:  # LBA mode
            return (
                ((self.select & 0x0F) << 24)
                | (self.hcyl << 16)
                | (self.lcyl << 8)
                | self.sector
            )
        cylinder = (self.hcyl << 8) | self.lcyl
        head = self.select & 0x0F
        if self.sector == 0:
            return -1  # CHS sectors start at 1
        return (
            (cylinder * HEADS + head) * SECTORS_PER_TRACK + self.sector - 1
        )

    def _status(self) -> int:
        drive = self.drives[(self.select >> 4) & 1]  # inline _drive (hot)
        if not drive.present:
            return 0x00
        if self.in_srst:
            return STAT_BSY
        if self.busy_reads > 0:
            self.busy_reads -= 1
            return STAT_BSY
        status = STAT_DRDY | STAT_DSC
        if drive.mode in ("read", "write") and (
            drive.buffer_index < len(drive.buffer) or drive.mode == "write"
        ):
            status |= STAT_DRQ
        if self.error_flag:
            status |= STAT_ERR
        return status

    # -- I/O decode ---------------------------------------------------------------

    def io_read(self, address: int, size: int) -> int:
        if address == self.control_base:
            return self._status()  # altstatus
        offset = address - self.command_base
        if offset == 7:  # status — the polling loops' port, checked first
            return self._status()
        if offset == 0:
            return self._data_read(size)
        if offset == 1:
            return self.error
        if offset == 2:
            return self.nsector
        if offset == 3:
            return self.sector
        if offset == 4:
            return self.lcyl
        if offset == 5:
            return self.hcyl
        if offset == 6:
            return self.select
        return 0xFF

    def port_read_handler(self, address: int):
        """Bound read callable for the hot ports (status and data).

        `repro.hw.bus.IOBus` dispatches reads of these ports straight to
        the bound method — identical values and side effects, minus the
        per-access offset decode that dominates polling loops.
        """
        if address == self.control_base:
            return lambda size: self._status()
        offset = address - self.command_base
        if offset == 7:
            return lambda size: self._status()
        if offset == 0:
            return self._data_read
        return None

    def bulk_read_words(self, address: int, size: int, count: int) -> list:
        """``count`` consecutive ``io_read``s, device side effects intact.

        The data port pops buffered sector words in slices (refilling
        exactly where the per-word path would); every other register is
        read in a plain loop.  `repro.hw.bus.IOBus.bulk_read_port` uses
        this to collapse ``insw`` sector transfers into one call.
        """
        offset = address - self.command_base
        if address == self.control_base or offset != 0:
            return [self.io_read(address, size) for _ in range(count)]
        drive = self._drive
        floating = (1 << size) - 1
        out: list[int] = []
        while len(out) < count:
            if drive.mode != "read" or drive.buffer_index >= len(drive.buffer):
                # _data_read returns a floating value without touching
                # state here, so every remaining read floats too.
                out.extend([floating] * (count - len(out)))
                break
            take = min(len(drive.buffer) - drive.buffer_index, count - len(out))
            chunk = drive.buffer[
                drive.buffer_index : drive.buffer_index + take
            ]
            out.extend(word & floating for word in chunk)
            drive.buffer_index += take
            if drive.buffer_index >= len(drive.buffer):
                self._refill_read_buffer(drive)
        return out

    def bulk_write_words(self, address: int, values: list, size: int) -> None:
        """Consecutive ``io_write``s (the data path is stateful per word)."""
        for value in values:
            self.io_write(address, value, size)

    def io_write(self, address: int, value: int, size: int) -> None:
        if address == self.control_base:
            self._devctl_write(value)
            return
        offset = address - self.command_base
        if offset == 0:
            self._data_write(value, size)
        elif offset == 1:
            self.features = value
        elif offset == 2:
            self.nsector = value
        elif offset == 3:
            self.sector = value
        elif offset == 4:
            self.lcyl = value
        elif offset == 5:
            self.hcyl = value
        elif offset == 6:
            self.select = value
        elif offset == 7:
            self._command(value)

    # -- control block ----------------------------------------------------------

    def _devctl_write(self, value: int) -> None:
        was_srst = bool(self.devctl & 0x04)
        self.devctl = value
        if value & 0x04:
            self.in_srst = True
        elif was_srst:
            # Falling edge of SRST: drives post their signature.
            self.in_srst = False
            self.error = 0x01  # diagnostic pass code
            self.error_flag = False
            self.nsector = 0x01
            self.sector = 0x01
            self.lcyl = 0
            self.hcyl = 0
            self.busy_reads = BUSY_READS
            for drive in self.drives:
                drive.mode = "idle"
                drive.buffer = []
                drive.buffer_index = 0
                drive.pending_sectors = 0
                drive.write_accumulator = []

    # -- data port -----------------------------------------------------------------

    def _data_read(self, size: int) -> int:
        drive = self._drive
        if drive.mode != "read" or drive.buffer_index >= len(drive.buffer):
            return (1 << size) - 1  # floating bus
        word = drive.buffer[drive.buffer_index]
        drive.buffer_index += 1
        if drive.buffer_index >= len(drive.buffer):
            self._refill_read_buffer(drive)
        return word & ((1 << size) - 1)

    def _refill_read_buffer(self, drive: _DriveState) -> None:
        if drive.pending_sectors <= 0 or drive.disk is None:
            drive.mode = "idle"
            return
        if not 0 <= drive.next_lba < drive.disk.sector_count:
            self.error = ERR_IDNF
            self.error_flag = True
            drive.mode = "idle"
            return
        drive.buffer = bytes_to_words(drive.disk.read_sector(drive.next_lba))
        drive.buffer_index = 0
        drive.next_lba += 1
        drive.pending_sectors -= 1

    def _data_write(self, value: int, size: int) -> None:
        drive = self._drive
        if drive.mode != "write":
            return  # junk write, ignored like real hardware
        drive.write_accumulator.append(value & 0xFFFF)
        if len(drive.write_accumulator) >= 256:
            self._commit_write_sector(drive)

    def _commit_write_sector(self, drive: _DriveState) -> None:
        if drive.disk is None:
            drive.mode = "idle"
            return
        if not 0 <= drive.next_lba < drive.disk.sector_count:
            self.error = ERR_IDNF
            self.error_flag = True
            drive.mode = "idle"
            return
        drive.disk.write_sector(
            drive.next_lba, words_to_bytes(drive.write_accumulator[:256])
        )
        drive.write_accumulator = []
        drive.next_lba += 1
        drive.pending_sectors -= 1
        if drive.pending_sectors <= 0:
            drive.mode = "idle"

    # -- commands -----------------------------------------------------------------

    def _command(self, command: int) -> None:
        drive = self._drive
        self.error = 0
        self.error_flag = False
        self.busy_reads = BUSY_READS
        if not drive.present:
            return

        if command in (CMD_READ, CMD_READ_NORETRY):
            count = self.nsector if self.nsector != 0 else 256
            lba = self._lba()
            if drive.disk is None or not 0 <= lba < drive.disk.sector_count:
                self.error = ERR_IDNF
                self.error_flag = True
                drive.mode = "idle"
                return
            drive.mode = "read"
            drive.next_lba = lba
            drive.pending_sectors = count
            drive.buffer = []
            drive.buffer_index = 0
            self._refill_read_buffer(drive)
            return

        if command in (CMD_WRITE, CMD_WRITE_NORETRY):
            count = self.nsector if self.nsector != 0 else 256
            lba = self._lba()
            if drive.disk is None or not 0 <= lba < drive.disk.sector_count:
                self.error = ERR_IDNF
                self.error_flag = True
                drive.mode = "idle"
                return
            drive.mode = "write"
            drive.next_lba = lba
            drive.pending_sectors = count
            drive.write_accumulator = []
            return

        if command == CMD_VERIFY:
            count = self.nsector if self.nsector != 0 else 256
            lba = self._lba()
            if drive.disk is None or not (
                0 <= lba and lba + count <= drive.disk.sector_count
            ):
                self.error = ERR_IDNF
                self.error_flag = True
            drive.mode = "idle"
            return

        if command == CMD_IDENTIFY:
            drive.mode = "read"
            drive.buffer = self._identify_words(drive)
            drive.buffer_index = 0
            drive.pending_sectors = 0
            return

        if command == CMD_DIAGNOSTICS:
            self.error = 0x01  # "no error detected"
            self.error_flag = False
            drive.mode = "idle"
            return

        if (command & 0xF0) == CMD_RECALIBRATE or command in (
            CMD_INITPARAMS,
            CMD_FLUSH,
            CMD_SETFEATURES,
        ):
            drive.mode = "idle"
            return

        self.error = ERR_ABRT
        self.error_flag = True
        drive.mode = "idle"

    def _identify_words(self, drive: _DriveState) -> list[int]:
        assert drive.disk is not None
        words = [0] * 256
        total = drive.disk.sector_count
        cylinders = max(1, total // (HEADS * SECTORS_PER_TRACK))
        words[0] = 0x0040  # fixed disk
        words[1] = cylinders
        words[3] = HEADS
        words[6] = SECTORS_PER_TRACK
        model = MODEL_STRING.ljust(40)[:40]
        for index in range(20):
            words[27 + index] = (ord(model[2 * index]) << 8) | ord(
                model[2 * index + 1]
            )
        words[47] = 0x8001  # multiple: 1 sector
        words[49] = 0x0200  # LBA supported
        words[60] = total & 0xFFFF
        words[61] = (total >> 16) & 0xFFFF
        return words
