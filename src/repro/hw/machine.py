"""Machine assembly: bus + devices, ready to boot.

``standard_pc`` builds the configuration the driver experiments run on:
one IDE channel at the legacy addresses with a bootable master disk, plus
the busmouse so multi-device examples work.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.hw.bus import IOBus
from repro.hw.busmouse import LogitechBusmouse
from repro.hw.device import Device, StatefulSnapshotError
from repro.hw.diskimage import DiskImage
from repro.hw.ide import IdeController
from repro.hw.legacy import LegacyBoard

IDE_COMMAND_BASE = 0x1F0
IDE_CONTROL_BASE = 0x3F6
BUSMOUSE_BASE = 0x23C


@dataclass(frozen=True)
class MachineSnapshot:
    """Machine-wide checkpoint: bus trace + every stateful device.

    Disk snapshots are copy-on-write (sector payloads shared, pointer
    tables copied), so taking one per driver call during a clean boot is
    cheap; ``Machine.restore`` reinstates the exact observable machine
    state, which the boot checkpointing subsystem relies on.
    """

    bus: tuple
    ide: dict | None
    busmouse: dict | None
    disk: tuple | None
    extras: tuple


@dataclass
class Machine:
    """One simulated computer."""

    bus: IOBus
    ide: IdeController | None = None
    busmouse: LogitechBusmouse | None = None
    disk: DiskImage | None = None
    pristine_disk: DiskImage | None = None
    extra_devices: list = field(default_factory=list)
    #: ``(device, attach-time state)`` for attached devices still using
    #: the base no-op ``Device.snapshot`` — the evidence `snapshot`
    #: needs to prove they really are stateless.
    _stateless_baselines: list = field(default_factory=list)

    def attach(self, device) -> None:
        self.bus.attach(device)
        self.extra_devices.append(device)
        if type(device).snapshot is Device.snapshot:
            # The device claims statelessness by not overriding
            # snapshot(); record its attach-time (post-reset) state so
            # snapshot() can catch the claim going stale.
            self._stateless_baselines.append(
                (device, copy.deepcopy(vars(device)))
            )

    def disk_diff(self) -> list[int]:
        """LBAs where the disk now differs from its boot-time snapshot."""
        if self.disk is None or self.pristine_disk is None:
            return []
        return self.disk.differs_from(self.pristine_disk)

    def snapshot(self) -> MachineSnapshot:
        """Capture all mutable machine state (``pristine_disk`` never mutates)."""
        for device, baseline in self._stateless_baselines:
            if vars(device) != baseline:
                raise StatefulSnapshotError(
                    f"{device!r} mutated its state but still uses the "
                    "base no-op Device.snapshot — a checkpoint of this "
                    "machine would silently leak that state across "
                    "restores; implement snapshot()/restore() on "
                    f"{type(device).__name__}"
                )
        return MachineSnapshot(
            bus=self.bus.snapshot(),
            ide=self.ide.snapshot() if self.ide is not None else None,
            busmouse=(
                self.busmouse.snapshot() if self.busmouse is not None else None
            ),
            disk=self.disk.snapshot() if self.disk is not None else None,
            extras=tuple(device.snapshot() for device in self.extra_devices),
        )

    def restore(self, snapshot: MachineSnapshot) -> None:
        self.bus.restore(snapshot.bus)
        if self.ide is not None:
            self.ide.restore(snapshot.ide)
        if self.busmouse is not None and snapshot.busmouse is not None:
            self.busmouse.restore(snapshot.busmouse)
        if self.disk is not None:
            self.disk.restore(snapshot.disk)
        for device, state in zip(self.extra_devices, snapshot.extras):
            device.restore(state)


def standard_pc(
    disk: DiskImage | None = None,
    with_busmouse: bool = True,
    trace_limit: int = 0,
) -> Machine:
    """The evaluation machine: IDE master disk (+ busmouse)."""
    if disk is None:
        disk = DiskImage.bootable()
    bus = IOBus(trace_limit=trace_limit)
    bus.attach(LegacyBoard())
    ide = IdeController(
        master=disk,
        command_base=IDE_COMMAND_BASE,
        control_base=IDE_CONTROL_BASE,
    )
    bus.attach(ide)
    machine = Machine(
        bus=bus,
        ide=ide,
        disk=disk,
        pristine_disk=disk.copy(),
    )
    if with_busmouse:
        mouse = LogitechBusmouse(BUSMOUSE_BASE)
        bus.attach(mouse)
        machine.busmouse = mouse
    return machine
