"""Machine assembly: bus + devices, ready to boot.

``standard_pc`` builds the configuration the driver experiments run on:
one IDE channel at the legacy addresses with a bootable master disk, plus
the busmouse so multi-device examples work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.bus import IOBus
from repro.hw.busmouse import LogitechBusmouse
from repro.hw.diskimage import DiskImage
from repro.hw.ide import IdeController
from repro.hw.legacy import LegacyBoard

IDE_COMMAND_BASE = 0x1F0
IDE_CONTROL_BASE = 0x3F6
BUSMOUSE_BASE = 0x23C


@dataclass
class Machine:
    """One simulated computer."""

    bus: IOBus
    ide: IdeController | None = None
    busmouse: LogitechBusmouse | None = None
    disk: DiskImage | None = None
    pristine_disk: DiskImage | None = None
    extra_devices: list = field(default_factory=list)

    def attach(self, device) -> None:
        self.bus.attach(device)
        self.extra_devices.append(device)

    def disk_diff(self) -> list[int]:
        """LBAs where the disk now differs from its boot-time snapshot."""
        if self.disk is None or self.pristine_disk is None:
            return []
        return self.disk.differs_from(self.pristine_disk)


def standard_pc(
    disk: DiskImage | None = None,
    with_busmouse: bool = True,
    trace_limit: int = 0,
) -> Machine:
    """The evaluation machine: IDE master disk (+ busmouse)."""
    if disk is None:
        disk = DiskImage.bootable()
    bus = IOBus(trace_limit=trace_limit)
    bus.attach(LegacyBoard())
    ide = IdeController(
        master=disk,
        command_base=IDE_COMMAND_BASE,
        control_base=IDE_CONTROL_BASE,
    )
    bus.attach(ide)
    machine = Machine(
        bus=bus,
        ide=ide,
        disk=disk,
        pristine_disk=disk.copy(),
    )
    if with_busmouse:
        mouse = LogitechBusmouse(BUSMOUSE_BASE)
        bus.attach(mouse)
        machine.busmouse = mouse
    return machine
