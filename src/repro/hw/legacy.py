"""The fragile legacy devices of a standard PC.

A stray *write* into the DMA controllers, the interrupt controllers, the
timer, the keyboard controller, the CMOS/RTC or the floppy controller
reconfigures hardware the whole machine depends on — the canonical way a
mutated port constant turned into the paper's "Crash. The kernel crashes
but no information is printed."  Reads are harmless (they float like any
ISA read).

The floppy range stops at 0x3f5 because 0x3f6 belongs to the IDE control
block, exactly as on real hardware.
"""

from __future__ import annotations

from repro.hw.device import Device
from repro.minic.errors import MachineFault

#: (first_port, length, subsystem) of write-fragile standard-PC hardware.
FRAGILE_RANGES: tuple[tuple[int, int, str], ...] = (
    (0x000, 0x20, "DMA controller 1"),
    (0x020, 0x02, "interrupt controller 1"),
    (0x040, 0x04, "programmable interval timer"),
    (0x060, 0x05, "keyboard controller"),
    (0x070, 0x02, "CMOS/RTC"),
    (0x0A0, 0x02, "interrupt controller 2"),
    (0x0C0, 0x20, "DMA controller 2"),
    (0x3F0, 0x06, "floppy controller"),
)


class LegacyBoard(Device):
    """Write-fragile chipset devices; reads float, writes wedge the box."""

    name = "legacy-board"

    def port_ranges(self) -> list[tuple[int, int]]:
        return [(start, length) for start, length, _ in FRAGILE_RANGES]

    def _subsystem(self, address: int) -> str:
        for start, length, subsystem in FRAGILE_RANGES:
            if start <= address < start + length:
                return subsystem
        return "chipset"

    def snapshot(self) -> None:
        """The board is stateless: reads float, the first write faults."""
        return None

    def restore(self, snapshot: None) -> None:
        pass

    def io_read(self, address: int, size: int) -> int:
        return (1 << size) - 1

    def io_write(self, address: int, value: int, size: int) -> None:
        raise MachineFault(
            f"machine wedged: stray write of {value:#x} to the "
            f"{self._subsystem(address)} at port {address:#x}"
        )
