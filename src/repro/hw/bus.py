"""The I/O port bus.

Devices claim port ranges; the bus decodes each access.  Like a real ISA
bus, an access to a port *no* device claims is inert: reads float to 0xFF
and writes vanish — drivers aimed at the wrong port time out rather than
fault.  The paper's "Crash" outcomes come from scribbling on ports other
hardware *does* claim; :class:`~repro.hw.legacy.LegacyBoard` models the
fragile standard-PC devices (DMA, PIC, PIT, keyboard controller, CMOS,
floppy) whose stray writes wedge the machine.

``strict=True`` restores faulting on any unclaimed access — useful in
tests and in the Python ``DeviceHandle`` runtime, where a stray access is
a bug to surface, not a behaviour to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic.errors import MachineFault


class BusFault(MachineFault):
    """Access to a port that no attached device claims."""


@dataclass(frozen=True)
class BusAccess:
    """One observed port access, for tests and debugging."""

    kind: str  # "read" | "write"
    address: int
    size: int
    value: int

    def __str__(self) -> str:
        arrow = "->" if self.kind == "read" else "<-"
        return f"{self.kind} {self.address:#06x}/{self.size} {arrow} {self.value:#x}"


@dataclass
class _Claim:
    start: int
    length: int
    device: "object"

    def covers(self, address: int) -> bool:
        return self.start <= address < self.start + self.length


@dataclass
class IOBus:
    """Port-decoding bus with an access trace.

    ``trace_limit`` bounds the retained access history (0 disables
    tracing entirely, the default for mutation campaigns where speed
    matters).
    """

    trace_limit: int = 0
    strict: bool = False
    _claims: list[_Claim] = field(default_factory=list)
    trace: list[BusAccess] = field(default_factory=list)
    #: Flat address -> device decode table.  Port ranges are tiny (a few
    #: dozen ports per machine), so precomputing the decode turns the per
    #: access claim scan — the hottest line of a mutation campaign — into
    #: one dict lookup.
    _decode: dict[int, object] = field(default_factory=dict)
    #: address -> bound read callable for ports whose device publishes a
    #: dedicated handler (``port_read_handler``): polling loops then skip
    #: the device's io_read offset decode entirely.
    _read_handlers: dict[int, object] = field(default_factory=dict)

    def attach(self, device) -> None:
        """Attach a device, claiming the ranges it reports."""
        handler_factory = getattr(device, "port_read_handler", None)
        for start, length in device.port_ranges():
            for claim in self._claims:
                overlap = not (
                    start + length <= claim.start
                    or claim.start + claim.length <= start
                )
                if overlap:
                    raise ValueError(
                        f"port range {start:#x}+{length} of {device!r} "
                        f"overlaps {claim.device!r}"
                    )
            self._claims.append(_Claim(start, length, device))
            for address in range(start, start + length):
                self._decode[address] = device
                if handler_factory is not None:
                    handler = handler_factory(address)
                    if handler is not None:
                        self._read_handlers[address] = handler

    def device_at(self, address: int):
        return self._decode.get(address)

    def snapshot(self) -> tuple[BusAccess, ...]:
        """Mutable bus state: the access trace (claims/decode are static)."""
        return tuple(self.trace)

    def restore(self, snapshot: tuple[BusAccess, ...]) -> None:
        self.trace[:] = snapshot

    def _record(self, kind: str, address: int, size: int, value: int) -> None:
        if self.trace_limit:
            if len(self.trace) >= self.trace_limit:
                del self.trace[0]
            self.trace.append(BusAccess(kind, address, size, value))

    def read_port(self, address: int, size: int) -> int:
        handler = self._read_handlers.get(address)
        if handler is not None:
            value = handler(size) & ((1 << size) - 1)
            if self.trace_limit:
                self._record("read", address, size, value)
            return value
        device = self._decode.get(address)
        if device is None:
            if self.strict:
                raise BusFault(f"bus fault: read of unclaimed port {address:#x}")
            value = (1 << size) - 1  # floating bus
            if self.trace_limit:
                self._record("read", address, size, value)
            return value
        value = device.io_read(address, size) & ((1 << size) - 1)
        if self.trace_limit:
            self._record("read", address, size, value)
        return value

    def bulk_read_port(self, address: int, size: int, count: int):
        """``count`` consecutive reads of one port, or None if unsupported.

        Semantically identical to ``count`` calls of :meth:`read_port`
        (device side effects included, in order); the per-access decode,
        tracing and masking overhead is paid once.  Returns ``None``
        whenever the exact per-word path must run instead — unclaimed
        port, tracing enabled, or a device without a bulk hook — and the
        caller falls back.
        """
        if self.trace_limit:
            return None
        device = self._decode.get(address)
        if device is None:
            if self.strict:
                return None  # the per-word path raises with exact state
            return [(1 << size) - 1] * count
        bulk = getattr(device, "bulk_read_words", None)
        if bulk is None:
            return None
        mask = (1 << size) - 1
        return [value & mask for value in bulk(address, size, count)]

    def bulk_write_port(self, address: int, values, size: int) -> bool:
        """Write consecutive values to one port; False if unsupported.

        Mirrors ``len(values)`` calls of :meth:`write_port` exactly; the
        caller falls back to the per-word path on ``False``.
        """
        if self.trace_limit:
            return False
        device = self._decode.get(address)
        if device is None:
            return not self.strict  # writes to a floating bus vanish
        bulk = getattr(device, "bulk_write_words", None)
        if bulk is None:
            return False
        mask = (1 << size) - 1
        bulk(address, [value & mask for value in values], size)
        return True

    def write_port(self, address: int, value: int, size: int) -> None:
        device = self._decode.get(address)
        if device is None:
            if self.strict:
                raise BusFault(f"bus fault: write of unclaimed port {address:#x}")
            if self.trace_limit:
                self._record("write", address, size, value & ((1 << size) - 1))
            return
        if self.trace_limit:
            self._record("write", address, size, value & ((1 << size) - 1))
        device.io_write(address, value & ((1 << size) - 1), size)
