"""Table 2 — mutation coverage of the Devil compiler (paper §4.1).

For each of the five bundled device specifications, inject every Devil
mutant and count how many the checker rejects.  The paper's numbers are
printed alongside for comparison.

Run with ``python -m repro.experiments.table2`` (``--fraction 0.25`` for a
sampled run, ``--seed N`` to resample).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.experiments.tables import pct, render_table
from repro.mutation.runner import DevilCampaignResult, run_devil_campaign
from repro.specs import PAPER_NAMES, spec_names

#: The paper's Table 2: name -> (lines, sites, mutants, detected %).
PAPER_TABLE2 = {
    "logitech_busmouse": (22, 87, 1678, 95.4),
    "pci_82371fb": (27, 82, 1465, 88.8),
    "ide_piix4": (130, 352, 10299, 91.7),
    "ne2000": (131, 434, 9410, 92.6),
    "permedia2": (128, 400, 13683, 90.3),
}


@dataclass
class Table2Result:
    rows: list[DevilCampaignResult] = field(default_factory=list)

    def row(self, spec_name: str) -> DevilCampaignResult:
        for entry in self.rows:
            if entry.spec_name == spec_name:
                return entry
        raise KeyError(spec_name)


def run(fraction: float = 1.0, seed: int = 4136, progress=None) -> Table2Result:
    result = Table2Result()
    for name in spec_names():
        result.rows.append(
            run_devil_campaign(name, fraction=fraction, seed=seed, progress=progress)
        )
    return result


def render(result: Table2Result) -> str:
    headers = [
        "Specification",
        "Lines",
        "Sites",
        "Mutants",
        "Tested",
        "Detected",
        "Paper",
    ]
    rows = []
    for entry in result.rows:
        paper = PAPER_TABLE2.get(entry.spec_name)
        rows.append(
            [
                PAPER_NAMES.get(entry.spec_name, entry.spec_name),
                str(entry.lines),
                str(entry.sites),
                str(entry.enumerated),
                str(entry.tested),
                pct(entry.detected_fraction),
                f"{paper[3]:.1f} %" if paper else "-",
            ]
        )
    return render_table(
        headers, rows, title="Table 2: mutation coverage of the Devil compiler"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fraction", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=4136)
    args = parser.parse_args(argv)
    print(render(run(fraction=args.fraction, seed=args.seed)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
