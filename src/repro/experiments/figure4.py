"""Figure 4 — the debug stub generated for the IDE ``Drive`` variable.

The paper's listing shows four artifacts: the ``Drive_t_`` struct type with
``filename``/``type``/``val`` fields, the ``MASTER``/``SLAVE`` constants,
the register stubs for ``ide_select``, and the cache-composing variable
stubs.  ``run()`` extracts the same fragments from our generated header;
``main()`` prints them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devil import compile_spec
from repro.devil.codegen import CodegenOptions, generate_header
from repro.specs import load_spec_source


@dataclass
class Figure4Result:
    header: str
    struct_definition: str
    constants: list[str]
    register_stubs: list[str]
    variable_stubs: list[str]


def run(mode: str = "debug") -> Figure4Result:
    spec = compile_spec(load_spec_source("ide_piix4"))
    header = generate_header(spec, CodegenOptions(mode=mode))
    lines = header.splitlines()

    struct_definition = next(
        (line for line in lines if line.startswith("struct Drive_t_")), ""
    )
    constants = [
        line
        for line in lines
        if line.startswith("static const Drive_t")
    ]
    register_stubs = _functions(lines, ("reg_set_select_reg", "reg_get_select_reg"))
    variable_stubs = _functions(lines, ("set_Drive", "get_Drive"))
    return Figure4Result(
        header=header,
        struct_definition=struct_definition,
        constants=constants,
        register_stubs=register_stubs,
        variable_stubs=variable_stubs,
    )


def _functions(lines: list[str], names: tuple[str, ...]) -> list[str]:
    chunks: list[str] = []
    for name in names:
        collecting = False
        body: list[str] = []
        for line in lines:
            if f" {name} " in line and line.startswith("static inline"):
                collecting = True
            if collecting:
                body.append(line)
                if line.startswith("}"):
                    break
        if body:
            chunks.append("\n".join(body))
    return chunks


def main(argv: list[str] | None = None) -> int:
    result = run()
    print("/* Figure 4 reproduction: debug stub for the IDE Drive variable */")
    print(result.struct_definition)
    for constant in result.constants:
        print(constant)
    print()
    for chunk in result.register_stubs + result.variable_stubs:
        print(chunk)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
