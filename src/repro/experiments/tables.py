"""Small text-table rendering shared by the experiment harnesses."""

from __future__ import annotations


def render_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Fixed-width text table, right-aligning numeric-looking cells."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def align(cell: str, index: int) -> str:
        if cell and (cell[0].isdigit() or cell[0] in "-+."):
            return cell.rjust(widths[index])
        return cell.ljust(widths[index])

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(align(cell, i) for i, cell in enumerate(row)))
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100.0 * value:.1f} %"
