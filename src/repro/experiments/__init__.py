"""Experiment harnesses: one module per table/figure of the paper.

* ``table2`` — mutation coverage of the Devil compiler over the five
  bundled specifications;
* ``table3`` — mutations on the original C IDE driver;
* ``table4`` — mutations on the CDevil IDE driver;
* ``figure4`` — the generated debug stub for the IDE ``Drive`` variable;
* ``report`` — the headline comparison (§4.2's "3× more errors ...").

Each module exposes ``run(...)`` returning structured results and a
``main()`` console entry point that prints the paper-shaped table next to
the paper's own numbers.
"""

from repro.experiments import ablation, figure4, report, table2, table3, table4

__all__ = ["ablation", "figure4", "report", "table2", "table3", "table4"]
