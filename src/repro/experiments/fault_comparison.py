"""Environment faults: the C driver vs the Devil re-engineered driver.

The paper's Table 4 compares the two drivers under *programming* errors
(source mutations).  This experiment asks the same question about
*environment* errors: boot each unmutated driver against hardware that
lies — register bit-flips, stuck reads, delayed or dropped status
transitions, byte-swapped DMA, torn sector writes (`repro.faults`) —
and compare how each interface style degrades, dimension by dimension.

Run with ``python -m repro.experiments.fault_comparison``.  Output is a
per-dimension markdown table (or the full machine-readable comparison
with ``--json``).  Deterministic: the same seed and fault budget yield
byte-identical output, serial, ``--workers N`` or ``--engine N``.
"""

from __future__ import annotations

import argparse
import json

from repro.faults.campaign import (
    INJECTIONS,
    FaultCampaignResult,
    run_fault_campaign,
)
from repro.faults.plan import DIMENSIONS_ENV  # noqa: F401 (documented flag)
from repro.faults.report import (
    comparison_dict,
    render_comparison_markdown,
    render_markdown,
)

DEFAULT_FAULT_SEED = 20010  # the paper's publication year


def run(
    seed: int = DEFAULT_FAULT_SEED,
    per_dimension: int = 8,
    mode: str = "debug",
    injection: str | None = None,
    workers: int = 1,
    engine: int = 0,
    progress=None,
) -> tuple[FaultCampaignResult, FaultCampaignResult]:
    """Both campaigns — ``(c, cdevil)`` — under identical parameters.

    Each driver's faults are sampled from *its own* clean-boot access
    profile (the drivers touch the device differently), with the same
    seed and per-dimension budget.  ``engine`` > 0 runs both campaigns
    on one warm `repro.engine.Engine` with that many workers; otherwise
    ``workers`` > 1 uses the per-campaign process pool.
    """
    if workers > 1 and engine:
        raise ValueError("workers and engine are mutually exclusive")
    kwargs = dict(
        seed=seed,
        per_dimension=per_dimension,
        mode=mode,
        injection=injection,
    )
    if engine:
        from repro.engine import Engine

        with Engine(workers=engine) as warm_engine:
            return (
                run_fault_campaign("c", engine=warm_engine, **kwargs),
                run_fault_campaign("cdevil", engine=warm_engine, **kwargs),
            )
    return (
        run_fault_campaign(
            "c", workers=workers, progress=progress, **kwargs
        ),
        run_fault_campaign(
            "cdevil", workers=workers, progress=progress, **kwargs
        ),
    )


def render(c: FaultCampaignResult, devil: FaultCampaignResult) -> str:
    return (
        render_comparison_markdown(c, devil)
        + "\n"
        + render_markdown(c)
        + "\n"
        + render_markdown(devil)
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_FAULT_SEED)
    parser.add_argument(
        "--per-dimension",
        type=int,
        default=8,
        help="faults sampled per dimension per driver",
    )
    parser.add_argument(
        "--mode", choices=("debug", "production"), default="debug"
    )
    parser.add_argument(
        "--injection",
        choices=INJECTIONS,
        default=None,
        help="checkpoint: resume each fault from the deepest recorded "
        "snapshot before its trigger; cold: pristine boots "
        "(default: REPRO_FAULT_INJECTION, else checkpoint)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="per-campaign process pool (result identical to serial)",
    )
    parser.add_argument(
        "--engine",
        type=int,
        default=0,
        metavar="WORKERS",
        help="run both campaigns on one warm engine with N workers "
        "(result identical to the serial run)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable comparison instead of markdown",
    )
    args = parser.parse_args(argv)
    if args.workers > 1 and args.engine:
        parser.error("--workers and --engine are mutually exclusive")
    c, devil = run(
        seed=args.seed,
        per_dimension=args.per_dimension,
        mode=args.mode,
        injection=args.injection,
        workers=args.workers,
        engine=args.engine,
    )
    if args.json:
        print(json.dumps(comparison_dict(c, devil), sort_keys=True, indent=2))
    else:
        print(render(c, devil))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
