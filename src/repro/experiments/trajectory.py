"""Reading and appending ``BENCH_*.json`` performance trajectories.

A trajectory file is a flat JSON object committed at the repository
root: the *latest* run's fields at the top level (benchmarks stay
self-describing and diff-friendly) plus a ``trajectory`` list with one
point per committed run, oldest first.  Tooling that tracks performance
across PRs reads the list, not the flat fields — earlier schemas wrote
only the flat fields, which such readers see as an empty trajectory, so
:func:`load_trajectory` also reconstructs a single point from a legacy
flat file instead of returning nothing.

A point is a small dict of the run's identifying fields
(:data:`POINT_KEYS` — workload parameters, throughput numbers and the
headline ratios) plus whatever labels the writer adds (``pr``,
``label``).  :func:`append_point` is the writer used by
``benchmarks/bench_campaign_throughput.py``.
"""

from __future__ import annotations

import json
import os

#: Flat-report fields copied into a trajectory point when present.
POINT_KEYS = (
    "driver",
    "fraction",
    "seed",
    "tested",
    #: Shard-process count of the run's sharded configuration (1 for a
    #: purely single-host point) — distinguishes single-host and
    #: sharded trajectory points.
    "shard_count",
    "legacy_mutants_per_sec",
    "fast_mutants_per_sec",
    "source_mutants_per_sec",
    "checkpoint_mutants_per_sec",
    "sharded_mutants_per_sec",
    #: Warm-engine configuration and throughput (PR 6+): worker count,
    #: warm-submission throughput, and its ratio to the serial
    #: checkpointed run of the same point.
    "engine_workers",
    "engine_mutants_per_sec",
    "speedup_engine_vs_checkpoint_serial",
    #: Supervision overhead (PR 8+): warm-submission throughput with
    #: the worker supervisor disarmed, and the armed/disarmed runtime
    #: ratio — the measured price of fault tolerance on a clean run.
    "engine_unsupervised_mutants_per_sec",
    "supervision_overhead",
    "checkpoint_resumed",
    "checkpoint_resumed_subcall",
    "checkpoint_cold",
    "checkpoint_resumed_fraction",
    "checkpoint_prefix_steps_skipped",
    "speedup_serial",
    "speedup_source_vs_closure",
    "speedup_checkpoint_vs_source",
    "speedup_vs_seed",
    #: Set when ``speedup_vs_seed`` was derived from the committed
    #: trajectory's anchor (:func:`seed_anchor_throughput`) rather than
    #: timing the seed revision directly (``--seed-rev``).
    "speedup_vs_seed_derived",
    #: Generated-scenario corpus configuration (PR 10+,
    #: ``--corpus N``): corpus size and mutant population, generation
    #: and campaign wall times, serial and warm-engine throughput over
    #: the whole corpus, and the corpus's own identity bit (serial ==
    #: pool == engine for every member).
    "corpus_scenarios",
    "corpus_mutants",
    "corpus_generate_seconds",
    "corpus_seconds",
    "corpus_mutants_per_sec",
    "corpus_engine_workers",
    "corpus_engine_seconds",
    "corpus_engine_mutants_per_sec",
    "speedup_corpus_engine_vs_serial",
    "corpus_outcomes_identical",
    "outcomes_identical",
)

#: Keys every committed trajectory point must carry, so points stay
#: comparable across the whole trajectory: the workload identity
#: (``driver``/``fraction``/``seed``), the cross-PR headline ratio
#: (``speedup_vs_seed``), and the correctness bit
#: (``outcomes_identical``) without which a throughput number proves
#: nothing.
REQUIRED_POINT_KEYS = (
    "driver",
    "fraction",
    "seed",
    "speedup_vs_seed",
    "outcomes_identical",
)


class TrajectoryError(ValueError):
    """A trajectory point is missing required comparability fields."""


def validate_point(point: dict) -> dict:
    """``point``, after checking :data:`REQUIRED_POINT_KEYS` are set."""
    missing = [
        key for key in REQUIRED_POINT_KEYS if point.get(key) is None
    ]
    if missing:
        raise TrajectoryError(
            f"trajectory point missing required fields {missing}: "
            "every committed point must stay comparable across PRs "
            "(workload identity, speedup_vs_seed, outcomes_identical)"
        )
    return point


def seed_anchor_throughput(path: str) -> float | None:
    """The seed revision's serial throughput, from committed history.

    The growth seed itself is not benchmarkable (it has no files), so
    ``speedup_vs_seed`` for a new run is derived from the committed
    trajectory instead: the newest point carrying both a serial
    throughput and its ``speedup_vs_seed`` fixes the anchor
    ``anchor = fast_mutants_per_sec / speedup_vs_seed`` — the
    throughput the seed revision would score on this machine.  Returns
    ``None`` when no committed point can anchor.
    """
    for point in reversed(load_trajectory(path)):
        fast = point.get("fast_mutants_per_sec")
        speedup = point.get("speedup_vs_seed")
        if fast and speedup:
            return fast / speedup
    return None


def point_from_report(report: dict, **labels) -> dict:
    """A trajectory point: the report's :data:`POINT_KEYS` plus labels."""
    point = dict(labels)
    for key in POINT_KEYS:
        if report.get(key) is not None:
            point[key] = report[key]
    return point


def load_report(path: str) -> dict | None:
    """The trajectory file's full JSON object, or ``None`` if unreadable."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def load_trajectory(path: str) -> list[dict]:
    """All committed trajectory points, oldest first.

    Legacy files (flat report, no ``trajectory`` list) yield their one
    point instead of reading back empty.
    """
    data = load_report(path)
    if data is None:
        return []
    trajectory = data.get("trajectory")
    if isinstance(trajectory, list):
        return [point for point in trajectory if isinstance(point, dict)]
    # Legacy flat schema: the whole file is its own single point.
    point = point_from_report(data)
    return [point] if point else []


def append_point(path: str, report: dict, **labels) -> dict:
    """Extend ``report`` with the file's trajectory plus this run's point.

    Returns the report dict (mutated in place): the run's fields stay at
    the top level and ``report["trajectory"]`` holds every prior point —
    including the one reconstructed from a legacy flat file — followed by
    this run's.  The caller writes the result back to ``path``.
    """
    trajectory = load_trajectory(path)
    trajectory.append(validate_point(point_from_report(report, **labels)))
    report["trajectory"] = trajectory
    return report
