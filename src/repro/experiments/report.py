"""The §4.2 headline comparison.

Runs (or accepts) Tables 3 and 4 and derives the paper's summary claims:

* "72 % of the errors in the Devil driver are detected either at compile
  time or at run time ... nearly 3 times more errors than are detected in
  the original C driver";
* "only 12.3 % of the mutations are not detected [in Devil] while 34.7 %
  ... in the C code.  Thus the worst situation appears 3 times more often
  in a traditional driver".

Run with ``python -m repro.experiments.report`` (add ``--fraction`` to
sample; the full populations take several minutes).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments import table3, table4
from repro.experiments.tables import pct, render_table
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import CampaignResult

PAPER_C_DETECTED = 0.267
PAPER_DEVIL_DETECTED = 0.72
PAPER_C_SILENT = 0.347
PAPER_DEVIL_SILENT = 0.123


@dataclass
class HeadlineReport:
    c_result: CampaignResult
    cdevil_result: CampaignResult

    @property
    def c_detected(self) -> float:
        return self.c_result.detected_fraction()

    @property
    def cdevil_detected(self) -> float:
        return self.cdevil_result.detected_fraction()

    @property
    def detection_ratio(self) -> float:
        if self.c_detected == 0:
            return float("inf")
        return self.cdevil_detected / self.c_detected

    @property
    def c_silent(self) -> float:
        return self.c_result.fraction(BootOutcome.BOOT)

    @property
    def cdevil_silent(self) -> float:
        return self.cdevil_result.fraction(BootOutcome.BOOT)

    @property
    def silent_ratio(self) -> float:
        if self.cdevil_silent == 0:
            return float("inf")
        return self.c_silent / self.cdevil_silent


def run(fraction: float = 1.0, seed: int = 4136) -> HeadlineReport:
    return HeadlineReport(
        c_result=table3.run(fraction=fraction, seed=seed),
        cdevil_result=table4.run(fraction=fraction, seed=seed),
    )


def render(report: HeadlineReport) -> str:
    headers = ["Claim", "Measured", "Paper"]
    rows = [
        ["C driver errors detected", pct(report.c_detected), "26.7 %"],
        ["Devil driver errors detected", pct(report.cdevil_detected), "72 %"],
        [
            "Detection ratio (Devil / C)",
            f"{report.detection_ratio:.1f}x",
            "~3x",
        ],
        ["C driver silent mutants", pct(report.c_silent), "34.7 %"],
        ["Devil driver silent mutants", pct(report.cdevil_silent), "12.3 %"],
        [
            "Silent ratio (C / Devil)",
            f"{report.silent_ratio:.1f}x",
            "~3x",
        ],
        [
            "Crashes (C -> Devil)",
            f"{pct(report.c_result.fraction(BootOutcome.CRASH))} -> "
            f"{pct(report.cdevil_result.fraction(BootOutcome.CRASH))}",
            "2.9 % -> 0 %",
        ],
    ]
    return render_table(headers, rows, title="Headline comparison (paper section 4.2)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fraction", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=4136)
    args = parser.parse_args(argv)
    report = run(fraction=args.fraction, seed=args.seed)
    print(table3.render(report.c_result))
    print()
    print(table4.render(report.cdevil_result))
    print()
    print(render(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
