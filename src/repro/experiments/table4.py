"""Table 4 — mutations on the CDevil code of the IDE driver (paper §4.2).

Mutations target the stub call sites of the Devil re-engineered driver;
stubs are generated in debug mode from the PIIX4 specification, so mutants
face both the C type checker (distinct struct per enum type) and the
generated run-time assertions.

Run with ``python -m repro.experiments.table4``.
"""

from __future__ import annotations

import argparse

from repro.experiments.driver_tables import render_campaign
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import CampaignResult, run_driver_campaign

#: The paper's Table 4 percentages.
PAPER_TABLE4 = {
    BootOutcome.COMPILE_CHECK: 58.0,
    BootOutcome.RUN_TIME_CHECK: 14.1,
    BootOutcome.CRASH: 0.0,
    BootOutcome.INFINITE_LOOP: 0.7,
    BootOutcome.HALT: 4.9,
    BootOutcome.DAMAGED_BOOT: 0.5,
    BootOutcome.BOOT: 12.3,
    BootOutcome.DEAD_CODE: 9.4,
}


def run(
    fraction: float = 1.0,
    seed: int = 4136,
    mode: str = "debug",
    progress=None,
    shards: int = 1,
    engine: int = 0,
) -> CampaignResult:
    """The Table 4 campaign; ``shards`` > 1 runs it as a sharded campaign
    over local processes (`repro.distributed`), merged to the identical
    ``CampaignResult``; ``engine`` > 0 runs it on a warm
    `repro.engine.Engine` with that many work-stealing workers (also
    identical).  ``progress`` is per-mutant and forwarded on the serial
    and engine paths (shards report per shard file, not per mutant)."""
    if shards > 1 and engine:
        raise ValueError("shards and engine are mutually exclusive")
    if engine:
        from repro.engine import run_engine_campaign

        return run_engine_campaign(
            "cdevil", mode=mode, fraction=fraction, seed=seed,
            workers=engine, progress=progress,
        )
    if shards > 1:
        from repro.distributed import sharded_campaign

        return sharded_campaign(
            "cdevil", mode=mode, fraction=fraction, seed=seed,
            shard_count=shards,
        )
    return run_driver_campaign(
        "cdevil", mode=mode, fraction=fraction, seed=seed, progress=progress
    )


def render(result: CampaignResult) -> str:
    return render_campaign(
        result, "Table 4: mutations on CDevil code (Devil IDE driver)", PAPER_TABLE4
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    # Campaign flags default to None so --from-shards can refuse them:
    # the shard files fix the campaign parameters, and silently printing
    # a table for different flags would misattribute the result.
    parser.add_argument("--fraction", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--mode", choices=("debug", "production"), default=None
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run the campaign as N local shard processes (plan "
        "recorded once; merged result identical to --shards 1)",
    )
    parser.add_argument(
        "--engine",
        type=int,
        default=None,
        metavar="WORKERS",
        help="run the campaign on a warm engine with N workers "
        "(work-stealing; result identical to the serial run)",
    )
    parser.add_argument(
        "--from-shards",
        nargs="+",
        default=None,
        metavar="SHARD_FILE",
        help="skip running: merge these shard-result files "
        "(written by `python -m repro.distributed run-shard`)",
    )
    args = parser.parse_args(argv)
    if args.shards and args.engine:
        parser.error("--shards and --engine are mutually exclusive")
    if args.from_shards:
        if (args.fraction, args.seed, args.mode, args.shards, args.engine) != (
            None, None, None, None, None,
        ):
            parser.error(
                "--from-shards merges pre-computed results; "
                "--fraction/--seed/--mode/--shards/--engine belong to "
                "the run that produced them"
            )
        from repro.distributed import merge_shard_files

        result = merge_shard_files(args.from_shards)
        if result.driver != "cdevil":
            parser.error(
                f"shard files hold a {result.driver!r} campaign, "
                "not Table 4's CDevil driver"
            )
    else:
        result = run(
            fraction=1.0 if args.fraction is None else args.fraction,
            seed=4136 if args.seed is None else args.seed,
            mode=args.mode or "debug",
            shards=args.shards or 1,
            engine=args.engine or 0,
        )
    print(render(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
