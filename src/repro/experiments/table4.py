"""Table 4 — mutations on the CDevil code of the IDE driver (paper §4.2).

Mutations target the stub call sites of the Devil re-engineered driver;
stubs are generated in debug mode from the PIIX4 specification, so mutants
face both the C type checker (distinct struct per enum type) and the
generated run-time assertions.

Run with ``python -m repro.experiments.table4``.
"""

from __future__ import annotations

import argparse

from repro.experiments.driver_tables import render_campaign
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import CampaignResult, run_driver_campaign

#: The paper's Table 4 percentages.
PAPER_TABLE4 = {
    BootOutcome.COMPILE_CHECK: 58.0,
    BootOutcome.RUN_TIME_CHECK: 14.1,
    BootOutcome.CRASH: 0.0,
    BootOutcome.INFINITE_LOOP: 0.7,
    BootOutcome.HALT: 4.9,
    BootOutcome.DAMAGED_BOOT: 0.5,
    BootOutcome.BOOT: 12.3,
    BootOutcome.DEAD_CODE: 9.4,
}


def run(
    fraction: float = 1.0,
    seed: int = 4136,
    mode: str = "debug",
    progress=None,
) -> CampaignResult:
    return run_driver_campaign(
        "cdevil", mode=mode, fraction=fraction, seed=seed, progress=progress
    )


def render(result: CampaignResult) -> str:
    return render_campaign(
        result, "Table 4: mutations on CDevil code (Devil IDE driver)", PAPER_TABLE4
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fraction", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=4136)
    parser.add_argument("--mode", choices=("debug", "production"), default="debug")
    args = parser.parse_args(argv)
    print(render(run(fraction=args.fraction, seed=args.seed, mode=args.mode)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
