"""Shared machinery for Tables 3 and 4 (driver mutation campaigns)."""

from __future__ import annotations

from repro.experiments.tables import pct, render_table
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import CampaignResult

#: Row order of the paper's Tables 3/4.
ROW_ORDER = [
    BootOutcome.COMPILE_CHECK,
    BootOutcome.RUN_TIME_CHECK,
    BootOutcome.CRASH,
    BootOutcome.INFINITE_LOOP,
    BootOutcome.HALT,
    BootOutcome.DAMAGED_BOOT,
    BootOutcome.BOOT,
    BootOutcome.DEAD_CODE,
]

ROW_LABELS = {
    BootOutcome.COMPILE_CHECK: "Compile-time check",
    BootOutcome.RUN_TIME_CHECK: "Run-time check",
    BootOutcome.CRASH: "Crash",
    BootOutcome.INFINITE_LOOP: "Infinite loop",
    BootOutcome.HALT: "Halt",
    BootOutcome.DAMAGED_BOOT: "Damaged boot",
    BootOutcome.BOOT: "Boot",
    BootOutcome.DEAD_CODE: "Dead code",
}


def render_campaign(
    result: CampaignResult,
    title: str,
    paper_percentages: dict[BootOutcome, float],
) -> str:
    headers = ["Outcome", "Sites", "Mutants", "Fraction", "Paper"]
    rows = []
    for outcome in ROW_ORDER:
        count = result.count(outcome)
        paper = paper_percentages.get(outcome)
        if count == 0 and paper is None:
            continue
        rows.append(
            [
                ROW_LABELS[outcome],
                str(result.sites(outcome)),
                str(count),
                pct(result.fraction(outcome)),
                f"{paper:.1f} %" if paper is not None else "-",
            ]
        )
    rows.append(
        [
            "Total",
            str(len({r.mutant.site.key for r in result.results})),
            str(result.tested),
            "N/A",
            "N/A",
        ]
    )
    table = render_table(headers, rows, title=title)
    detected = result.detected_fraction()
    return (
        f"{table}\n"
        f"Detected at compile or run time: {pct(detected)} "
        f"(enumerated {result.enumerated}, tested {result.tested})"
    )
