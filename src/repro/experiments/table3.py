"""Table 3 — mutations on the C code of the IDE driver (paper §4.2).

Every mutant of the tagged hardware-operating regions of the original C
driver is compiled; survivors are booted on the simulated PIIX4 machine
and classified into the paper's outcome classes.

Run with ``python -m repro.experiments.table3`` (``--fraction 0.25`` for
the paper's sampled methodology).
"""

from __future__ import annotations

import argparse

from repro.experiments.driver_tables import render_campaign
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import CampaignResult, run_driver_campaign

#: The paper's Table 3 percentages.
PAPER_TABLE3 = {
    BootOutcome.COMPILE_CHECK: 26.7,
    BootOutcome.CRASH: 2.9,
    BootOutcome.INFINITE_LOOP: 11.2,
    BootOutcome.HALT: 21.5,
    BootOutcome.DAMAGED_BOOT: 2.9,
    BootOutcome.BOOT: 34.7,
}


def run(fraction: float = 1.0, seed: int = 4136, progress=None) -> CampaignResult:
    return run_driver_campaign(
        "c", fraction=fraction, seed=seed, progress=progress
    )


def render(result: CampaignResult) -> str:
    return render_campaign(
        result, "Table 3: mutations on C code (original IDE driver)", PAPER_TABLE3
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fraction", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=4136)
    args = parser.parse_args(argv)
    print(render(run(fraction=args.fraction, seed=args.seed)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
