"""Table 3 — mutations on the C code of the IDE driver (paper §4.2).

Every mutant of the tagged hardware-operating regions of the original C
driver is compiled; survivors are booted on the simulated PIIX4 machine
and classified into the paper's outcome classes.

Run with ``python -m repro.experiments.table3`` (``--fraction 0.25`` for
the paper's sampled methodology).
"""

from __future__ import annotations

import argparse

from repro.experiments.driver_tables import render_campaign
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import CampaignResult, run_driver_campaign

#: The paper's Table 3 percentages.
PAPER_TABLE3 = {
    BootOutcome.COMPILE_CHECK: 26.7,
    BootOutcome.CRASH: 2.9,
    BootOutcome.INFINITE_LOOP: 11.2,
    BootOutcome.HALT: 21.5,
    BootOutcome.DAMAGED_BOOT: 2.9,
    BootOutcome.BOOT: 34.7,
}


def run(
    fraction: float = 1.0,
    seed: int = 4136,
    progress=None,
    shards: int = 1,
    engine: int = 0,
) -> CampaignResult:
    """The Table 3 campaign; ``shards``/``engine`` parallelise it.

    Sharded runs fan out over local processes through
    `repro.distributed` (one shard per process, checkpoint plan recorded
    once) and merge to the identical ``CampaignResult`` — the route to
    full-fraction reproductions that outgrow one host.  ``engine`` > 0
    instead runs the campaign on a warm `repro.engine.Engine` with that
    many workers (work-stealing over the mutant index space, result
    identical to serial).  ``progress`` is per-mutant and forwarded on
    the serial and engine paths; shard processes report completion per
    shard file, not per mutant, so the shard path does not forward it.
    """
    if shards > 1 and engine:
        raise ValueError("shards and engine are mutually exclusive")
    if engine:
        from repro.engine import run_engine_campaign

        return run_engine_campaign(
            "c", fraction=fraction, seed=seed, workers=engine,
            progress=progress,
        )
    if shards > 1:
        from repro.distributed import sharded_campaign

        return sharded_campaign(
            "c", fraction=fraction, seed=seed, shard_count=shards
        )
    return run_driver_campaign(
        "c", fraction=fraction, seed=seed, progress=progress
    )


def render(result: CampaignResult) -> str:
    return render_campaign(
        result, "Table 3: mutations on C code (original IDE driver)", PAPER_TABLE3
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    # Campaign flags default to None so --from-shards can refuse them:
    # the shard files fix the campaign parameters, and silently printing
    # a table for different flags would misattribute the result.
    parser.add_argument("--fraction", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run the campaign as N local shard processes (plan "
        "recorded once; merged result identical to --shards 1)",
    )
    parser.add_argument(
        "--engine",
        type=int,
        default=None,
        metavar="WORKERS",
        help="run the campaign on a warm engine with N workers "
        "(work-stealing; result identical to the serial run)",
    )
    parser.add_argument(
        "--from-shards",
        nargs="+",
        default=None,
        metavar="SHARD_FILE",
        help="skip running: merge these shard-result files "
        "(written by `python -m repro.distributed run-shard`)",
    )
    args = parser.parse_args(argv)
    if args.shards and args.engine:
        parser.error("--shards and --engine are mutually exclusive")
    if args.from_shards:
        if (args.fraction, args.seed, args.shards, args.engine) != (
            None, None, None, None,
        ):
            parser.error(
                "--from-shards merges pre-computed results; "
                "--fraction/--seed/--shards belong to the run that "
                "produced them"
            )
        from repro.distributed import merge_shard_files

        result = merge_shard_files(args.from_shards)
        if result.driver != "c":
            parser.error(
                f"shard files hold a {result.driver!r} campaign, "
                "not Table 3's C driver"
            )
    else:
        result = run(
            fraction=0.25 if args.fraction is None else args.fraction,
            seed=4136 if args.seed is None else args.seed,
            shards=args.shards or 1,
            engine=args.engine or 0,
        )
    print(render(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
