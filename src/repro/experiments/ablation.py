"""Ablation: what do the debug stubs actually buy?

The paper's claim rests on the *debug-mode* stub design (distinct struct
per enum type + run-time assertions).  This harness reruns the Table 4
campaign with **production** stubs — same specification, same CDevil glue,
same mutants — and compares.  If the mechanism is what matters, detection
must collapse toward the plain-C level; typed confusion that died in the
type checker or in ``dil_eq`` now boots silently or times out.

Run with ``python -m repro.experiments.ablation`` (``--fraction 0.5`` by
default; the campaign boots most mutants twice).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.tables import pct, render_table
from repro.kernel.outcomes import BootOutcome
from repro.mutation.runner import CampaignResult, run_driver_campaign


@dataclass
class AblationReport:
    debug: CampaignResult
    production: CampaignResult

    @property
    def detection_drop(self) -> float:
        return self.debug.detected_fraction() - self.production.detected_fraction()


def run(fraction: float = 0.5, seed: int = 4136) -> AblationReport:
    return AblationReport(
        debug=run_driver_campaign("cdevil", mode="debug", fraction=fraction, seed=seed),
        production=run_driver_campaign(
            "cdevil", mode="production", fraction=fraction, seed=seed
        ),
    )


def render(report: AblationReport) -> str:
    rows = []
    for outcome in (
        BootOutcome.COMPILE_CHECK,
        BootOutcome.RUN_TIME_CHECK,
        BootOutcome.CRASH,
        BootOutcome.INFINITE_LOOP,
        BootOutcome.HALT,
        BootOutcome.DAMAGED_BOOT,
        BootOutcome.BOOT,
        BootOutcome.DEAD_CODE,
    ):
        rows.append(
            [
                str(outcome).capitalize(),
                pct(report.debug.fraction(outcome)),
                pct(report.production.fraction(outcome)),
            ]
        )
    rows.append(
        [
            "Detected (compile + run time)",
            pct(report.debug.detected_fraction()),
            pct(report.production.detected_fraction()),
        ]
    )
    return render_table(
        ["Outcome", "Debug stubs", "Production stubs"],
        rows,
        title=(
            "Ablation: the same CDevil mutants over debug vs production "
            "stubs"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fraction", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=4136)
    args = parser.parse_args(argv)
    report = run(fraction=args.fraction, seed=args.seed)
    print(render(report))
    print(
        f"\nDetection drop without debug stubs: {pct(report.detection_drop)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
