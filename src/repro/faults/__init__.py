"""Environment-fault campaigns: boot unmutated drivers on lying hardware.

The package mirrors `repro.mutation` on the hardware side of the
interface: `repro.faults.injector` is the counted injection shim,
`repro.faults.plan` samples deterministic fault plans from a clean
boot's access profile, `repro.faults.campaign` runs and classifies the
perturbed boots (reusing `repro.kernel.checkpoint` as the injection
harness), and `repro.faults.report` renders dimension-structured
reports.  `repro.experiments.fault_comparison` is the C vs C/Devil entry
point.
"""

from repro.faults.injector import DIMENSIONS, Fault, FaultInjector
from repro.faults.plan import (
    AccessProfile,
    DIMENSIONS_ENV,
    build_fault_plan,
    dimensions_from_env,
    profile_from,
)
from repro.faults.campaign import (
    FaultCampaignResult,
    FaultContext,
    FaultResult,
    INJECTION_ENV,
    checkpoint_for_fault,
    injection_from_env,
    run_fault_campaign,
)
from repro.faults.report import (
    comparison_dict,
    render_comparison_markdown,
    render_markdown,
    report_dict,
    report_json,
)

__all__ = [
    "AccessProfile",
    "DIMENSIONS",
    "DIMENSIONS_ENV",
    "Fault",
    "FaultCampaignResult",
    "FaultContext",
    "FaultInjector",
    "FaultResult",
    "INJECTION_ENV",
    "build_fault_plan",
    "checkpoint_for_fault",
    "comparison_dict",
    "dimensions_from_env",
    "injection_from_env",
    "profile_from",
    "render_comparison_markdown",
    "render_markdown",
    "report_dict",
    "report_json",
    "run_fault_campaign",
]
