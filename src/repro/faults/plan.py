"""Deterministic seeded fault-plan generation from a clean-boot profile.

A fault plan is sampled *from the access profile of the recorded clean
boot*: the counting injector observes exactly which ports the driver
reads and writes, how often, and how many sectors the kernel writes
back, and every trigger index is drawn inside those observed totals.
Because the boot is deterministic up to a fault's first perturbed
access, every sampled fault is guaranteed to actually fire — there are
no wasted runs aimed at accesses that never happen.

Sampling is pure ``random.Random(seed)`` over sorted port lists, so the
same ``(profile, seed, per_dimension, dimensions)`` quadruple yields the
identical plan in any process — the property serial/parallel/engine
identity rests on.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from repro.hw.ide import STAT_DRDY, STAT_DRQ
from repro.faults.injector import DIMENSIONS, PERMANENT, Fault

#: Comma-separated dimension subset honoured by ``run_fault_campaign``
#: when no explicit ``dimensions`` argument is given.
DIMENSIONS_ENV = "REPRO_FAULT_DIMENSIONS"


def dimensions_from_env(default=DIMENSIONS) -> tuple[str, ...]:
    value = os.environ.get(DIMENSIONS_ENV, "")
    if not value:
        return tuple(default)
    chosen = tuple(part.strip() for part in value.split(",") if part.strip())
    unknown = [name for name in chosen if name not in DIMENSIONS]
    if unknown:
        raise ValueError(
            f"unknown fault dimensions {unknown!r}; "
            f"available: {', '.join(DIMENSIONS)}"
        )
    return chosen


@dataclass(frozen=True)
class AccessProfile:
    """Per-port access totals of one clean boot, plus port roles."""

    #: Sorted ``(port, total)`` pairs with ``total > 0``.
    reads: tuple[tuple[int, int], ...]
    writes: tuple[tuple[int, int], ...]
    disk_writes: int
    #: IDE status ports (command-block status + alternate status).
    status_ports: tuple[int, ...]
    #: IDE data ports (16-bit PIO stream).
    data_ports: tuple[int, ...]


def profile_from(injector, machine) -> AccessProfile:
    """The profile of the boot ``injector`` just observed on ``machine``."""
    status_ports: tuple[int, ...] = ()
    data_ports: tuple[int, ...] = ()
    if machine.ide is not None:
        status_ports = (
            machine.ide.command_base + 7,
            machine.ide.control_base,
        )
        data_ports = (machine.ide.command_base,)
    return AccessProfile(
        reads=tuple(sorted(injector.reads.items())),
        writes=tuple(sorted(injector.writes.items())),
        disk_writes=injector.disk_writes,
        status_ports=status_ports,
        data_ports=data_ports,
    )


def _read_ports(profile: AccessProfile) -> dict[int, int]:
    return dict(profile.reads)


def _write_ports(profile: AccessProfile) -> dict[int, int]:
    return dict(profile.writes)


def _sample(dimension: str, profile: AccessProfile, rng: random.Random):
    """One fault of ``dimension``, or ``None`` if nothing is eligible.

    Every branch draws from *sorted* candidate lists only, and the draw
    count per call depends only on the (deterministic) profile, so the
    rng stream — and therefore the whole plan — is reproducible.
    """
    reads = _read_ports(profile)
    writes = _write_ports(profile)
    if dimension == "read-bit-flip":
        ports = sorted(p for p in reads if p not in profile.data_ports)
        if not ports:
            return None
        port = rng.choice(ports)
        return Fault(
            dimension=dimension,
            channel="read",
            port=port,
            index=rng.randrange(reads[port]),
            bit=rng.randrange(8),
        )
    if dimension == "write-bit-flip":
        ports = sorted(p for p in writes if p not in profile.data_ports)
        if not ports:
            return None
        port = rng.choice(ports)
        return Fault(
            dimension=dimension,
            channel="write",
            port=port,
            index=rng.randrange(writes[port]),
            bit=rng.randrange(8),
        )
    if dimension == "stuck-read":
        ports = sorted(reads)
        if not ports:
            return None
        port = rng.choice(ports)
        return Fault(
            dimension=dimension,
            channel="read",
            port=port,
            index=rng.randrange(reads[port]),
            count=rng.choice((1, 4, PERMANENT)),
            value=rng.choice((0x00, 0xFF)),
        )
    if dimension == "status-delay":
        ports = sorted(p for p in profile.status_ports if p in reads)
        if not ports:
            return None
        port = rng.choice(ports)
        return Fault(
            dimension=dimension,
            channel="read",
            port=port,
            index=rng.randrange(reads[port]),
            count=rng.choice((1, 2, 8, 32)),
        )
    if dimension == "status-drop":
        ports = sorted(p for p in profile.status_ports if p in reads)
        if not ports:
            return None
        port = rng.choice(ports)
        return Fault(
            dimension=dimension,
            channel="read",
            port=port,
            index=rng.randrange(reads[port]),
            count=rng.choice((1, 2, 8)),
            value=rng.choice((STAT_DRQ, STAT_DRDY, STAT_DRQ | STAT_DRDY)),
        )
    if dimension == "dma-byte-swap":
        ports = sorted(p for p in profile.data_ports if p in reads)
        if not ports:
            return None
        port = rng.choice(ports)
        return Fault(
            dimension=dimension,
            channel="read",
            port=port,
            index=rng.randrange(reads[port]),
            count=rng.choice((1, 8, 256)),
        )
    if dimension == "torn-write":
        if profile.disk_writes == 0:
            return None
        return Fault(
            dimension=dimension,
            channel="disk",
            port=-1,
            index=rng.randrange(profile.disk_writes),
            value=rng.choice((64, 128, 256, 448)),
        )
    raise ValueError(f"unknown fault dimension {dimension!r}")


def build_fault_plan(
    profile: AccessProfile,
    seed: int,
    per_dimension: int = 8,
    dimensions=None,
) -> list[Fault]:
    """``per_dimension`` seeded faults for each requested dimension.

    Duplicate draws (same dimension/channel/port/index) are kept — they
    re-test the same perturbation point, which is harmless and keeps the
    plan length exactly ``per_dimension * len(dimensions)`` minus any
    dimension with no eligible target in the profile.
    """
    if dimensions is None:
        dimensions = DIMENSIONS
    unknown = [name for name in dimensions if name not in DIMENSIONS]
    if unknown:
        raise ValueError(
            f"unknown fault dimensions {unknown!r}; "
            f"available: {', '.join(DIMENSIONS)}"
        )
    rng = random.Random(seed)
    faults: list[Fault] = []
    for dimension in dimensions:
        for _ in range(per_dimension):
            fault = _sample(dimension, profile, rng)
            if fault is not None:
                faults.append(fault)
    return faults
