"""Dimension-structured reports for environment-fault campaigns.

`report_dict` is the canonical machine-readable shape — metadata, a
per-dimension outcome table, and per-fault findings, all built from
sorted inputs with no timestamps so the same campaign serialises to the
byte-identical JSON (`report_json` pins ``sort_keys``/``indent``; the CI
golden and the determinism tests rely on this).  `render_markdown`
formats the same data for humans, and `comparison_dict` lines up a C
campaign against its C/Devil counterpart, Table-4-style.
"""

from __future__ import annotations

import json

from repro.kernel.outcomes import BootOutcome
from repro.faults.campaign import FaultCampaignResult

#: Report rows, in the taxonomy's severity order.
OUTCOME_ORDER = (
    BootOutcome.BOOT,
    BootOutcome.DAMAGED_BOOT,
    BootOutcome.HALT,
    BootOutcome.INFINITE_LOOP,
    BootOutcome.CRASH,
    BootOutcome.RUN_TIME_CHECK,
)


def _fault_dict(result) -> dict:
    fault = result.fault
    return {
        "dimension": fault.dimension,
        "channel": fault.channel,
        "port": fault.port,
        "index": fault.index,
        "count": fault.count,
        "bit": fault.bit,
        "value": fault.value,
        "outcome": str(result.outcome),
        "detail": result.detail,
    }


def _outcome_table(results) -> dict:
    table = {str(outcome): 0 for outcome in OUTCOME_ORDER}
    for result in results:
        table[str(result.outcome)] = table.get(str(result.outcome), 0) + 1
    return table


def report_dict(campaign: FaultCampaignResult) -> dict:
    """The canonical dimension-structured report of one campaign."""
    dimensions = {}
    for dimension, results in campaign.by_dimension().items():
        dimensions[dimension] = {
            "tested": len(results),
            "outcomes": _outcome_table(results),
            "survived": campaign.count(BootOutcome.BOOT, dimension),
        }
    return {
        "campaign": {
            "driver": campaign.driver,
            "mode": campaign.mode,
            "seed": campaign.seed,
            "per_dimension": campaign.per_dimension,
            "injection": campaign.injection,
            "granularity": campaign.granularity,
            "clean_steps": campaign.clean_steps,
            "step_budget": campaign.step_budget,
            "tested": campaign.tested,
        },
        "dimensions": dimensions,
        "totals": _outcome_table(campaign.results),
        "findings": [_fault_dict(result) for result in campaign.results],
    }


def report_json(campaign: FaultCampaignResult) -> str:
    """Byte-stable JSON: same campaign, same bytes."""
    return json.dumps(report_dict(campaign), sort_keys=True, indent=2) + "\n"


def render_markdown(campaign: FaultCampaignResult) -> str:
    """A per-dimension outcome table in Table-4 style."""
    columns = [str(outcome) for outcome in OUTCOME_ORDER]
    lines = [
        f"# Environment-fault campaign: `{campaign.driver}` driver",
        "",
        f"- mode: `{campaign.mode}`, seed: {campaign.seed}, "
        f"faults/dimension: {campaign.per_dimension}",
        f"- injection: `{campaign.injection}` "
        f"(checkpoint granularity: `{campaign.granularity}`), "
        f"clean boot: {campaign.clean_steps} steps",
        f"- faults tested: {campaign.tested}",
        "",
        "| Dimension | Tested | " + " | ".join(columns) + " |",
        "|" + " --- |" * (len(columns) + 2),
    ]
    report = report_dict(campaign)
    for dimension, row in report["dimensions"].items():
        cells = " | ".join(str(row["outcomes"][c]) for c in columns)
        lines.append(f"| {dimension} | {row['tested']} | {cells} |")
    totals = " | ".join(str(report["totals"][c]) for c in columns)
    lines.append(f"| **total** | {campaign.tested} | {totals} |")
    lines.append("")
    return "\n".join(lines)


def comparison_dict(
    c: FaultCampaignResult, devil: FaultCampaignResult
) -> dict:
    """C vs C/Devil, per dimension: does the spec-generated interface

    harden the driver against a lying device the way Table 4 shows it
    hardens against programming errors?
    """
    rows = {}
    for dimension in c.dimensions:
        c_results = c.by_dimension().get(dimension, [])
        d_results = devil.by_dimension().get(dimension, [])
        rows[dimension] = {
            "c": _outcome_table(c_results),
            "devil": _outcome_table(d_results),
            "c_survived": c.count(BootOutcome.BOOT, dimension),
            "devil_survived": devil.count(BootOutcome.BOOT, dimension),
        }
    return {
        "campaigns": {
            "c": report_dict(c)["campaign"],
            "devil": report_dict(devil)["campaign"],
        },
        "dimensions": rows,
    }


def render_comparison_markdown(
    c: FaultCampaignResult, devil: FaultCampaignResult
) -> str:
    comparison = comparison_dict(c, devil)
    lines = [
        "# Environment faults: C vs C/Devil",
        "",
        f"- seed: {c.seed}, faults/dimension: {c.per_dimension}, "
        f"injection: `{c.injection}`",
        "",
        "| Dimension | C survived | C crashed | "
        "C/Devil survived | C/Devil run-time check |",
        "|" + " --- |" * 5,
    ]
    crash = str(BootOutcome.CRASH)
    rtc = str(BootOutcome.RUN_TIME_CHECK)
    for dimension, row in comparison["dimensions"].items():
        lines.append(
            f"| {dimension} | {row['c_survived']} | {row['c'][crash]} "
            f"| {row['devil_survived']} | {row['devil'][rtc]} |"
        )
    lines.append("")
    return "\n".join(lines)
