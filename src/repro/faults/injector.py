"""The hardware-side fault injector: a counted chokepoint on the bus.

:class:`FaultInjector` arms a machine by *instance-attribute shadowing*:
``arm`` installs counting wrappers over ``IOBus.read_port`` /
``write_port``, disables the two fast paths that would bypass them (the
per-port ``_read_handlers`` dict, which the source backend hoists into
emitted bodies, and ``bulk_read_port`` / ``bulk_write_port``, which the
``insw``/``outsw`` builtins probe before falling back to the per-word
path), and wraps ``DiskImage.write_sector`` for sector-level faults.
``disarm`` deletes the instance attributes, restoring plain class-method
dispatch — zero overhead and unchanged semantics when disarmed.

Armed with **no faults set**, the wrappers only count: every port access
still reaches the same device decode with the same value, trace and step
accounting, so a counted boot is bit-identical to an uncounted one
(asserted by tests).  That neutrality is what lets fault campaigns reuse
the checkpoint machinery: the injector is attached to the machine as an
extra device whose :meth:`snapshot`/:meth:`restore` carry the access
counters, so every `repro.kernel.checkpoint` snapshot records how many
accesses of each port preceded it, and restoring a checkpoint reinstates
the exact from-power-on counts — a fault triggered by absolute access
index then fires at the same instant whether the boot was resumed or
cold (`repro.faults.campaign` relies on this).

Fault triggers are *absolute*: the ``index``-th access (0-based, counted
from power-on) of the fault's channel — reads of a port, writes of a
port, or disk sector writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.bus import IOBus
from repro.hw.device import Device
from repro.hw.diskimage import DiskImage
from repro.hw.ide import STAT_BSY

#: The structured perturbation dimensions a campaign samples from.
DIMENSIONS = (
    "read-bit-flip",   # one bit of a register read flips
    "write-bit-flip",  # one bit of a register write flips en route
    "stuck-read",      # reads return a stuck/floating value
    "status-delay",    # status reads report busy (BSY) for a window
    "status-drop",     # status reads lose ready bits for a window
    "dma-byte-swap",   # 16-bit data-port reads arrive byte-swapped
    "torn-write",      # a sector write commits only its head
)

#: ``count`` standing in for "stuck until power-off".
PERMANENT = 1 << 30


@dataclass(frozen=True)
class Fault:
    """One deterministic hardware fault.

    ``channel`` selects the counted access stream the trigger indexes:
    ``"read"``/``"write"`` count accesses of ``port``; ``"disk"`` counts
    ``DiskImage.write_sector`` calls (``port`` is -1 there).  The fault
    perturbs accesses ``index .. index + count - 1``.  ``bit`` is the
    flipped bit for the bit-flip dimensions; ``value`` is the stuck
    value for ``stuck-read``, the dropped status mask for
    ``status-drop`` and the kept byte count for ``torn-write``.
    """

    dimension: str
    channel: str
    port: int
    index: int
    count: int = 1
    bit: int = 0
    value: int = 0

    def applies(self, access_index: int) -> bool:
        return self.index <= access_index < self.index + self.count

    def perturb_read(self, value: int, size: int) -> int:
        mask = (1 << size) - 1
        if self.dimension == "read-bit-flip":
            return (value ^ (1 << self.bit)) & mask
        if self.dimension == "stuck-read":
            return self.value & mask
        if self.dimension == "status-delay":
            return STAT_BSY & mask
        if self.dimension == "status-drop":
            return value & ~self.value & mask
        if self.dimension == "dma-byte-swap" and size == 16:
            return ((value & 0xFF) << 8) | ((value >> 8) & 0xFF)
        return value

    def perturb_write(self, value: int, size: int) -> int:
        if self.dimension == "write-bit-flip":
            return (value ^ (1 << self.bit)) & ((1 << size) - 1)
        return value

    def key(self) -> tuple:
        return (self.dimension, self.channel, self.port, self.index)


class FaultInjector(Device):
    """Counting injection shim, snapshotted like any stateful device.

    Attach to a machine (``machine.attach(injector)``) *before* taking
    its pristine snapshot or recording a checkpoint plan, then ``arm``
    it; the counters then ride every machine snapshot.  ``faults`` is
    harness configuration, not device state — set it per run and it
    survives ``Machine.restore`` untouched.
    """

    name = "fault-injector"

    def __init__(self):
        self.reads: dict[int, int] = {}
        self.writes: dict[int, int] = {}
        self.disk_writes = 0
        #: The armed fault set (usually one per run).
        self.faults: tuple[Fault, ...] = ()
        #: Perturbed accesses this run (reset by ``set_faults``).
        self.fired = 0
        self._armed_bus: IOBus | None = None
        self._armed_disk: DiskImage | None = None
        self._saved_handlers: dict | None = None

    # -- Device ------------------------------------------------------------

    def port_ranges(self) -> list[tuple[int, int]]:
        return []  # observes the whole bus; claims nothing

    def snapshot(self) -> dict:
        return {
            "reads": dict(self.reads),
            "writes": dict(self.writes),
            "disk_writes": self.disk_writes,
        }

    def restore(self, snapshot: dict) -> None:
        self.reads = dict(snapshot["reads"])
        self.writes = dict(snapshot["writes"])
        self.disk_writes = snapshot["disk_writes"]

    # -- harness -----------------------------------------------------------

    def set_faults(self, faults) -> None:
        self.faults = tuple(faults)
        self.fired = 0

    def clear_faults(self) -> None:
        self.faults = ()

    def counters(self) -> dict:
        """The end-of-run access totals (same shape as :meth:`snapshot`)."""
        return self.snapshot()

    @property
    def armed(self) -> bool:
        return self._armed_bus is not None

    def arm(self, machine) -> None:
        """Install the counted chokepoint on ``machine``'s bus and disk."""
        if self._armed_bus is not None:
            raise RuntimeError("injector is already armed")
        bus = machine.bus
        self._armed_bus = bus
        # Bound to the class so the wrappers below survive their own
        # shadowing of the instance attributes.
        inner_read = IOBus.read_port.__get__(bus)
        inner_write = IOBus.write_port.__get__(bus)

        def read_port(address: int, size: int) -> int:
            index = self.reads.get(address, 0)
            self.reads[address] = index + 1
            value = inner_read(address, size)
            for fault in self.faults:
                if (
                    fault.channel == "read"
                    and fault.port == address
                    and fault.applies(index)
                ):
                    value = fault.perturb_read(value, size)
                    self.fired += 1
            return value

        def write_port(address: int, value: int, size: int) -> None:
            index = self.writes.get(address, 0)
            self.writes[address] = index + 1
            for fault in self.faults:
                if (
                    fault.channel == "write"
                    and fault.port == address
                    and fault.applies(index)
                ):
                    value = fault.perturb_write(value, size)
                    self.fired += 1
            inner_write(address, value, size)

        bus.read_port = read_port
        bus.write_port = write_port
        # Kill every path around the chokepoint: the bulk hooks report
        # "unsupported" (their callers fall back to the exact per-word
        # loop, which keeps step accounting identical), and the hoisted
        # per-port handler dict goes empty so emitted code falls through
        # to ``bus.read_port`` — the wrapper above.
        bus.bulk_read_port = lambda address, size, count: None
        bus.bulk_write_port = lambda address, values, size: False
        self._saved_handlers = bus._read_handlers
        bus._read_handlers = {}

        disk = machine.disk
        if disk is not None:
            self._armed_disk = disk
            inner_write_sector = DiskImage.write_sector.__get__(disk)

            def write_sector(lba: int, data: bytes) -> None:
                index = self.disk_writes
                self.disk_writes = index + 1
                for fault in self.faults:
                    if fault.channel == "disk" and fault.applies(index):
                        old = (
                            disk.sectors[lba]
                            if 0 <= lba < len(disk.sectors)
                            else None
                        )
                        if old is not None and len(data) == len(old):
                            data = bytes(data[: fault.value]) + old[fault.value :]
                            self.fired += 1
                inner_write_sector(lba, data)

            disk.write_sector = write_sector

    def disarm(self) -> None:
        """Remove every shim; the machine behaves exactly as never armed."""
        bus = self._armed_bus
        if bus is None:
            return
        for attr in (
            "read_port",
            "write_port",
            "bulk_read_port",
            "bulk_write_port",
        ):
            bus.__dict__.pop(attr, None)
        bus._read_handlers = self._saved_handlers
        if self._armed_disk is not None:
            self._armed_disk.__dict__.pop("write_sector", None)
        self._armed_bus = None
        self._armed_disk = None
        self._saved_handlers = None
