"""Environment-fault campaigns: perturb the hardware, not the source.

``run_fault_campaign`` is `repro.mutation.runner.run_driver_campaign`'s
sibling for the interface's other side: instead of mutating driver
source, it boots the *unmutated* driver against hardware that lies —
register bit-flips, stuck/floating bus reads, delayed or dropped status
transitions, byte-swapped DMA, torn sector writes — and classifies each
run with the same outcome taxonomy (`repro.kernel.outcomes`).

The checkpoint machinery is reused as the injection harness.  One
instrumented clean boot (`repro.kernel.checkpoint.record_plan`) runs
with the counting :class:`~repro.faults.injector.FaultInjector` armed
and attached as a machine device, which yields three things at once:

* the **checkpoint plan** — every snapshot now embeds the injector's
  per-port access counters at that instant (the injector snapshots like
  any stateful device);
* the **access profile** the seeded fault plan is sampled from
  (`repro.faults.plan`);
* the **clean baseline** the step budget derives from.

Each fault run then restores the deepest checkpoint whose recorded
counters have not yet reached the fault's trigger index and runs the
boot remainder with the fault armed (``injection="cold"`` forces
pristine-snapshot boots instead).  Because triggers are absolute access
indices and restores reinstate the counters, a restored-then-perturbed
run classifies identically to a cold perturbed run — asserted by tests,
serial and under ``workers=N`` or a warm `repro.engine.Engine`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.kernel.checkpoint import (
    BootCheckpoint,
    CheckpointPlan,
    GRANULARITIES,
    granularity_from_env,
    record_plan,
    resume_boot,
)
from repro.kernel.kernel import DEFAULT_STEP_BUDGET, boot
from repro.kernel.outcomes import BootOutcome
from repro.hw.machine import standard_pc
from repro.minic.program import compile_program
from repro.mutation.runner import (
    ProgressFn,
    _merge_stats,
    _pool_context,
    _stats_delta,
    assemble_driver,
)
from repro.mutation.sampling import DEFAULT_SEED
from repro.faults.injector import Fault, FaultInjector
from repro.faults.plan import (
    AccessProfile,
    build_fault_plan,
    dimensions_from_env,
    profile_from,
)

#: ``"checkpoint"`` (resume from recorded snapshots — the default) or
#: ``"cold"`` (boot every fault from the pristine snapshot).  Outcomes
#: are identical either way; checkpointed runs just skip the shared
#: clean prefix.
INJECTION_ENV = "REPRO_FAULT_INJECTION"

INJECTIONS = ("checkpoint", "cold")


def injection_from_env(default: str = "checkpoint") -> str:
    value = os.environ.get(INJECTION_ENV, "") or default
    if value not in INJECTIONS:
        raise ValueError(
            f"unknown fault injection mode {value!r}; "
            f"available: {', '.join(INJECTIONS)}"
        )
    return value


@dataclass
class FaultResult:
    fault: Fault
    outcome: BootOutcome
    detail: str = ""


@dataclass
class FaultCampaignResult:
    """Aggregated results of one environment-fault campaign."""

    driver: str
    mode: str
    seed: int
    per_dimension: int
    injection: str
    granularity: str
    dimensions: tuple[str, ...]
    clean_steps: int = 0
    step_budget: int = 0
    results: list[FaultResult] = field(default_factory=list)
    #: Same counters as driver campaigns: resumed/cold boots, the
    #: sub-call resume subset, and clean-prefix steps skipped.
    checkpoint_stats: dict | None = None
    #: Engine-supervision quarantine records
    #: (`repro.engine.supervision.QuarantineRecord`); ``()`` for serial
    #: and worker-pool runs.
    quarantine: tuple = ()

    @property
    def tested(self) -> int:
        return len(self.results)

    def count(self, outcome: BootOutcome, dimension: str | None = None) -> int:
        return sum(
            1
            for r in self.results
            if r.outcome is outcome
            and (dimension is None or r.fault.dimension == dimension)
        )

    def by_dimension(self) -> dict[str, list[FaultResult]]:
        grouped: dict[str, list[FaultResult]] = {
            dimension: [] for dimension in self.dimensions
        }
        for result in self.results:
            grouped.setdefault(result.fault.dimension, []).append(result)
        return grouped

    def survived_fraction(self, dimension: str | None = None) -> float:
        tested = sum(
            1
            for r in self.results
            if dimension is None or r.fault.dimension == dimension
        )
        return self.count(BootOutcome.BOOT, dimension) / tested if tested else 0.0


def checkpoint_for_fault(
    plan: CheckpointPlan, fault: Fault, injector_slot: int = 0
) -> BootCheckpoint | None:
    """Deepest checkpoint taken before the fault's trigger access.

    Each checkpoint's machine snapshot carries the injector's counters
    at that instant (``extras[injector_slot]``); the deepest one whose
    count on the fault's channel is still ``<= fault.index`` precedes
    the first perturbed access, so the prefix up to it is bit-identical
    between the faulted run and the recorded clean boot.
    """
    best: BootCheckpoint | None = None
    for checkpoint in plan.checkpoints:  # counters are monotonic
        counters = checkpoint.machine.extras[injector_slot]
        if fault.channel == "read":
            seen = counters["reads"].get(fault.port, 0)
        elif fault.channel == "write":
            seen = counters["writes"].get(fault.port, 0)
        else:
            seen = counters["disk_writes"]
        if seen <= fault.index:
            best = checkpoint
        else:
            break
    return best


@dataclass
class FaultContext:
    """Everything one process needs to evaluate campaign faults.

    Mirrors `repro.mutation.runner._EvalContext`: built cheap, warmed
    lazily (and deterministically — every process that warms the same
    parameters records the identical plan and profile), then reused for
    every fault of the campaign.
    """

    driver: str
    mode: str
    backend: str | None
    injection: str
    granularity: str
    step_budget: int | None
    _program: object = None
    _machine: object = None
    _injector: FaultInjector | None = None
    _pristine: object = None
    _plan: CheckpointPlan | None = None
    _profile: AccessProfile | None = None
    _budget: int = 0

    @classmethod
    def build(
        cls,
        driver: str,
        mode: str = "debug",
        backend: str | None = None,
        injection: str = "checkpoint",
        granularity: str = "subcall",
        step_budget: int | None = None,
    ) -> "FaultContext":
        if injection not in INJECTIONS:
            raise ValueError(
                f"unknown fault injection mode {injection!r}; "
                f"available: {', '.join(INJECTIONS)}"
            )
        if granularity not in GRANULARITIES:
            raise ValueError(f"unknown granularity {granularity!r}")
        return cls(
            driver=driver,
            mode=mode,
            backend=backend,
            injection=injection,
            granularity=granularity,
            step_budget=step_budget,
        )

    def ensure(self) -> None:
        """Record the armed clean boot: plan + profile + budget."""
        if self._plan is not None:
            return
        files, registry, _ = assemble_driver(self.driver, self.mode)
        self._program = compile_program(files, registry)
        machine = standard_pc(with_busmouse=False)
        injector = FaultInjector()
        machine.attach(injector)  # extras[0]: counters ride every snapshot
        injector.arm(machine)
        self._machine = machine
        self._injector = injector
        self._pristine = machine.snapshot()
        plan = record_plan(
            self._program,
            machine,
            DEFAULT_STEP_BUDGET,
            backend=self.backend,
            granularity=self.granularity,
        )
        if plan.report.outcome is not BootOutcome.BOOT:
            raise RuntimeError(
                "fault campaigns require a clean baseline boot: "
                f"{plan.report}"
            )
        self._profile = profile_from(injector, machine)
        self._budget = self.step_budget or max(
            1_000_000, plan.report.steps * 6 + 200_000
        )
        self._plan = plan

    @property
    def profile(self) -> AccessProfile:
        self.ensure()
        return self._profile

    @property
    def clean_steps(self) -> int:
        self.ensure()
        return self._plan.report.steps

    @property
    def budget(self) -> int:
        self.ensure()
        return self._budget

    def stats_view(self) -> dict | None:
        return dict(self._plan.stats) if self._plan is not None else None

    def evaluate(self, fault: Fault) -> FaultResult:
        """One fault through a restored-or-cold boot, classified."""
        self.ensure()
        plan = self._plan
        machine = self._machine
        injector = self._injector
        checkpoint = None
        if self.injection == "checkpoint":
            checkpoint = checkpoint_for_fault(plan, fault)
        # Same backend policy as checkpointed mutant boots: hybrid
        # (bit-identical to every backend) unless the tree reference
        # backend was requested outright.
        backend = "hybrid" if self.backend != "tree" else "tree"
        injector.set_faults((fault,))
        try:
            if checkpoint is not None:
                plan.stats["resumed"] += 1
                if checkpoint.subcall:
                    plan.stats["resumed_subcall"] += 1
                plan.stats["steps_skipped"] += checkpoint.steps
                report = resume_boot(
                    self._program,
                    checkpoint,
                    machine,
                    self._budget,
                    backend=backend,
                )
            else:
                plan.stats["cold"] += 1
                machine.restore(self._pristine)
                report = boot(
                    self._program,
                    machine,
                    step_budget=self._budget,
                    backend=backend,
                )
        finally:
            fired = injector.fired
            injector.clear_faults()
        # Triggers are sampled inside the clean boot's access profile
        # and the prefix up to the trigger is fault-free, so the
        # trigger access always happens — a fault that never fired
        # means the counter/checkpoint bookkeeping broke.
        assert fired >= 1, f"fault never fired: {fault}"
        return FaultResult(
            fault=fault, outcome=report.outcome, detail=report.detail
        )


def run_fault_campaign(
    driver: str = "c",
    mode: str = "debug",
    seed: int = DEFAULT_SEED,
    per_dimension: int = 8,
    dimensions=None,
    injection: str | None = None,
    backend: str | None = None,
    checkpoint_granularity: str | None = None,
    step_budget: int | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
    engine=None,
) -> FaultCampaignResult:
    """Environment-fault campaign against a driver's hardware interface.

    Samples ``per_dimension`` seeded faults per dimension from the clean
    boot's access profile (`repro.faults.plan`) and classifies each
    perturbed boot with the standard outcome taxonomy.  Deterministic:
    the same ``(driver, mode, seed, per_dimension, dimensions)`` produce
    the identical result — serial, ``workers=N`` (process pool, merged
    by fault index) or ``engine=`` (a warm `repro.engine.Engine`;
    ``workers`` is then the engine's affair).

    ``injection`` selects ``"checkpoint"`` (resume each fault from the
    deepest recorded snapshot before its trigger — the default) or
    ``"cold"`` (pristine-snapshot boots); outcomes are identical, per
    the absolute-trigger argument in `repro.faults.injector`.  Defaults
    resolve from ``REPRO_FAULT_INJECTION``, ``REPRO_FAULT_DIMENSIONS``
    and ``REPRO_CHECKPOINT_GRANULARITY``.
    """
    if injection is None:
        injection = injection_from_env()
    if checkpoint_granularity is None:
        checkpoint_granularity = granularity_from_env()
    if dimensions is None:
        dimensions = dimensions_from_env()
    dimensions = tuple(dimensions)
    if engine is not None:
        from repro.engine.state import FaultRequest

        return engine.run_fault_campaign(
            FaultRequest(
                driver=driver,
                mode=mode,
                seed=seed,
                per_dimension=per_dimension,
                dimensions=dimensions,
                injection=injection,
                backend=backend,
                granularity=checkpoint_granularity,
                step_budget=step_budget,
            ),
            progress=progress,
        )
    context = FaultContext.build(
        driver,
        mode,
        backend=backend,
        injection=injection,
        granularity=checkpoint_granularity,
        step_budget=step_budget,
    )
    context.ensure()
    faults = build_fault_plan(
        context.profile, seed, per_dimension=per_dimension, dimensions=dimensions
    )
    campaign = FaultCampaignResult(
        driver=driver,
        mode=mode,
        seed=seed,
        per_dimension=per_dimension,
        injection=injection,
        granularity=checkpoint_granularity,
        dimensions=dimensions,
        clean_steps=context.clean_steps,
        step_budget=context.budget,
    )
    if workers > 1 and len(faults) > 1:
        campaign.results, campaign.checkpoint_stats = _evaluate_parallel(
            context, faults, workers, progress
        )
        return campaign
    for done, fault in enumerate(faults):
        if progress is not None:
            progress(done, len(faults))
        campaign.results.append(context.evaluate(fault))
    campaign.checkpoint_stats = context.stats_view()
    return campaign


# -- parallel evaluation -------------------------------------------------------

#: Per-process fault context, built once by the pool initialiser
#: (deterministic, so every worker warms the identical plan/profile).
_FAULT_WORKER_CONTEXT: FaultContext | None = None


def _fault_worker_init(
    driver: str,
    mode: str,
    backend: str | None,
    injection: str,
    granularity: str,
    step_budget: int | None,
) -> None:
    global _FAULT_WORKER_CONTEXT
    _FAULT_WORKER_CONTEXT = FaultContext.build(
        driver,
        mode,
        backend=backend,
        injection=injection,
        granularity=granularity,
        step_budget=step_budget,
    )


def _fault_worker_eval(
    item: tuple[int, Fault],
) -> tuple[int, FaultResult, dict | None]:
    index, fault = item
    context = _FAULT_WORKER_CONTEXT
    assert context is not None
    before = context.stats_view()
    result = context.evaluate(fault)
    return index, result, _stats_delta(before, context.stats_view())


def _evaluate_parallel(
    context: FaultContext,
    faults: list[Fault],
    workers: int,
    progress: ProgressFn | None,
) -> tuple[list[FaultResult], dict | None]:
    """Fan faults out over a process pool, merging by fault index.

    Each evaluation is independent and deterministic, so ``workers=N``
    equals ``workers=1`` result-for-result and the per-fault checkpoint
    counter deltas sum to the serial totals in any completion order.
    """
    pool_context = _pool_context()
    worker_count = min(workers, len(faults))
    results: list[FaultResult | None] = [None] * len(faults)
    stats: dict | None = None
    with pool_context.Pool(
        worker_count,
        initializer=_fault_worker_init,
        initargs=(
            context.driver,
            context.mode,
            context.backend,
            context.injection,
            context.granularity,
            context.step_budget,
        ),
    ) as pool:
        completed = 0
        for index, result, delta in pool.imap_unordered(
            _fault_worker_eval, list(enumerate(faults))
        ):
            results[index] = result
            stats = _merge_stats(stats, delta)
            if progress is not None:
                progress(completed, len(faults))
            completed += 1
    assert all(result is not None for result in results)
    return results, stats  # type: ignore[return-value]
