"""Local multi-process orchestration of a sharded campaign.

The shard protocol itself is host-agnostic — any machine that can run
``python -m repro.distributed run-shard`` with the same campaign
parameters produces a mergeable shard file.  This module is the
single-host driver of that protocol: it records the portable checkpoint
plan **once**, fans the shards out over independent OS processes (one
``run-shard`` CLI invocation each, the exact command a multi-host
deployment would ship to its workers), waits, and merges.

:func:`sharded_campaign` is the one-call version used by the Tables 3/4
entry points (``shards=``), the throughput benchmark (``--shards``) and
``examples/distributed_campaign.py``; :func:`resume_missing` re-runs
only the shards a crashed run did not complete.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

from repro.distributed.sharding import ShardSpec, plan_shards
from repro.distributed.shards import (
    ShardMergeError,
    merge_shard_files,
    missing_shard_indices,
    read_shard_header,
)
from repro.hw.machine import standard_pc
from repro.kernel.checkpoint import (
    checkpointing_enabled_by_env,
    granularity_from_env,
    record_plan,
    save_plan,
)
from repro.kernel.kernel import DEFAULT_STEP_BUDGET
from repro.kernel.outcomes import BootOutcome
from repro.minic.program import compile_program
from repro.mutation.runner import CampaignResult
from repro.drivers import assemble_c_program, assemble_cdevil_program

PLAN_FILE = "plan.ckpt"


def shard_file_name(shard_index: int, shard_count: int) -> str:
    return f"shard-{shard_index:04d}-of-{shard_count:04d}.shard"


def record_campaign_plan(
    path,
    driver: str = "c",
    mode: str = "debug",
    granularity: str | None = None,
    backend: str | None = None,
) -> dict:
    """Record the instrumented clean boot once and save it portably.

    This is the plan every shard loads (`run-shard --plan`), so a
    campaign pays the recording cost once per *campaign* instead of
    once per process.  Returns the saved plan's header.
    """
    if granularity is None:
        granularity = granularity_from_env()
    if driver == "c":
        files, registry = assemble_c_program()
    elif driver == "cdevil":
        files, registry = assemble_cdevil_program(mode=mode)
    else:
        raise ValueError(f"unknown driver {driver!r}")
    program = compile_program(files, registry)
    machine = standard_pc(with_busmouse=False)
    plan = record_plan(
        program,
        machine,
        DEFAULT_STEP_BUDGET,
        backend=backend,
        granularity=granularity,
    )
    if plan.report.outcome is not BootOutcome.BOOT:
        raise RuntimeError(
            f"checkpoint recording requires a clean baseline boot: "
            f"{plan.report}"
        )
    return save_plan(plan, path, files[0].text, files[0].name)


def _child_env() -> dict:
    """The subprocess environment: this interpreter's import path."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


def shard_command(
    spec: ShardSpec, out_path, plan_path=None, workers: int = 1
) -> list[str]:
    """The ``run-shard`` CLI invocation reproducing ``spec`` anywhere."""
    command = [
        sys.executable,
        "-m",
        "repro.distributed",
        "run-shard",
        "--driver", spec.driver,
        "--mode", spec.mode,
        "--fraction", repr(spec.fraction),
        "--seed", str(spec.seed),
        "--shard-index", str(spec.shard_index),
        "--shard-count", str(spec.shard_count),
        "--out", str(out_path),
    ]
    if spec.backend is not None:
        command += ["--backend", spec.backend]
    if not spec.compile_cache:
        command += ["--no-compile-cache"]
    if spec.boot_checkpoint is not None:
        # Explicit either way: a child process must not fall back to its
        # own REPRO_BOOT_CHECKPOINT when the campaign pinned the choice.
        command += [
            "--boot-checkpoint"
            if spec.boot_checkpoint
            else "--no-boot-checkpoint"
        ]
    if spec.checkpoint_granularity is not None:
        command += ["--granularity", spec.checkpoint_granularity]
    if spec.step_budget is not None:
        command += ["--step-budget", str(spec.step_budget)]
    if plan_path is not None:
        command += ["--plan", str(plan_path)]
    if workers != 1:
        command += ["--workers", str(workers)]
    return command


def run_shards_local(
    specs: list[ShardSpec],
    out_dir,
    plan_path=None,
    workers_per_shard: int = 1,
    echo=None,
) -> list[str]:
    """Run each spec as an independent OS process; returns shard paths.

    Processes run concurrently (the point of sharding); a non-zero exit
    of any shard raises with that shard's stderr.  ``echo`` (when given)
    receives each spawned command line — the example and CLI print them
    so the multi-host translation is obvious.
    """
    procs = []
    paths = []
    for spec in specs:
        out_path = os.path.join(
            out_dir, shard_file_name(spec.shard_index, spec.shard_count)
        )
        command = shard_command(
            spec, out_path, plan_path=plan_path, workers=workers_per_shard
        )
        if echo is not None:
            echo(command)
        procs.append(
            (
                spec,
                subprocess.Popen(
                    command,
                    env=_child_env(),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                ),
            )
        )
        paths.append(out_path)
    failures = []
    for spec, proc in procs:
        _, stderr = proc.communicate()
        if proc.returncode != 0:
            failures.append(
                f"shard {spec.shard_index} exited {proc.returncode}:\n{stderr}"
            )
    if failures:
        raise RuntimeError("\n".join(failures))
    return paths


def sharded_campaign(
    driver: str = "c",
    mode: str = "debug",
    fraction: float = 1.0,
    seed: int | None = None,
    shard_count: int = 2,
    out_dir=None,
    backend: str | None = None,
    compile_cache: bool = True,
    boot_checkpoint: bool | None = None,
    checkpoint_granularity: str | None = None,
    step_budget: int | None = None,
    workers_per_shard: int = 1,
    echo=None,
) -> CampaignResult:
    """One-call sharded campaign: plan once, fan out, merge.

    Bit-identical to the serial ``run_driver_campaign`` with the same
    parameters (results, order, summed checkpoint stats).  ``out_dir``
    keeps the plan and shard files for inspection or resumption;
    omitted, a temporary directory is used and cleaned up.
    """
    from repro.mutation.sampling import DEFAULT_SEED

    if seed is None:
        seed = DEFAULT_SEED
    if boot_checkpoint is None:
        boot_checkpoint = checkpointing_enabled_by_env()
    specs = plan_shards(
        shard_count,
        driver=driver,
        mode=mode,
        fraction=fraction,
        seed=seed,
        backend=backend,
        compile_cache=compile_cache,
        boot_checkpoint=boot_checkpoint,
        checkpoint_granularity=checkpoint_granularity,
        step_budget=step_budget,
    )
    with tempfile.TemporaryDirectory() as scratch:
        directory = str(out_dir) if out_dir is not None else scratch
        os.makedirs(directory, exist_ok=True)
        plan_path = None
        if boot_checkpoint:
            plan_path = os.path.join(directory, PLAN_FILE)
            record_campaign_plan(
                plan_path,
                driver=driver,
                mode=mode,
                granularity=checkpoint_granularity,
                backend=backend,
            )
        paths = run_shards_local(
            specs,
            directory,
            plan_path=plan_path,
            workers_per_shard=workers_per_shard,
            echo=echo,
        )
        return merge_shard_files(paths)


def resume_missing(
    out_dir,
    workers_per_shard: int = 1,
    echo=None,
) -> CampaignResult:
    """Finish a crashed sharded run: re-run only the absent shards.

    Scans ``out_dir`` for shard files, derives the missing shard
    coordinates from the headers (shards are self-describing, so no
    campaign state beyond the directory is needed), re-runs exactly
    those against the directory's saved plan, and merges the full set.
    """
    present = sorted(
        os.path.join(out_dir, name)
        for name in os.listdir(out_dir)
        if name.endswith(".shard")
    )
    missing, shard_count = missing_shard_indices(present)
    if missing:
        from repro.distributed.shards import file_digest

        header = read_shard_header(present[0])
        plan_path = None
        if header["plan_sha256"] is not None:
            # The original shards loaded a plan file; the re-run must
            # load the *same* one — a stray or re-recorded plan.ckpt
            # would produce shards the merge refuses, after minutes of
            # work, so fail fast on a digest mismatch.  (Checkpointed
            # shards run *without* --plan record their plans in-process
            # and carry plan_sha256=None; they resume the same way.)
            plan_path = os.path.join(out_dir, PLAN_FILE)
            if not os.path.exists(plan_path):
                raise ShardMergeError(
                    f"{out_dir}: shards were run against a plan file but "
                    f"{PLAN_FILE} is gone; restore it before resuming"
                )
            if file_digest(plan_path) != header["plan_sha256"]:
                raise ShardMergeError(
                    f"{out_dir}: {PLAN_FILE} does not match the plan the "
                    "existing shards used (digest mismatch); restore the "
                    "original plan or re-run the whole campaign"
                )
        specs = [
            ShardSpec(
                driver=header["driver"],
                mode=header["mode"],
                fraction=header["fraction"],
                seed=header["seed"],
                shard_index=index,
                shard_count=shard_count,
                backend=header["backend"],
                compile_cache=header["compile_cache"],
                boot_checkpoint=header["boot_checkpoint"],
                checkpoint_granularity=header["granularity"],
                # The resolved budget: explicit here, it resolves to the
                # same number the original shards computed.
                step_budget=header["step_budget"],
            )
            for index in missing
        ]
        present += run_shards_local(
            specs,
            out_dir,
            plan_path=plan_path,
            workers_per_shard=workers_per_shard,
            echo=echo,
        )
    return merge_shard_files(present)
