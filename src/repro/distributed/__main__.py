"""Shard-runner CLI: ``python -m repro.distributed <command>``.

Commands::

    record-plan   record the instrumented clean boot once, save portably
    run-shard     evaluate one deterministic shard; write a shard file
    merge         validate + merge shard files into the campaign result
    status        list present/missing shards of an output directory
    run-local     plan + run every shard as a local process + merge
    resume        re-run only the missing shards of out-dir, then merge

A multi-host campaign is ``record-plan`` once, one ``run-shard`` per
host (shipping the plan file alongside), and ``merge`` over the
collected shard files; ``run-local`` drives the same protocol on one
machine.  Shards need no coordination: each derives its mutant slice
from ``(driver, mode, fraction, seed, shard-index, shard-count)`` alone.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.distributed.local import (
    record_campaign_plan,
    resume_missing,
    sharded_campaign,
    shard_file_name,
)
from repro.distributed.sharding import DRIVERS, MODES, ShardSpec
from repro.distributed.shards import (
    merge_shard_files,
    missing_shard_indices,
    run_shard,
    write_shard_result,
)
from repro.kernel.checkpoint import GRANULARITIES
from repro.mutation.sampling import DEFAULT_SEED


def _campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--driver", choices=DRIVERS, default="c")
    parser.add_argument("--mode", choices=MODES, default="debug")
    parser.add_argument("--fraction", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--backend", default=None)
    parser.add_argument(
        "--no-compile-cache",
        dest="compile_cache",
        action="store_false",
        help="full per-mutant compiles (reference path)",
    )
    parser.add_argument(
        "--boot-checkpoint",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="resume mutants from boot checkpoints (implied by --plan; "
        "--no-boot-checkpoint pins cold boots even under "
        "REPRO_BOOT_CHECKPOINT=1; default: that environment variable)",
    )
    parser.add_argument(
        "--granularity",
        choices=GRANULARITIES,
        default=None,
        help="checkpoint granularity (default: the plan file's, "
        "or REPRO_CHECKPOINT_GRANULARITY)",
    )
    parser.add_argument("--step-budget", type=int, default=None)


def _spec(args, shard_index: int, shard_count: int) -> ShardSpec:
    return ShardSpec(
        driver=args.driver,
        mode=args.mode,
        fraction=args.fraction,
        seed=args.seed,
        shard_index=shard_index,
        shard_count=shard_count,
        backend=args.backend,
        compile_cache=args.compile_cache,
        boot_checkpoint=args.boot_checkpoint,
        checkpoint_granularity=args.granularity,
        step_budget=args.step_budget,
    )


def _render(result) -> str:
    from repro.kernel.outcomes import BootOutcome

    lines = [
        f"driver={result.driver} tested={result.tested} "
        f"enumerated={result.enumerated} "
        f"detected={result.detected_fraction():.1%}"
    ]
    for outcome in BootOutcome:
        count = result.count(outcome)
        if count:
            lines.append(f"  {outcome}: {count}")
    if result.checkpoint_stats:
        lines.append(f"  checkpoint_stats: {result.checkpoint_stats}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record-plan", help="record + save the portable checkpoint plan"
    )
    record.add_argument("--driver", choices=DRIVERS, default="c")
    record.add_argument("--mode", choices=MODES, default="debug")
    record.add_argument("--backend", default=None)
    record.add_argument(
        "--granularity", choices=GRANULARITIES, default=None
    )
    record.add_argument("--out", required=True)

    shard = commands.add_parser(
        "run-shard", help="evaluate one shard; write a shard-result file"
    )
    _campaign_arguments(shard)
    shard.add_argument("--shard-index", type=int, required=True)
    shard.add_argument("--shard-count", type=int, required=True)
    shard.add_argument("--plan", default=None, help="portable plan file")
    shard.add_argument("--workers", type=int, default=1)
    shard.add_argument(
        "--out", default=None,
        help="shard file path (default: shard-<i>-of-<n>.shard)",
    )

    merge = commands.add_parser(
        "merge", help="merge shard files into the campaign result"
    )
    merge.add_argument("shards", nargs="+", help="shard-result files")
    merge.add_argument("--json", action="store_true",
                       help="machine-readable outcome counts")

    status = commands.add_parser(
        "status", help="present/missing shards in an output directory"
    )
    status.add_argument("out_dir")

    local = commands.add_parser(
        "run-local", help="plan + run all shards locally + merge"
    )
    _campaign_arguments(local)
    local.add_argument("--shard-count", type=int, default=None)
    local.add_argument("--out-dir", default=None,
                       help="keep plan + shard files here")
    local.add_argument("--workers-per-shard", type=int, default=1)
    local.add_argument(
        "--engine", type=int, default=None, metavar="WORKERS",
        help="run on a warm in-process engine with N work-stealing "
        "workers instead of shard processes (identical result, no "
        "per-shard fixed cost; no shard files are written)",
    )

    resume = commands.add_parser(
        "resume", help="re-run only the missing shards of out-dir + merge"
    )
    resume.add_argument("out_dir")
    resume.add_argument("--workers-per-shard", type=int, default=1)

    args = parser.parse_args(argv)

    if args.command == "record-plan":
        header = record_campaign_plan(
            args.out,
            driver=args.driver,
            mode=args.mode,
            granularity=args.granularity,
            backend=args.backend,
        )
        print(json.dumps(header, indent=2))
        return 0

    if args.command == "run-shard":
        spec = _spec(args, args.shard_index, args.shard_count)
        result = run_shard(spec, plan_path=args.plan, workers=args.workers)
        out = args.out or shard_file_name(
            args.shard_index, args.shard_count
        )
        write_shard_result(result, out)
        print(
            f"shard {spec.shard_index}/{spec.shard_count}: "
            f"{len(result.results)} mutants -> {out}"
        )
        return 0

    if args.command == "merge":
        result = merge_shard_files(args.shards)
        if args.json:
            counts = {
                str(r.outcome): 0 for r in result.results
            }
            for r in result.results:
                counts[str(r.outcome)] += 1
            print(json.dumps({
                "driver": result.driver,
                "tested": result.tested,
                "enumerated": result.enumerated,
                "outcomes": counts,
                "checkpoint_stats": result.checkpoint_stats,
            }, indent=2))
        else:
            print(_render(result))
        return 0

    if args.command == "status":
        paths = sorted(
            os.path.join(args.out_dir, name)
            for name in os.listdir(args.out_dir)
            if name.endswith(".shard")
        )
        missing, shard_count = missing_shard_indices(paths)
        print(f"{len(paths)}/{shard_count} shards present")
        if missing:
            print(f"missing: {missing}")
            return 1
        return 0

    if args.command == "run-local":
        if (args.shard_count is None) == (args.engine is None):
            parser.error("run-local needs exactly one of "
                         "--shard-count or --engine")
        if args.engine is not None:
            from repro.engine import run_engine_campaign

            result = run_engine_campaign(
                driver=args.driver,
                mode=args.mode,
                fraction=args.fraction,
                seed=args.seed,
                workers=args.engine,
                backend=args.backend,
                compile_cache=args.compile_cache,
                boot_checkpoint=args.boot_checkpoint,
                checkpoint_granularity=args.granularity,
                step_budget=args.step_budget,
            )
            print(_render(result))
            return 0
        result = sharded_campaign(
            driver=args.driver,
            mode=args.mode,
            fraction=args.fraction,
            seed=args.seed,
            shard_count=args.shard_count,
            out_dir=args.out_dir,
            backend=args.backend,
            compile_cache=args.compile_cache,
            boot_checkpoint=args.boot_checkpoint,
            checkpoint_granularity=args.granularity,
            step_budget=args.step_budget,
            workers_per_shard=args.workers_per_shard,
            echo=lambda command: print("+", " ".join(command)),
        )
        print(_render(result))
        return 0

    if args.command == "resume":
        result = resume_missing(
            args.out_dir, workers_per_shard=args.workers_per_shard
        )
        print(_render(result))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def _run() -> int:
    from repro.distributed.shards import ShardMergeError
    from repro.kernel.checkpoint import PlanError
    from repro.serialize import ContainerError

    try:
        return main()
    except (ShardMergeError, PlanError, ContainerError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # piped into head etc.
        return 0


if __name__ == "__main__":
    sys.exit(_run())
