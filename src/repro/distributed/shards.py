"""Shard execution, shard-result files, and the index-space merge.

:func:`run_shard` evaluates one :class:`~repro.distributed.sharding.ShardSpec`
— re-deriving the campaign's sampled mutant list locally, evaluating only
this shard's stride of it, and stamping the result with the campaign's
full identity (parameters, baseline source digest, checkpoint-plan
digest).  :func:`write_shard_result` / :func:`read_shard_result` move
results through the self-describing container format
(`repro.serialize`), and :func:`merge_shard_results` reassembles a
:class:`~repro.mutation.runner.CampaignResult` **identical to the
serial run**: results ordered by sampled-mutant index, checkpoint
counters summed.

The merge is defensive by design — distributed runs lose shards and
re-run them, so it validates before it trusts:

* every shard must carry the same campaign identity (mixed seeds,
  fractions, backends, baseline sources or checkpoint plans refuse);
* the shard set must cover the index space exactly — a missing shard
  raises (naming which), a duplicate shard raises, and each shard's
  indices must be exactly its deterministic stride.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.distributed.sharding import ShardSpec
from repro.kernel.checkpoint import (
    checkpointing_enabled_by_env,
    granularity_from_env,
    pinned_granularity,
    read_plan_header,
    source_digest,
)
from repro.mutation.runner import (
    CampaignResult,
    MutantResult,
    evaluate_campaign,
    prepare_campaign,
)

#: Container kind + payload schema revision for shard-result files.
SHARD_KIND = "shard-result"
SHARD_FORMAT_VERSION = 1


class ShardMergeError(ValueError):
    """A shard set cannot be merged into one campaign result."""


@dataclass
class ShardResult:
    """One shard's evaluated mutants plus the campaign identity.

    ``campaign`` is the flat identity dict every sibling shard must
    match (see :func:`campaign_identity`); ``indices`` are the global
    sampled-mutant indices this shard evaluated, aligned with
    ``results``.
    """

    campaign: dict
    shard_index: int
    indices: tuple[int, ...]
    results: list[MutantResult]
    checkpoint_stats: dict | None = None

    @property
    def shard_count(self) -> int:
        return self.campaign["shard_count"]


def file_digest(path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def campaign_identity(
    spec: ShardSpec,
    source: str,
    tested_total: int,
    enumerated: int,
    clean_steps: int,
    step_budget: int,
    boot_checkpoint: bool,
    granularity: str | None,
    plan_sha256: str | None,
) -> dict:
    """The flat dict all shards of one campaign must agree on.

    Everything here is either a campaign parameter or a value derived
    deterministically from the parameters (baseline digest, sampled
    count, budget) — so equality across shard files is both a merge
    precondition and an end-to-end determinism check.
    """
    return {
        "driver": spec.driver,
        "mode": spec.mode,
        "fraction": spec.fraction,
        "seed": spec.seed,
        "shard_count": spec.shard_count,
        "backend": spec.backend,
        "compile_cache": spec.compile_cache,
        "boot_checkpoint": boot_checkpoint,
        "granularity": granularity,
        "step_budget": step_budget,
        "source_sha256": source_digest(source),
        "tested_total": tested_total,
        "enumerated": enumerated,
        "clean_steps": clean_steps,
        "plan_sha256": plan_sha256,
    }


def run_shard(
    spec: ShardSpec,
    plan_path=None,
    workers: int = 1,
    progress=None,
) -> ShardResult:
    """Evaluate one shard of a campaign, coordination-free.

    The shard re-derives the campaign's sampled mutant list from the
    spec alone (`repro.mutation.runner.prepare_campaign` is
    deterministic) and evaluates its own stride of it.  ``plan_path``
    names a portable checkpoint plan
    (`repro.kernel.checkpoint.save_plan`): the instrumented clean boot
    then ships to the shard instead of being re-recorded; giving one
    implies boot checkpointing.
    """
    spec.validate()
    boot_checkpoint = spec.boot_checkpoint
    if plan_path is not None and boot_checkpoint is None:
        boot_checkpoint = True
    if boot_checkpoint is None:
        boot_checkpoint = checkpointing_enabled_by_env()
    if plan_path is not None and not boot_checkpoint:
        raise ValueError("plan_path given but boot_checkpoint=False")

    granularity = None
    pinned = None
    plan_sha256 = None
    if boot_checkpoint:
        # Resolved only when checkpointing is on, so a stale environment
        # value cannot abort a non-checkpointed shard.
        pinned = pinned_granularity(spec.checkpoint_granularity)
        if plan_path is not None:
            # The plan file is the campaign-wide source of truth; its
            # header names the granularity without deserialising
            # anything, and its digest ties every shard to the same
            # recorded clean boot.  A pinned granularity (explicit or
            # environment override) must match it, exactly as the
            # serial runner's load refuses.
            granularity = read_plan_header(plan_path)["granularity"]
            if pinned is not None and pinned != granularity:
                raise ValueError(
                    f"plan {plan_path} records granularity "
                    f"{granularity!r}, campaign requires {pinned!r} — "
                    "re-record the plan for this campaign"
                )
            plan_sha256 = file_digest(plan_path)
        else:
            granularity = pinned or granularity_from_env()

    setup = prepare_campaign(
        spec.driver,
        spec.mode,
        spec.fraction,
        spec.seed,
        step_budget=spec.step_budget,
        backend=spec.backend,
        compile_cache=spec.compile_cache,
    )
    indices = tuple(spec.indices(len(setup.tested)))
    results, stats = evaluate_campaign(
        setup,
        indices,
        backend=spec.backend,
        compile_cache=spec.compile_cache,
        boot_checkpoint=boot_checkpoint,
        checkpoint_granularity=granularity or "subcall",
        granularity_pinned=pinned is not None or plan_path is not None,
        checkpoint_plan=plan_path,
        workers=workers,
        progress=progress,
    )
    return ShardResult(
        campaign=campaign_identity(
            spec,
            setup.source,
            tested_total=len(setup.tested),
            enumerated=setup.enumerated,
            clean_steps=setup.clean_steps,
            step_budget=setup.budget,
            boot_checkpoint=boot_checkpoint,
            granularity=granularity,
            plan_sha256=plan_sha256,
        ),
        shard_index=spec.shard_index,
        indices=indices,
        results=results,
        checkpoint_stats=stats,
    )


# -- shard-result files -------------------------------------------------------


def write_shard_result(result: ShardResult, path) -> dict:
    """Write a self-describing shard-result file; returns its header."""
    from repro.serialize import write_container

    header = dict(result.campaign)
    header["shard_format"] = SHARD_FORMAT_VERSION
    header["shard_index"] = result.shard_index
    header["evaluated"] = len(result.results)
    write_container(path, SHARD_KIND, header, result)
    return header


def read_shard_header(path) -> dict:
    """A shard file's campaign identity + coordinates, payload untouched."""
    from repro.serialize import read_header

    header = read_header(path, kind=SHARD_KIND)
    _check_shard_version(header, path)
    return header


def read_shard_result(path) -> ShardResult:
    from repro.serialize import read_container

    header, payload = read_container(path, kind=SHARD_KIND)
    _check_shard_version(header, path)
    if not isinstance(payload, ShardResult):
        raise ShardMergeError(f"{path}: payload is not a ShardResult")
    return payload


def _check_shard_version(header: dict, path) -> None:
    version = header.get("shard_format")
    if version != SHARD_FORMAT_VERSION:
        raise ShardMergeError(
            f"{path}: shard-result format {version!r} is not supported "
            f"(this reader supports {SHARD_FORMAT_VERSION})"
        )


# -- merging ------------------------------------------------------------------


def merge_shard_results(shards: list[ShardResult]) -> CampaignResult:
    """Reassemble the serial campaign result from a full shard set.

    Validates campaign identity, shard coverage and index coverage
    before merging; the returned ``CampaignResult`` equals the serial
    ``run_driver_campaign`` result field for field (results in sampled
    order, checkpoint counters summed).
    """
    if not shards:
        raise ShardMergeError("no shard results to merge")
    campaign = shards[0].campaign
    for shard in shards[1:]:
        if shard.campaign != campaign:
            differing = sorted(
                key
                for key in set(campaign) | set(shard.campaign)
                if campaign.get(key) != shard.campaign.get(key)
            )
            raise ShardMergeError(
                "shards disagree on campaign identity "
                f"(differing fields: {', '.join(differing)})"
            )
    shard_count = campaign["shard_count"]
    total = campaign["tested_total"]

    seen: dict[int, ShardResult] = {}
    for shard in shards:
        if shard.shard_index in seen:
            raise ShardMergeError(
                f"duplicate shard {shard.shard_index} of {shard_count}"
            )
        seen[shard.shard_index] = shard
    missing = sorted(set(range(shard_count)) - set(seen))
    if missing:
        raise ShardMergeError(
            f"missing shard(s) {missing} of {shard_count}; "
            "re-run them and merge again"
        )

    merged: list[MutantResult | None] = [None] * total
    for shard in seen.values():
        expected = tuple(range(shard.shard_index, total, shard_count))
        if tuple(shard.indices) != expected:
            raise ShardMergeError(
                f"shard {shard.shard_index} covers indices "
                f"{list(shard.indices)[:4]}..., expected stride "
                f"{list(expected)[:4]}..."
            )
        if len(shard.results) != len(shard.indices):
            raise ShardMergeError(
                f"shard {shard.shard_index} holds {len(shard.results)} "
                f"results for {len(shard.indices)} indices"
            )
        for index, result in zip(shard.indices, shard.results):
            merged[index] = result
    assert all(result is not None for result in merged)

    stats: dict | None = None
    for shard in sorted(seen.values(), key=lambda s: s.shard_index):
        if shard.checkpoint_stats is not None:
            if stats is None:
                stats = {}
            for key, value in shard.checkpoint_stats.items():
                stats[key] = stats.get(key, 0) + value
    return CampaignResult(
        driver=campaign["driver"],
        enumerated=campaign["enumerated"],
        results=merged,  # type: ignore[arg-type]
        clean_steps=campaign["clean_steps"],
        step_budget=campaign["step_budget"],
        checkpoint_stats=stats,
    )


def merge_shard_files(paths) -> CampaignResult:
    """Merge shard-result files (any order) into the campaign result."""
    return merge_shard_results([read_shard_result(path) for path in paths])


def missing_shard_indices(paths) -> tuple[list[int], int]:
    """``(missing shard indices, shard_count)`` across shard files.

    Reads only headers, so scanning a crashed run's output directory is
    cheap.  The resume workflow: re-run exactly these shards, then
    merge the full set.
    """
    headers = [read_shard_header(path) for path in paths]
    if not headers:
        raise ShardMergeError(
            "no shard files found; shard_count unknown — re-run the "
            "campaign or pass the shard files explicitly"
        )
    counts = {header["shard_count"] for header in headers}
    if len(counts) != 1:
        raise ShardMergeError(
            f"shard files disagree on shard_count: {sorted(counts)}"
        )
    shard_count = counts.pop()
    present = {header["shard_index"] for header in headers}
    return sorted(set(range(shard_count)) - present), shard_count
