"""Deterministic shard planning for distributed mutation campaigns.

A campaign's sampled mutant list is a pure function of
``(driver, mode, fraction, seed)`` — enumeration walks the baseline
source deterministically and sampling is seeded
(`repro.mutation.sampling`).  Sharding therefore needs **no
coordinator**: every shard re-derives the identical ``tested`` list and
takes its own stride of the index space,
``range(shard_index, total, shard_count)``
(`repro.mutation.runner.shard_indices`).  The union of all strides
covers every sampled index exactly once, so merging shard results by
index reconstructs the serial campaign bit for bit.

:class:`ShardSpec` carries one shard's full identity: the campaign
parameters every shard must agree on, plus this shard's coordinates.
:func:`plan_shards` expands a campaign into its shard specs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mutation.runner import shard_indices  # re-exported  # noqa: F401
from repro.mutation.sampling import DEFAULT_SEED

DRIVERS = ("c", "cdevil")
MODES = ("debug", "production")


@dataclass(frozen=True)
class ShardSpec:
    """One shard of one campaign: shared parameters + this shard's slot.

    The campaign-defining fields (everything except ``shard_index``)
    must be identical across a campaign's shards — the merge step
    refuses mixed results (`repro.distributed.shards`).  ``backend`` /
    ``compile_cache`` / ``boot_checkpoint`` are execution knobs rather
    than sampling inputs, but they are part of the spec because a merge
    of shards run under different configurations would not be a
    reproduction of any single serial run.
    """

    driver: str = "c"
    mode: str = "debug"
    fraction: float = 1.0
    seed: int = DEFAULT_SEED
    shard_index: int = 0
    shard_count: int = 1
    backend: str | None = None
    compile_cache: bool = True
    #: ``None``: resolve from ``REPRO_BOOT_CHECKPOINT`` at run time,
    #: exactly like ``run_driver_campaign``.
    boot_checkpoint: bool | None = None
    #: ``None``: adopt the plan file's granularity (or the environment /
    #: default resolution when recording in-process).
    checkpoint_granularity: str | None = None
    step_budget: int | None = None

    def validate(self) -> None:
        if self.driver not in DRIVERS:
            raise ValueError(f"unknown driver {self.driver!r}")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction {self.fraction} outside (0, 1]")
        if self.shard_count < 1:
            raise ValueError(f"shard_count {self.shard_count} must be >= 1")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index {self.shard_index} outside "
                f"[0, {self.shard_count})"
            )

    def indices(self, total: int) -> range:
        """This shard's slice of the sampled index space ``range(total)``."""
        return shard_indices(total, self.shard_index, self.shard_count)


def plan_shards(shard_count: int, **campaign) -> list[ShardSpec]:
    """The :class:`ShardSpec` for every shard of one campaign.

    ``campaign`` takes any :class:`ShardSpec` field except the shard
    coordinates.  Each returned spec is self-sufficient: handing spec
    ``i`` to ``repro.distributed.run_shard`` on any host reproduces
    shard ``i`` of the serial campaign.
    """
    for key in ("shard_index", "shard_count"):
        if key in campaign:
            raise ValueError(f"{key} is derived; pass shard_count positionally")
    base = ShardSpec(shard_count=shard_count, **campaign)
    specs = [
        replace(base, shard_index=index) for index in range(shard_count)
    ]
    for spec in specs:
        spec.validate()
    return specs
