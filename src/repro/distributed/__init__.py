"""Sharded campaign execution with portable checkpoint plans.

The paper's headline Tables 3/4 come from *full* mutation campaigns —
thousands of mutants per driver — which bind a serial run to one host's
core count.  This package partitions a campaign's sampled mutant index
space into deterministic, seed-stable shards that run as independent
processes (locally or on other hosts) and merge back into a
`~repro.mutation.runner.CampaignResult` identical to the serial run:

* `repro.distributed.sharding` — the coordination-free shard planner:
  a shard's mutant slice is a pure function of
  ``(driver, mode, fraction, seed, shard_index, shard_count)``;
* `repro.distributed.shards` — shard execution, self-describing
  shard-result files, and the validating index-space merge (missing and
  duplicate shards refuse loudly);
* `repro.distributed.local` — single-host orchestration: record the
  portable checkpoint plan once (`repro.kernel.checkpoint.save_plan`),
  fan shards out over OS processes, merge, resume after crashes;
* ``python -m repro.distributed`` — the CLI speaking the same protocol
  for multi-host runs (`repro.distributed.__main__`).
"""

from repro.distributed.local import (
    record_campaign_plan,
    resume_missing,
    run_shards_local,
    shard_command,
    shard_file_name,
    sharded_campaign,
)
from repro.distributed.sharding import ShardSpec, plan_shards, shard_indices
from repro.distributed.shards import (
    ShardMergeError,
    ShardResult,
    merge_shard_files,
    merge_shard_results,
    missing_shard_indices,
    read_shard_header,
    read_shard_result,
    run_shard,
    write_shard_result,
)

__all__ = [
    "ShardMergeError",
    "ShardResult",
    "ShardSpec",
    "merge_shard_files",
    "merge_shard_results",
    "missing_shard_indices",
    "plan_shards",
    "read_shard_header",
    "read_shard_result",
    "record_campaign_plan",
    "resume_missing",
    "run_shard",
    "run_shards_local",
    "shard_command",
    "shard_file_name",
    "shard_indices",
    "sharded_campaign",
    "write_shard_result",
]
