"""Shared diagnostics substrate for the Devil and mini-C front ends.

Both compilers in this repository (``repro.devil`` and ``repro.minic``)
report problems as :class:`Diagnostic` objects carrying a source location,
a severity, a stable error code and a human-readable message.  The mutation
harness relies on two properties of this module:

* *compile-time detection* is defined as "the relevant front end produced at
  least one diagnostic of severity ``ERROR``" — see
  :meth:`DiagnosticSink.has_errors`;
* diagnostics are deterministic and ordered (sorted by position, then code),
  so experiment output is reproducible run to run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in a source text: 1-based line, 1-based column."""

    line: int = 0
    column: int = 0
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class Severity(enum.Enum):
    """Importance of a diagnostic; only ERROR blocks compilation."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One problem found in a source text."""

    severity: Severity
    code: str
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return f"{self.location}: {self.severity}: {self.code}: {self.message}"

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR


class CompileError(Exception):
    """Raised by front-end entry points when compilation cannot proceed.

    Carries every diagnostic collected up to the failure so callers (tests,
    the mutation runner) can assert on codes and messages.
    """

    def __init__(self, diagnostics: list[Diagnostic]):
        self.diagnostics = list(diagnostics)
        summary = "; ".join(str(d) for d in self.diagnostics[:5])
        extra = len(self.diagnostics) - 5
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(summary or "compilation failed")

    @property
    def codes(self) -> list[str]:
        """Stable error codes of all carried diagnostics."""
        return [d.code for d in self.diagnostics]


class DiagnosticSink:
    """Accumulates diagnostics during a front-end pass."""

    def __init__(self) -> None:
        self._diagnostics: list[Diagnostic] = []

    def emit(
        self,
        severity: Severity,
        code: str,
        message: str,
        location: SourceLocation | None = None,
    ) -> Diagnostic:
        diag = Diagnostic(severity, code, message, location or SourceLocation())
        self._diagnostics.append(diag)
        return diag

    def error(
        self, code: str, message: str, location: SourceLocation | None = None
    ) -> Diagnostic:
        return self.emit(Severity.ERROR, code, message, location)

    def warning(
        self, code: str, message: str, location: SourceLocation | None = None
    ) -> Diagnostic:
        return self.emit(Severity.WARNING, code, message, location)

    def note(
        self, code: str, message: str, location: SourceLocation | None = None
    ) -> Diagnostic:
        return self.emit(Severity.NOTE, code, message, location)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        """All diagnostics, sorted by location then code for determinism."""
        return sorted(
            self._diagnostics,
            key=lambda d: (d.location.filename, d.location.line, d.location.column, d.code),
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    def has_errors(self) -> bool:
        return any(d.is_error for d in self._diagnostics)

    def raise_if_errors(self) -> None:
        if self.has_errors():
            raise CompileError(self.errors)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)
