"""Outcome classes of a mutant run (paper §4.2, cases 1-7 + compile time).

Classification precedence: compile beats run; within a run the first
terminating event wins; damage is assessed only for completed boots and
dead code only for undamaged completed boots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BootOutcome(enum.Enum):
    #: The front end rejected the mutant (Devil checker or mini-C sema).
    COMPILE_CHECK = "compile-time check"
    #: Case 1 — a Devil debug assertion fired; source line reported.
    RUN_TIME_CHECK = "run-time check"
    #: Case 2 — boot was clean and the mutated line never executed.
    DEAD_CODE = "dead code"
    #: Case 3 — boot completed, mutation executed, nothing visible: the
    #: worst case (a latent bug).
    BOOT = "boot"
    #: Case 4 — machine-level fault, nothing printed.
    CRASH = "crash"
    #: Case 5 — the watchdog expired.
    INFINITE_LOOP = "infinite loop"
    #: Case 6 — kernel panic with a message.
    HALT = "halt"
    #: Case 7 — boot completed but the disk was altered.
    DAMAGED_BOOT = "damaged boot"
    #: Not one of the paper's cases: the evaluation *harness* died.  A
    #: mutant whose lease repeatably kills a fresh engine worker is
    #: quarantined by `repro.engine` supervision and reported with this
    #: outcome instead of aborting the campaign.  Serial runs never
    #: produce it (the mutant executes in the classifying process).
    WORKER_CRASH = "worker crash"

    def __str__(self) -> str:
        return self.value


#: Outcomes that count as "detected" in the paper's headline numbers.
DETECTED_OUTCOMES = frozenset(
    {BootOutcome.COMPILE_CHECK, BootOutcome.RUN_TIME_CHECK}
)

#: Outcomes where the developer at least knows something is wrong.
OBSERVABLE_OUTCOMES = frozenset(
    {
        BootOutcome.COMPILE_CHECK,
        BootOutcome.RUN_TIME_CHECK,
        BootOutcome.CRASH,
        BootOutcome.INFINITE_LOOP,
        BootOutcome.HALT,
        BootOutcome.DAMAGED_BOOT,
    }
)


@dataclass
class BootReport:
    """Everything observed while booting one kernel."""

    outcome: BootOutcome
    detail: str = ""
    steps: int = 0
    coverage: set[tuple[str, int]] = field(default_factory=set)
    log: list[str] = field(default_factory=list)
    disk_diff: list[int] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.outcome in (BootOutcome.BOOT, BootOutcome.DAMAGED_BOOT)

    def __str__(self) -> str:
        detail = f" ({self.detail})" if self.detail else ""
        return f"{self.outcome}{detail}"
