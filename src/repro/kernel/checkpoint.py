"""Cross-mutant boot checkpointing.

Every mutant boot replays the clean boot's shared prefix — tens of
thousands of interpreter steps and hundreds of bus transactions that are
bit-identical across most of a campaign — before the mutated line ever
executes.  This module amortises that prefix across the whole campaign:

* :func:`record_plan` performs **one instrumented clean boot**, capturing
  a full machine + interpreter + kernel-state checkpoint before every
  driver call, and recording per source line the step index and
  driver-call index of its first execution;
* :func:`checkpoint_for_mutant` maps a mutant's changed line to the
  latest checkpoint *provably* before its first divergent step;
* :func:`resume_boot` re-enters the boot at that checkpoint and produces
  a :class:`~repro.kernel.outcomes.BootReport` bit-identical to a cold
  boot of the same mutant.

Soundness argument
------------------

A mutant differs from the baseline by a single-token rewrite of one
physical source line ``L``.  Statement ``origins`` carry every line a
statement's tokens came from — macro definition lines included — so the
first time any construct influenced by ``L`` executes, ``L`` enters the
coverage set.  If the clean boot first covers ``L`` during driver call
``k``, then no statement with tokens from ``L`` executed during
construction or calls ``0..k-1``; a mutant of ``L`` therefore executes
the same instruction stream as the clean boot up to the checkpoint
before call ``k`` and may be resumed there.

The mapping falls back to a cold boot whenever that argument does not
hold — and a resumed boot is never *wrong*, merely unavailable, in the
fallback cases:

* the changed line contributes tokens to a *non-executable* construct
  (global declaration, struct/typedef, function signature, or a
  preprocessor line that never reaches statement origins, e.g. a macro
  only referenced through another macro's body): its effect is not
  bounded by statement coverage → cold boot;
* the changed line is outside the recorded coverage entirely (dead code
  in the clean boot) → cold boot;
* first coverage during construction or call 0 (``ide_init``): the
  checkpoint before call 0 saves nothing over power-on → cold boot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.hw.machine import Machine, MachineSnapshot
from repro.kernel.kernel import (
    BootSequence,
    DEFAULT_BACKEND,
    _KernelContext,
    classify_run,
)
from repro.kernel.outcomes import BootReport
from repro.minic import ast
from repro.minic.compile import interpreter_for
from repro.minic.interp import InterpreterSnapshot
from repro.minic.program import CompiledProgram

#: Environment switch the campaign runner honours (see
#: ``run_driver_campaign(boot_checkpoint=...)``).
CHECKPOINT_ENV = "REPRO_BOOT_CHECKPOINT"


def checkpointing_enabled_by_env() -> bool:
    return os.environ.get(CHECKPOINT_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class BootCheckpoint:
    """Machine + interpreter + kernel state before driver call ``call_index``."""

    call_index: int
    steps: int
    interp: InterpreterSnapshot
    machine: MachineSnapshot
    kernel: dict


@dataclass
class CheckpointPlan:
    """One instrumented clean boot's checkpoints and first-execution map."""

    backend: str | None
    step_budget: int
    report: BootReport
    checkpoints: list[BootCheckpoint] = field(default_factory=list)
    #: (file, line) -> driver-call index of first execution; -1 when the
    #: line first executed during interpreter construction (global
    #: initialisers).
    first_call: dict[tuple[str, int], int] = field(default_factory=dict)
    #: (file, line) -> interpreter step index at first execution (exact
    #: on the tree backend; batch-granular on compiled backends, which
    #: sync ``steps`` at batch boundaries).
    first_step: dict[tuple[str, int], int] = field(default_factory=dict)
    #: Lines whose tokens reach non-executable constructs — mutations
    #: there are never resumable (see module docstring).
    unsafe_lines: frozenset = frozenset()
    #: Diagnostics for benchmarks: resumed/cold decisions + steps skipped.
    stats: dict = field(default_factory=lambda: {
        "resumed": 0,
        "cold": 0,
        "steps_skipped": 0,
    })

    @property
    def clean_steps(self) -> int:
        return self.report.steps


class _RecordingCoverage(set):
    """Coverage set recording the step and call index of first insertion.

    Every backend reaches coverage through the interpreter's
    ``coverage`` attribute (``rt.coverage.update(...)`` or a per-call
    ``_cov = rt.coverage`` alias), so swapping this in before the boot
    observes all insertions.
    """

    def __init__(self, interp):
        super().__init__()
        self._interp = interp
        self.current_call = -1  # -1: interpreter construction
        self.first_seen: dict[tuple[str, int], tuple[int, int]] = {}

    def _record(self, item) -> None:
        if item not in self.first_seen:
            self.first_seen[item] = (self._interp.steps, self.current_call)

    def add(self, item) -> None:
        if item not in self:
            self._record(item)
        super().add(item)

    def update(self, *iterables) -> None:
        for iterable in iterables:
            for item in iterable:
                self.add(item)

    def __ior__(self, other):
        self.update(other)
        return self


def record_plan(
    program: CompiledProgram,
    machine: Machine,
    step_budget: int,
    backend: str | None = None,
) -> CheckpointPlan:
    """Record the instrumented clean boot of ``program`` on ``machine``.

    Returns a plan whose ``report`` is bit-identical to what
    ``repro.kernel.boot`` produces for the same arguments — callers
    should verify the outcome is :data:`BootOutcome.BOOT` before using
    the checkpoints.  The machine is left in its post-boot state.
    """
    interp_class = interpreter_for(backend or DEFAULT_BACKEND)
    interp = interp_class(
        program, machine.bus, step_budget=step_budget, defer_globals=True
    )
    recorder = _RecordingCoverage(interp)
    interp.coverage = recorder
    context = _KernelContext(interp)
    sequence = BootSequence(context, machine)
    plan = CheckpointPlan(backend=backend, step_budget=step_budget, report=None)

    def run() -> None:
        interp.initialize_globals()
        while not sequence.done:
            recorder.current_call = sequence.call_index
            plan.checkpoints.append(
                BootCheckpoint(
                    call_index=sequence.call_index,
                    steps=interp.steps,
                    interp=interp.snapshot_state(),
                    machine=machine.snapshot(),
                    kernel=sequence.snapshot_state(),
                )
            )
            sequence.step()

    plan.report = classify_run(run, machine, interp)
    plan.first_step = {
        line: step for line, (step, _) in recorder.first_seen.items()
    }
    plan.first_call = {
        line: call for line, (_, call) in recorder.first_seen.items()
    }
    plan.unsafe_lines = _non_executable_lines(program)
    return plan


def _non_executable_lines(program: CompiledProgram) -> frozenset:
    """Lines contributing tokens to constructs outside statement coverage.

    A mutation on such a line can change program semantics without the
    line ever entering the coverage set at the moment of divergence
    (globals initialise during construction; struct/typedef and
    signature changes act at compile time), so resumption is barred.
    """
    lines: set = set()
    for decl in program.unit.decls:
        # FuncDecl origins span the signature tokens only (the body's
        # statements carry their own origins), which is exactly the
        # non-executable part of a definition.
        if isinstance(
            decl,
            (ast.FuncDecl, ast.GlobalDecl, ast.StructDef, ast.TypedefDecl),
        ):
            lines |= decl.origins
    return frozenset(lines)


def checkpoint_for_mutant(
    plan: CheckpointPlan, changed_lines
) -> BootCheckpoint | None:
    """Latest checkpoint provably before the mutant's first divergent step.

    ``changed_lines`` are the ``(file, line)`` pairs the mutant's text
    differs from the baseline on.  Returns ``None`` whenever divergence
    before any checkpoint cannot be ruled out — the caller cold-boots.
    """
    earliest: int | None = None
    for line in changed_lines:
        if line in plan.unsafe_lines:
            return None
        call = plan.first_call.get(line)
        if call is None or call < 1:
            # Outside recorded coverage, first executed during
            # construction (-1), or during call 0: nothing to skip.
            return None
        earliest = call if earliest is None else min(earliest, call)
    if earliest is None or earliest >= len(plan.checkpoints):
        return None
    return plan.checkpoints[earliest]


def resume_boot(
    program: CompiledProgram,
    checkpoint: BootCheckpoint,
    machine: Machine,
    step_budget: int,
    backend: str | None = None,
) -> BootReport:
    """Boot ``program`` from ``checkpoint``, classifying like a cold boot.

    The machine is overwritten with the checkpoint's device state; the
    interpreter is built for the (mutant) program, then its mutable
    state — steps, coverage, log, globals, synthetic addresses — is
    replaced by the checkpoint's, which equals the mutant's own state at
    that boundary whenever :func:`checkpoint_for_mutant` offered the
    checkpoint.  Global initialisers are deliberately not re-run: their
    effects are part of the restored state.
    """
    interp_class = interpreter_for(backend or DEFAULT_BACKEND)
    interp = interp_class(
        program, machine.bus, step_budget=step_budget, defer_globals=True
    )
    machine.restore(checkpoint.machine)
    interp.restore_state(checkpoint.interp)
    context = _KernelContext(interp)
    sequence = BootSequence(context, machine)
    sequence.restore_state(checkpoint.kernel)
    return classify_run(sequence.run, machine, interp)


def changed_lines_of(site, replacement: str) -> tuple | None:
    """The (file, line) set a single-token mutant changes, or ``None``.

    Single-token rewrites never move line numbers; a replacement or
    original containing a newline would, so such mutants (none are
    currently generated) report ``None`` and cold-boot.
    """
    if "\n" in site.original or "\n" in replacement:
        return None
    return ((site.file, site.line),)
