"""Cross-mutant boot checkpointing.

Every mutant boot replays the clean boot's shared prefix — tens of
thousands of interpreter steps and hundreds of bus transactions that are
bit-identical across most of a campaign — before the mutated line ever
executes.  This module amortises that prefix across the whole campaign:

* :func:`record_plan` performs **one instrumented clean boot**, capturing
  a full machine + interpreter + kernel-state checkpoint before every
  driver call, and recording per source line the step index and
  driver-call index of its first execution;
* :func:`checkpoint_for_mutant` maps a mutant's changed line to the
  latest checkpoint *provably* before its first divergent step;
* :func:`resume_boot` re-enters the boot at that checkpoint and produces
  a :class:`~repro.kernel.outcomes.BootReport` bit-identical to a cold
  boot of the same mutant.

Soundness argument
------------------

A mutant differs from the baseline by a single-token rewrite of one
physical source line ``L``.  Statement ``origins`` carry every line a
statement's tokens came from — macro definition lines included — so the
first time any construct influenced by ``L`` executes, ``L`` enters the
coverage set.  If the clean boot first covers ``L`` during driver call
``k``, then no statement with tokens from ``L`` executed during
construction or calls ``0..k-1``; a mutant of ``L`` therefore executes
the same instruction stream as the clean boot up to the checkpoint
before call ``k`` and may be resumed there.

The mapping falls back to a cold boot whenever that argument does not
hold — and a resumed boot is never *wrong*, merely unavailable, in the
fallback cases:

* the changed line contributes tokens to a *non-executable* construct
  (global declaration, struct/typedef, function signature, or a
  preprocessor line that never reaches statement origins — e.g. an
  alias macro whose whole body is another macro's name, so its
  expansion leaves no token stamped with its line): its effect is not
  bounded by statement coverage → cold boot;
* the changed line is outside the recorded coverage entirely (dead code
  in the clean boot) → cold boot;
* under call granularity only, first coverage during construction or
  call 0 (``ide_init``): the checkpoint before call 0 saves nothing over
  power-on → cold boot;
* under call granularity only, switch group *label* lines: a label
  mutant can redirect a re-executed switch's dispatch in an earlier
  call than the label's first coverage, and only the sub-call
  recorder's dispatch-step anchors can bound that → cold boot.

Sub-call granularity
--------------------

Most Tables 3/4 mutants sit in the IDE polling helpers whose lines first
execute during ``ide_init`` — call granularity cold-boots all of them.
``record_plan(granularity="subcall")`` therefore records the clean boot
on an instrumented tree-walking interpreter that additionally snapshots
at **statement boundaries inside each driver call**: whenever the walker
is about to execute a depth-1 statement (directly inside the driver
entry's frame, never mid-expression), at most every ``subcall_interval``
steps and ``subcall_limit`` times per call, it captures machine +
interpreter + kernel state *plus* the active frame's locals and a
statement path addressing the about-to-execute statement
(`InterpreterSnapshot.frames` / ``.resume``).  Resuming re-enters the
boot mid-call: the kernel-side call site finishes the in-flight call via
``Interpreter.resume_in_flight`` (the restored frame's continuation,
executed by the tree-walking machinery every backend inherits — fresh
nested calls still dispatch into the resuming backend's compiled
bodies), then proceeds exactly as a cold boot would.

The soundness argument extends per *step* instead of per call.  The
recording walker observes the exact step index at which every line first
enters coverage, and every statement records its coverage — macro
origin lines included — *before* any of its sub-expressions evaluate,
so a line's first-coverage step strictly precedes any effect of a
construct influenced by it.  A snapshot taken at a statement boundary
with ``steps < first_step(L)`` therefore precedes the mutant's first
divergent step, and the prefix up to it is bit-identical for the
mutant.  One construct needs a tighter bound: a ``switch`` *selects* its
case group — comparing the selector against every group's label values —
before any group's origin lines enter coverage, so a label-line mutant
can diverge at the dispatch step.  The recorder anchors every group
label line to its switch's dispatch step (``divergence_anchors``), and
the mapping uses ``min(first step, anchor)``.  All call-granularity
fallback cases above still apply (and are regression-pinned by tests);
only the call-0 rule is replaced by the per-step bound.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace

from repro.hw.machine import Machine, MachineSnapshot
from repro.kernel.kernel import (
    BootSequence,
    DEFAULT_BACKEND,
    _KernelContext,
    classify_run,
)
from repro.kernel.outcomes import BootReport
from repro.minic import ast
from repro.minic.compile import interpreter_for
from repro.minic.interp import (
    Interpreter,
    InterpreterSnapshot,
    _BreakSignal,
    _ContinueSignal,
)
from repro.minic.program import CompiledProgram

#: Environment switch the campaign runner honours (see
#: ``run_driver_campaign(boot_checkpoint=...)``).
CHECKPOINT_ENV = "REPRO_BOOT_CHECKPOINT"

#: Environment override for the campaign runner's checkpoint
#: granularity: ``"call"`` (PR 3's call boundaries only) or ``"subcall"``
#: (the default: call boundaries plus intra-call statement boundaries).
GRANULARITY_ENV = "REPRO_CHECKPOINT_GRANULARITY"

GRANULARITIES = ("call", "subcall")

#: Sub-call snapshot throttle: minimum steps between intra-call
#: snapshots, and the per-call snapshot cap.  The first depth-1
#: statement boundary of every call always qualifies, so every line
#: first covered inside a call has a snapshot strictly before it.
DEFAULT_SUBCALL_INTERVAL = 24
DEFAULT_SUBCALL_LIMIT = 64


def checkpointing_enabled_by_env() -> bool:
    return os.environ.get(CHECKPOINT_ENV, "") not in ("", "0")


def granularity_from_env(default: str = "subcall") -> str:
    value = os.environ.get(GRANULARITY_ENV, "") or default
    if value not in GRANULARITIES:
        raise ValueError(
            f"unknown checkpoint granularity {value!r}; "
            f"available: {', '.join(GRANULARITIES)}"
        )
    return value


def pinned_granularity(explicit: str | None) -> str | None:
    """The granularity this campaign *insists* on, or ``None`` if free.

    Pinned means an explicit parameter or a ``REPRO_CHECKPOINT_GRANULARITY``
    override; a pinned value must match any loaded plan's recorded
    granularity (the serial runner and the shard runner both enforce
    this through here), while an unpinned campaign adopts the plan's.
    """
    if explicit is not None:
        return explicit
    if os.environ.get(GRANULARITY_ENV, "") != "":
        return granularity_from_env()
    return None


def fresh_stats() -> dict:
    """Zeroed checkpoint-decision counters (one dict per campaign)."""
    return {
        "resumed": 0,
        "resumed_subcall": 0,
        "cold": 0,
        "steps_skipped": 0,
    }


@dataclass(frozen=True)
class BootCheckpoint:
    """Machine + interpreter + kernel state at one clean-boot instant.

    Call-boundary checkpoints (``subcall=False``) precede driver call
    ``call_index``; sub-call checkpoints (``subcall=True``) precede a
    depth-1 statement *inside* that call, and their interpreter snapshot
    carries the in-flight frame and re-entry path.
    """

    call_index: int
    steps: int
    interp: InterpreterSnapshot
    machine: MachineSnapshot
    kernel: dict
    subcall: bool = False


@dataclass
class CheckpointPlan:
    """One instrumented clean boot's checkpoints and first-execution map."""

    backend: str | None
    step_budget: int
    report: BootReport
    #: ``"call"`` or ``"subcall"`` — selects the mutant-mapping rule.
    granularity: str = "call"
    checkpoints: list[BootCheckpoint] = field(default_factory=list)
    #: (file, line) -> driver-call index of first execution; -1 when the
    #: line first executed during interpreter construction (global
    #: initialisers).
    first_call: dict[tuple[str, int], int] = field(default_factory=dict)
    #: (file, line) -> interpreter step index at first execution (exact
    #: on the tree backend — which sub-call plans always record on;
    #: batch-granular on compiled backends, which sync ``steps`` at
    #: batch boundaries).
    first_step: dict[tuple[str, int], int] = field(default_factory=dict)
    #: Lines whose tokens reach non-executable constructs — mutations
    #: there are never resumable (see module docstring).
    unsafe_lines: frozenset = frozenset()
    #: (file, line) -> earlier divergence bound than first coverage:
    #: switch group label lines anchor to their switch's dispatch step
    #: (sub-call plans only; see module docstring).
    divergence_anchors: dict = field(default_factory=dict)
    #: Lines carrying switch group labels (statically collected).  Call-
    #: granularity plans bar these from resumption outright: a label
    #: mutant can redirect a *re-executed* switch's dispatch in an
    #: earlier call than the label's first coverage, and only the
    #: sub-call recorder observes dispatch steps to bound that exactly.
    switch_label_lines: frozenset = frozenset()
    #: Diagnostics for benchmarks: resumed/cold decisions + steps
    #: skipped; ``resumed_subcall`` counts resumes from intra-call
    #: checkpoints (a subset of ``resumed``).
    stats: dict = field(default_factory=fresh_stats)

    @property
    def clean_steps(self) -> int:
        return self.report.steps


class _RecordingCoverage(set):
    """Coverage set recording the step and call index of first insertion.

    Every backend reaches coverage through the interpreter's
    ``coverage`` attribute (``rt.coverage.update(...)`` or a per-call
    ``_cov = rt.coverage`` alias), so swapping this in before the boot
    observes all insertions.
    """

    def __init__(self, interp):
        super().__init__()
        self._interp = interp
        self.current_call = -1  # -1: interpreter construction
        self.first_seen: dict[tuple[str, int], tuple[int, int]] = {}

    def _record(self, item) -> None:
        if item not in self.first_seen:
            self.first_seen[item] = (self._interp.steps, self.current_call)

    def add(self, item) -> None:
        if item not in self:
            self._record(item)
        super().add(item)

    def update(self, *iterables) -> None:
        for iterable in iterables:
            for item in iterable:
                self.add(item)

    def __ior__(self, other):
        self.update(other)
        return self


def _continuation_has_loop(body: ast.Block, path: tuple) -> bool:
    """Whether resuming at ``path`` leaves a loop to run *outside* a call.

    The resumed continuation executes statements through the per-
    statement machinery (`Interpreter._resume_stmt` / ``_exec_resumed``),
    which is closure-speed at best — fine for straight-line remainders,
    but a budget-burning mutant loop there would forfeit the source
    backend's 3x loop speed.  Sub-call snapshots are therefore only
    taken where the continuation is loop-free at call depth 1: an
    enclosing loop marker, or any loop among the statements still to run
    (the leaf included — loops *inside fresh calls* run compiled and
    don't count), disqualifies the boundary.
    """
    from repro.minic.codegen import _contains_loop

    node = body
    pending: list = []
    for marker in path:
        kind = marker[0]
        if kind in ("while", "dowhile", "for-init", "for-body"):
            return True
        if kind == "block":
            index = marker[1]
            pending.extend(node.statements[index + 1 :])
            node = node.statements[index]
        elif kind == "then":
            node = node.then
        elif kind == "else":
            node = node.otherwise
        elif kind == "switch":
            group = node.groups[marker[1]]
            pending.extend(group.body[marker[2] + 1 :])
            for later in node.groups[marker[1] + 1 :]:
                pending.extend(later.body)
            node = group.body[marker[2]]
        else:
            raise ValueError(f"unhandled resume marker {marker!r}")
    pending.append(node)
    return _contains_loop(pending)


class _RecordingInterpreter(Interpreter):
    """Tree walker that knows *where* it is at every statement boundary.

    Maintains a statement path (the marker chain ``Interpreter._resume_stmt``
    descends) mirroring the walker's own recursion, the in-flight call's
    name and original arguments, and the switch-dispatch divergence
    anchors.  ``boundary_hook`` fires before every depth-1 statement —
    the sub-call snapshot points.  Every override replicates the base
    walker's step/coverage accounting exactly; the resume-vs-cold
    bit-identity sweeps assert the replication.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._path: list = []
        self._call_args: list = []
        self._switch_anchors: dict = {}
        self.boundary_hook = None

    # -- position reporting (consumed by snapshot_state) --------------------

    def _resume_position(self):
        if len(self._call_args) != 1:
            return super()._resume_position()
        name, args = self._call_args[0]
        path = tuple(
            tuple(marker) if isinstance(marker, list) else marker
            for marker in self._path
        )
        return name, path, args

    # -- instrumented execution --------------------------------------------

    def _call_function(self, decl, args):
        self._call_args.append((decl.name, args))
        try:
            return super()._call_function(decl, args)
        finally:
            self._call_args.pop()

    def _exec(self, stmt):
        hook = self.boundary_hook
        if hook is not None and len(self._scopes) == 1:
            hook(stmt)
        if isinstance(stmt, ast.If):
            # Replicated from Interpreter._exec so the taken branch gets
            # a path marker.
            self.consume_steps(1)
            self.coverage.update(stmt.origins)
            assert stmt.cond is not None and stmt.then is not None
            path = self._path
            if self._truthy(self._eval(stmt.cond)):
                path.append(("then",))
                try:
                    self._exec(stmt.then)
                finally:
                    path.pop()
            elif stmt.otherwise is not None:
                path.append(("else",))
                try:
                    self._exec(stmt.otherwise)
                finally:
                    path.pop()
            return
        super()._exec(stmt)

    def _exec_block(self, block, new_scope: bool = True):
        # Replicated from Interpreter._exec_block, plus the position
        # marker (whose index slot advances in place).
        if new_scope:
            self._push_scope()
        marker = ["block", 0, new_scope]
        path = self._path
        path.append(marker)
        try:
            for index, stmt in enumerate(block.statements):
                marker[1] = index
                self._exec(stmt)
        finally:
            path.pop()
            if new_scope:
                self._pop_scope()

    def _exec_while(self, stmt):
        self._path.append(("while",))
        try:
            super()._exec_while(stmt)
        finally:
            self._path.pop()

    def _exec_do_while(self, stmt):
        self._path.append(("dowhile",))
        try:
            super()._exec_do_while(stmt)
        finally:
            self._path.pop()

    def _exec_for(self, stmt):
        # Replicated from Interpreter._exec_for: the init and body
        # positions need distinct markers.
        assert stmt.body is not None
        self._push_scope()
        path = self._path
        try:
            if stmt.init is not None:
                path.append(("for-init",))
                try:
                    self._exec(stmt.init)
                finally:
                    path.pop()
            path.append(("for-body",))
            try:
                while True:
                    self.consume_steps(1)
                    self.coverage.update(stmt.origins)
                    if stmt.cond is not None and not self._truthy(
                        self._eval(stmt.cond)
                    ):
                        return
                    try:
                        self._exec(stmt.body)
                    except _BreakSignal:
                        return
                    except _ContinueSignal:
                        pass
                    if stmt.step is not None:
                        self._eval(stmt.step)
            finally:
                path.pop()
        finally:
            self._pop_scope()

    def _exec_switch(self, stmt):
        # Replicated from Interpreter._exec_switch, plus the group/
        # statement marker and the label-line divergence anchors: a
        # label mutant can redirect dispatch *here*, before any group
        # line enters coverage.
        anchors = self._switch_anchors
        for group in stmt.groups:
            for line in group.origins:
                if line not in anchors:
                    anchors[line] = self.steps
        assert stmt.expr is not None
        selector = int(self._eval(stmt.expr))
        start = None
        default = None
        for index, group in enumerate(stmt.groups):
            if any(value == selector for value in group.values if value is not None):
                start = index
                break
            if default is None and any(value is None for value in group.values):
                default = index
        if start is None:
            start = default
        if start is None:
            return
        marker = ["switch", start, 0]
        path = self._path
        self._push_scope()
        path.append(marker)
        try:
            for group_index in range(start, len(stmt.groups)):
                group = stmt.groups[group_index]
                marker[1] = group_index
                self.coverage.update(group.origins)
                for stmt_index, inner in enumerate(group.body):
                    marker[2] = stmt_index
                    self._exec(inner)
        except _BreakSignal:
            pass
        finally:
            path.pop()
            self._pop_scope()


def record_plan(
    program: CompiledProgram,
    machine: Machine,
    step_budget: int,
    backend: str | None = None,
    granularity: str = "call",
    subcall_interval: int = DEFAULT_SUBCALL_INTERVAL,
    subcall_limit: int = DEFAULT_SUBCALL_LIMIT,
    harness_factory=None,
) -> CheckpointPlan:
    """Record the instrumented clean boot of ``program`` on ``machine``.

    Returns a plan whose ``report`` is bit-identical to what
    ``repro.kernel.boot`` produces for the same arguments — callers
    should verify the outcome is :data:`BootOutcome.BOOT` before using
    the checkpoints.  The machine is left in its post-boot state.

    ``granularity="call"`` records one checkpoint per driver-call
    boundary on the requested ``backend``.  ``granularity="subcall"``
    additionally snapshots at depth-1 statement boundaries inside each
    call — at most one per ``subcall_interval`` steps and
    ``subcall_limit`` per call — and always records on the instrumented
    tree walker (exact step indices; the snapshots restore into any
    backend).

    ``harness_factory`` swaps the kernel boot harness for another
    workload: called as ``harness_factory(interp, machine)`` it must
    return ``(sequence, classifier)`` where ``sequence`` implements the
    :class:`~repro.kernel.kernel.BootSequence` surface (``call_index``,
    ``done``, ``step()``, ``snapshot_state()``/``restore_state()``) and
    ``classifier(run, machine, interp)`` maps the run to a
    :class:`~repro.kernel.outcomes.BootReport`.  ``None`` records the
    standard kernel boot.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown checkpoint granularity {granularity!r}; "
            f"available: {', '.join(GRANULARITIES)}"
        )
    subcall = granularity == "subcall"
    if subcall:
        interp = _RecordingInterpreter(
            program, machine.bus, step_budget=step_budget, defer_globals=True
        )
    else:
        interp_class = interpreter_for(backend or DEFAULT_BACKEND)
        interp = interp_class(
            program, machine.bus, step_budget=step_budget, defer_globals=True
        )
    recorder = _RecordingCoverage(interp)
    interp.coverage = recorder
    if harness_factory is None:
        context = _KernelContext(interp)
        sequence = BootSequence(context, machine)
        classifier = classify_run
    else:
        sequence, classifier = harness_factory(interp, machine)
    plan = CheckpointPlan(
        backend=backend,
        step_budget=step_budget,
        report=None,
        granularity=granularity,
    )
    throttle = {"floor": 0, "taken": 0}

    def boundary_hook(stmt) -> None:
        if throttle["taken"] >= subcall_limit:
            return
        if interp.steps < throttle["floor"]:
            return
        name, path, _ = interp._resume_position()
        if _continuation_has_loop(interp._functions[name].body, path):
            return
        plan.checkpoints.append(
            BootCheckpoint(
                call_index=sequence.call_index,
                steps=interp.steps,
                interp=interp.snapshot_state(),
                machine=machine.snapshot(),
                kernel=sequence.snapshot_state(),
                subcall=True,
            )
        )
        throttle["floor"] = interp.steps + subcall_interval
        throttle["taken"] += 1

    def run() -> None:
        interp.initialize_globals()
        # Only armed once the boot sequence starts issuing driver calls:
        # a function call inside a *global initialiser* also reaches
        # depth 1, but a snapshot there would pair a pre-boot kernel
        # state with partially-initialised globals — unsound to resume.
        if subcall:
            interp.boundary_hook = boundary_hook
        while not sequence.done:
            recorder.current_call = sequence.call_index
            plan.checkpoints.append(
                BootCheckpoint(
                    call_index=sequence.call_index,
                    steps=interp.steps,
                    interp=interp.snapshot_state(),
                    machine=machine.snapshot(),
                    kernel=sequence.snapshot_state(),
                )
            )
            # The first depth-1 boundary of every call qualifies.
            throttle["floor"] = 0
            throttle["taken"] = 0
            sequence.step()

    plan.report = classifier(run, machine, interp)
    plan.first_step = {
        line: step for line, (step, _) in recorder.first_seen.items()
    }
    plan.first_call = {
        line: call for line, (_, call) in recorder.first_seen.items()
    }
    plan.unsafe_lines = _non_executable_lines(program)
    plan.switch_label_lines = _switch_label_lines(program)
    if subcall:
        plan.divergence_anchors = dict(interp._switch_anchors)
    return plan


def _switch_label_lines(program: CompiledProgram) -> frozenset:
    """Every line contributing tokens to a switch group label."""
    lines: set = set()

    def walk(stmt) -> None:
        if isinstance(stmt, ast.Switch):
            for group in stmt.groups:
                lines.update(group.origins)
                for inner in group.body:
                    walk(inner)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                walk(inner)
        elif isinstance(stmt, ast.If):
            walk(stmt.then)
            if stmt.otherwise is not None:
                walk(stmt.otherwise)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            walk(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                walk(stmt.init)
            walk(stmt.body)

    for decl in program.unit.decls:
        if isinstance(decl, ast.FuncDecl) and decl.body is not None:
            walk(decl.body)
    return frozenset(lines)


def _non_executable_lines(program: CompiledProgram) -> frozenset:
    """Lines contributing tokens to constructs outside statement coverage.

    A mutation on such a line can change program semantics without the
    line ever entering the coverage set at the moment of divergence
    (globals initialise during construction; struct/typedef and
    signature changes act at compile time), so resumption is barred.
    """
    lines: set = set()
    for decl in program.unit.decls:
        # FuncDecl origins span the signature tokens only (the body's
        # statements carry their own origins), which is exactly the
        # non-executable part of a definition.
        if isinstance(
            decl,
            (ast.FuncDecl, ast.GlobalDecl, ast.StructDef, ast.TypedefDecl),
        ):
            lines |= decl.origins
    return frozenset(lines)


def checkpoint_for_mutant(
    plan: CheckpointPlan, changed_lines
) -> BootCheckpoint | None:
    """Latest checkpoint provably before the mutant's first divergent step.

    ``changed_lines`` are the ``(file, line)`` pairs the mutant's text
    differs from the baseline on.  Returns ``None`` whenever divergence
    before any checkpoint cannot be ruled out — the caller cold-boots.

    Call-granularity plans map through the driver-call index of first
    coverage; sub-call plans bound the first divergent *step* — the
    line's first-coverage step, tightened by the switch-dispatch anchors
    — and pick the deepest checkpoint strictly before it.
    """
    if plan.granularity == "subcall":
        return _subcall_checkpoint_for_mutant(plan, changed_lines)
    earliest: int | None = None
    for line in changed_lines:
        if line in plan.unsafe_lines:
            return None
        if line in plan.switch_label_lines:
            # A label mutant can redirect a re-executed switch's
            # dispatch in an earlier call than the label's first
            # coverage; without recorded dispatch steps the call index
            # cannot bound that, so label lines cold-boot.
            return None
        call = plan.first_call.get(line)
        if call is None or call < 1:
            # Outside recorded coverage, first executed during
            # construction (-1), or during call 0: nothing to skip.
            return None
        earliest = call if earliest is None else min(earliest, call)
    if earliest is None or earliest >= len(plan.checkpoints):
        return None
    return plan.checkpoints[earliest]


def _subcall_checkpoint_for_mutant(
    plan: CheckpointPlan, changed_lines
) -> BootCheckpoint | None:
    divergence: int | None = None
    for line in changed_lines:
        if line in plan.unsafe_lines:
            return None
        step = plan.first_step.get(line)
        if step is None:
            # Outside recorded coverage (dead code in the clean boot).
            return None
        anchor = plan.divergence_anchors.get(line)
        if anchor is not None and anchor < step:
            step = anchor
        divergence = step if divergence is None else min(divergence, step)
    if divergence is None:
        return None
    best: BootCheckpoint | None = None
    for checkpoint in plan.checkpoints:  # ordered by steps
        if checkpoint.steps < divergence:
            best = checkpoint
        else:
            break
    return best


def resume_boot(
    program: CompiledProgram,
    checkpoint: BootCheckpoint,
    machine: Machine,
    step_budget: int,
    backend: str | None = None,
    harness_factory=None,
) -> BootReport:
    """Boot ``program`` from ``checkpoint``, classifying like a cold boot.

    The machine is overwritten with the checkpoint's device state; the
    interpreter is built for the (mutant) program, then its mutable
    state — steps, coverage, log, globals, synthetic addresses, and for
    sub-call checkpoints the in-flight frame's locals and re-entry
    position — is replaced by the checkpoint's, which equals the
    mutant's own state at that instant whenever
    :func:`checkpoint_for_mutant` offered the checkpoint.  Global
    initialisers are deliberately not re-run: their effects are part of
    the restored state.  A pending in-flight call is finished by the
    kernel context's re-entrant call sites on the first boot step.

    ``harness_factory`` must match the one the plan was recorded with
    (see :func:`record_plan`): the restored kernel state is interpreted
    by the sequence the factory builds.
    """
    interp_class = interpreter_for(backend or DEFAULT_BACKEND)
    interp = interp_class(
        program, machine.bus, step_budget=step_budget, defer_globals=True
    )
    machine.restore(checkpoint.machine)
    interp.restore_state(checkpoint.interp)
    if harness_factory is None:
        context = _KernelContext(interp)
        sequence = BootSequence(context, machine)
        classifier = classify_run
    else:
        sequence, classifier = harness_factory(interp, machine)
    sequence.restore_state(checkpoint.kernel)
    return classifier(sequence.run, machine, interp)


# -- portable plans -----------------------------------------------------------
#
# A recorded plan is pure data — machine/interpreter/kernel snapshots,
# first-execution maps, line sets — so it serialises whole.  Saving it
# lets the instrumented clean boot run *once* per campaign and ship to
# every shard of a distributed run (`repro.distributed`) instead of
# being re-recorded per process.

#: Container kind + payload schema revision for saved plans.  Bump the
#: version whenever `CheckpointPlan`/`BootCheckpoint`/snapshot layouts
#: change shape; `load_plan` refuses newer versions.
PLAN_KIND = "checkpoint-plan"
PLAN_FORMAT_VERSION = 1


class PlanError(ValueError):
    """A saved checkpoint plan is unusable for the requested campaign."""


def source_digest(source: str) -> str:
    """The fingerprint tying a plan to the exact baseline driver text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def plan_fingerprint(plan: CheckpointPlan, source: str, driver_filename: str) -> dict:
    """The identity a consumer must match before resuming from ``plan``."""
    return {
        "driver_filename": driver_filename,
        "source_sha256": source_digest(source),
        "granularity": plan.granularity,
        "step_budget": plan.step_budget,
    }


def save_plan(
    plan: CheckpointPlan, path, source: str, driver_filename: str
) -> dict:
    """Write ``plan`` to ``path`` in the versioned portable format.

    The file is self-describing: a header readable without
    deserialisation (:func:`read_plan_header`) carries the plan's
    fingerprint — driver file name, baseline source digest, granularity,
    recording step budget — plus payload counts.  The payload is a
    canonical pickle (`repro.serialize`), so saving the same plan twice
    produces identical bytes and a load → save cycle is byte-stable.
    Mutable campaign counters (``stats``) are zeroed in the saved copy.
    Returns the header written.
    """
    from repro.serialize import write_container

    header = plan_fingerprint(plan, source, driver_filename)
    header["plan_format"] = PLAN_FORMAT_VERSION
    header["backend"] = plan.backend
    header["checkpoints"] = len(plan.checkpoints)
    header["clean_steps"] = plan.clean_steps
    portable = replace(plan, stats=fresh_stats())
    write_container(path, PLAN_KIND, header, portable)
    return header


def read_plan_header(path) -> dict:
    """A saved plan's fingerprint header — no snapshot deserialisation."""
    from repro.serialize import read_header

    header = read_header(path, kind=PLAN_KIND)
    _check_plan_version(header, path)
    return header


def _check_plan_version(header: dict, path) -> None:
    version = header.get("plan_format")
    if version != PLAN_FORMAT_VERSION:
        raise PlanError(
            f"{path}: checkpoint-plan format {version!r} is not supported "
            f"(this reader supports {PLAN_FORMAT_VERSION})"
        )


def load_plan(
    path,
    source: str | None = None,
    driver_filename: str | None = None,
    granularity: str | None = None,
    step_budget: int | None = None,
) -> CheckpointPlan:
    """Load a saved plan, validating its fingerprint against the campaign.

    Every keyword given is checked against the file's header: ``source``
    must hash to the recorded baseline digest (a plan is only sound for
    the exact driver text it recorded), ``driver_filename`` /
    ``granularity`` / ``step_budget`` must match outright.  Mismatches
    raise :class:`PlanError` *before* the snapshot payload is touched.
    The returned plan carries fresh zeroed ``stats``.
    """
    from repro.serialize import read_container

    header = read_plan_header(path)
    expectations = []
    if source is not None:
        expectations.append(("source_sha256", source_digest(source)))
    if driver_filename is not None:
        expectations.append(("driver_filename", driver_filename))
    if granularity is not None:
        expectations.append(("granularity", granularity))
    if step_budget is not None:
        expectations.append(("step_budget", step_budget))
    for key, expected in expectations:
        found = header.get(key)
        if found != expected:
            raise PlanError(
                f"{path}: plan {key} is {found!r}, campaign requires "
                f"{expected!r} — re-record the plan for this campaign"
            )
    _, plan = read_container(path, kind=PLAN_KIND)
    if not isinstance(plan, CheckpointPlan):
        raise PlanError(f"{path}: payload is not a CheckpointPlan")
    plan.stats = fresh_stats()
    return plan


def changed_lines_of(site, replacement: str) -> tuple | None:
    """The (file, line) set a single-token mutant changes, or ``None``.

    Single-token rewrites never move line numbers; a replacement or
    original containing a newline would, so such mutants (none are
    currently generated) report ``None`` and cold-boot.
    """
    if "\n" in site.original or "\n" in replacement:
        return None
    return ((site.file, site.line),)
