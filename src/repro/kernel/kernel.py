"""The boot sequence.

The kernel side is trusted Python (mutations never touch it); the driver
side is mini-C.  Drivers implement the three-function ABI below; the boot
sequence then mirrors what a 2001 Linux kernel does between "ide: probing"
and "VFS: mounted root":

1. ``ide_init()`` — reset/probe/identify; returns the drive's sector count
   (negative = no drive);
2. read LBA 0 through ``ide_read``, parse the partition table;
3. read the superblock, walk the file table, verify every file checksum
   (the "mount");
4. bump the superblock mount count through ``ide_write`` and read it back
   — the one legitimate disk write of a boot, which is what gives write-
   path mutants the chance to destroy the disk, as two of the paper's
   mutants famously did.

Failures raise :class:`KernelPanic` (the paper's "Halt"); stray bus
accesses, watchdog expiry and Devil assertions surface as their own
outcome classes via the exception types of `repro.minic.errors`.
"""

from __future__ import annotations

import os
import zlib

from repro.hw.diskimage import (
    MBR_SIGNATURE,
    PARTITION_ENTRY_OFFSET,
    SECTOR_SIZE,
    SUPERBLOCK_MAGIC,
    bytes_to_words,
    words_to_bytes,
)
from repro.hw.machine import Machine
from repro.kernel.fsck import MOUNT_COUNT_OFFSET, fsck
from repro.kernel.outcomes import BootOutcome, BootReport
from repro.minic.ctypes import U16
from repro.minic.errors import (
    DevilAssertion,
    InterpreterBug,
    KernelPanic,
    MachineFault,
    StepBudgetExceeded,
)
from repro.minic.compile import interpreter_for
from repro.minic.interp import Interpreter
from repro.minic.program import CompiledProgram
from repro.minic.values import CArray, CPointer

#: Functions a boot-capable driver must define.
DRIVER_ABI = ("ide_init", "ide_read", "ide_write")

#: Default watchdog: generous against the ~60k-step clean boot.
DEFAULT_STEP_BUDGET = 1_500_000

#: Execution backend booted kernels run on.  "closure" is the lowered
#: fast path, "source" the Python-source-emitting codegen backend, and
#: "tree" the reference walker (`REPRO_MINIC_BACKEND` overrides, and
#: the equivalence + differential tests assert all three agree).
DEFAULT_BACKEND = os.environ.get("REPRO_MINIC_BACKEND", "closure")

MAX_FILES = 64


class _KernelContext:
    """Driver calls + sector marshalling for one boot.

    Every driver-call site is re-entrant: when the interpreter carries a
    restored in-flight call (a sub-call checkpoint landed *inside* the
    call), the site finishes that call via ``resume_in_flight`` instead
    of issuing a fresh one, recovering its own buffers from the call's
    restored arguments.  The kernel-side processing after the call is
    byte-identical either way.
    """

    def __init__(self, interp: Interpreter):
        self.interp = interp

    def _call_checked(self, name: str, *args) -> int:
        if self.interp.has_pending_resume():
            result = self._resume_checked(name)
        else:
            result = self.interp.call(name, *args)
        return int(result) if result is not None else 0

    def _resume_checked(self, name: str):
        self._check_pending(name)
        return self.interp.resume_in_flight()

    def _check_pending(self, name: str) -> None:
        pending = self.interp.pending_call_name()
        if pending != name:
            raise InterpreterBug(
                f"in-flight call is {pending!r}, kernel expected {name!r}"
            )

    def _pending_args_checked(self, name: str) -> list:
        self._check_pending(name)
        return self.interp.pending_resume_args()

    def init_driver(self) -> int:
        for name in DRIVER_ABI:
            if not self.interp.has_function(name):
                raise KernelPanic(f"ide: driver lacks required entry {name!r}")
        return self._call_checked("ide_init")

    #: Sector buffers carry slack: a driver overrunning by a few words
    #: scribbles adjacent kernel memory (silently, as on real hardware)
    #: instead of faulting; only a far overrun crashes.
    BUFFER_SLACK = 256

    def read_sector(self, lba: int) -> bytes:
        if self.interp.has_pending_resume():
            # Mid-call re-entry: the buffer is the restored original
            # argument — the array the in-flight frame writes through.
            array = self._pending_args_checked("ide_read")[1].array
            status = self._call_checked("ide_read")
        else:
            array = CArray.zeroed(U16, 256 + self.BUFFER_SLACK)
            status = self._call_checked(
                "ide_read", lba, CPointer(array, 0), 256
            )
        if status != 0:
            raise KernelPanic(f"ide: read error {status} at sector {lba}")
        # words_to_bytes masks each word (raising on non-ints exactly as
        # int() would), so no separate conversion pass is needed.
        return words_to_bytes(array.values[:256])

    def write_sector(self, lba: int, data: bytes) -> None:
        if self.interp.has_pending_resume():
            status = self._call_checked("ide_write")
        else:
            words = bytes_to_words(data) + [0] * self.BUFFER_SLACK
            array = CArray(U16, words)
            status = self._call_checked(
                "ide_write", lba, CPointer(array, 0), 256
            )
        if status != 0:
            raise KernelPanic(f"ide: write error {status} at sector {lba}")


def boot(
    program: CompiledProgram,
    machine: Machine,
    step_budget: int = DEFAULT_STEP_BUDGET,
    backend: str | None = None,
) -> BootReport:
    """Boot a compiled driver program on a machine and classify the run."""
    interp_class = interpreter_for(backend or DEFAULT_BACKEND)
    # Constructed outside the classified region (so every handler has a
    # live interpreter to report from) with global initialisation
    # deferred *into* it: initialiser expressions execute for real, and
    # a fault there classifies like any other run-time event.
    interp = interp_class(
        program, machine.bus, step_budget=step_budget, defer_globals=True
    )
    context = _KernelContext(interp)
    sequence = BootSequence(context, machine)

    def run() -> None:
        interp.initialize_globals()
        sequence.run()

    return classify_run(run, machine, interp)


def classify_run(run, machine: Machine, interp: Interpreter) -> BootReport:
    """Execute ``run`` and map its exceptions to the paper's outcomes."""
    mounted = False
    try:
        run()
        mounted = True
    except DevilAssertion as event:
        return _report(BootOutcome.RUN_TIME_CHECK, str(event), machine, interp)
    except KernelPanic as event:
        return _report(BootOutcome.HALT, str(event), machine, interp)
    except MachineFault as event:
        return _report(BootOutcome.CRASH, str(event), machine, interp)
    except StepBudgetExceeded as event:
        return _report(BootOutcome.INFINITE_LOOP, str(event), machine, interp)

    check = fsck(machine, mounted=mounted)
    if check.damaged:
        return _report(BootOutcome.DAMAGED_BOOT, check.detail, machine, interp)
    return _report(BootOutcome.BOOT, "clean boot", machine, interp)


def _report(
    outcome: BootOutcome, detail: str, machine: Machine, interp: Interpreter
) -> BootReport:
    return BootReport(
        outcome=outcome,
        detail=detail,
        steps=interp.steps,
        coverage=set(interp.coverage),
        log=list(interp.log),
        disk_diff=machine.disk_diff(),
    )


class BootSequence:
    """The boot sequence as a resumable, call-indexed state machine.

    Each :meth:`step` performs exactly one driver call followed by all
    trusted-kernel processing up to (but not including) the next driver
    call — identical operation order to the historical straight-line
    sequence.  Between steps the kernel-side state is a handful of plain
    values, so the checkpointing subsystem can capture it before call
    *k* and re-enter the sequence there: :meth:`snapshot_state` /
    :meth:`restore_state` round-trip everything, including the parsed
    MBR geometry, the superblock bytes and mid-file-table progress.
    """

    #: Kernel-side fields captured by ``snapshot_state`` (all immutable
    #: or copied values).
    _STATE_FIELDS = (
        "call_index",
        "phase",
        "sectors",
        "part_start",
        "part_size",
        "superblock",
        "file_count",
        "file_index",
        "file_offset",
        "file_start",
        "file_length",
        "file_crc",
        "file_sector",
    )

    def __init__(self, context: _KernelContext, machine: Machine):
        self.context = context
        self.machine = machine
        self.call_index = 0  # index of the *next* driver call
        self.phase = "init"
        self.sectors = 0
        self.part_start = 0
        self.part_size = 0
        self.superblock = b""
        self.file_count = 0
        self.file_index = 0
        self.file_offset = 0
        self.file_start = 0
        self.file_length = 0
        self.file_crc = 0
        self.file_sector = 0
        self.content = bytearray()

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        state = {name: getattr(self, name) for name in self._STATE_FIELDS}
        state["content"] = bytes(self.content)
        return state

    def restore_state(self, state: dict) -> None:
        for name in self._STATE_FIELDS:
            setattr(self, name, state[name])
        self.content = bytearray(state["content"])

    # -- driving -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.phase == "done"

    def run(self) -> None:
        while self.phase != "done":
            self.step()

    def step(self) -> None:
        """One driver call plus the pure processing that follows it."""
        phase = self.phase
        if phase == "init":
            self._step_init()
        elif phase == "mbr":
            self._step_mbr()
        elif phase == "superblock":
            self._step_superblock()
        elif phase == "file":
            self._step_file()
        elif phase == "writeback":
            self._step_writeback()
        else:
            raise KernelPanic(f"boot sequence re-entered in phase {phase!r}")
        self.call_index += 1

    # -- the steps ---------------------------------------------------------

    def _step_init(self) -> None:
        self.sectors = self.context.init_driver()
        if self.sectors <= 0:
            raise KernelPanic(
                f"ide: no drive found (init returned {self.sectors})"
            )
        self.phase = "mbr"

    def _step_mbr(self) -> None:
        # Partition scan.
        mbr = self.context.read_sector(0)
        if mbr[510] | (mbr[511] << 8) != MBR_SIGNATURE:
            raise KernelPanic("ide: invalid partition table")
        entry = PARTITION_ENTRY_OFFSET
        self.part_start = int.from_bytes(mbr[entry + 8 : entry + 12], "little")
        self.part_size = int.from_bytes(mbr[entry + 12 : entry + 16], "little")
        if self.part_start == 0 or self.part_size == 0:
            raise KernelPanic("ide: empty partition table")
        if self.part_start + self.part_size > self.sectors:
            raise KernelPanic("ide: partition exceeds reported drive capacity")
        self.phase = "superblock"

    def _step_superblock(self) -> None:
        # Mount: superblock, then begin the file-table walk.
        superblock = self.context.read_sector(self.part_start)
        if superblock[0:4] != SUPERBLOCK_MAGIC:
            raise KernelPanic(
                "VFS: unable to mount root fs (bad superblock magic)"
            )
        self.superblock = superblock
        self.file_count = int.from_bytes(superblock[8:12], "little")
        if not 0 < self.file_count <= MAX_FILES:
            raise KernelPanic(
                "VFS: unable to mount root fs (corrupt file table)"
            )
        self.file_index = 0
        self.file_offset = 16
        self._begin_file()
        self.phase = "file"

    def _begin_file(self) -> None:
        """Parse and validate the current file's extent (pure kernel work)."""
        offset = self.file_offset
        superblock = self.superblock
        self.file_start = int.from_bytes(superblock[offset : offset + 4], "little")
        self.file_length = int.from_bytes(
            superblock[offset + 4 : offset + 8], "little"
        )
        self.file_crc = int.from_bytes(
            superblock[offset + 8 : offset + 12], "little"
        )
        self.file_offset = offset + 12
        if self.file_length == 0 or self.file_length > 64:
            raise KernelPanic(f"RFS: file {self.file_index} has corrupt extent")
        self.content = bytearray()
        self.file_sector = 0

    def _step_file(self) -> None:
        # Mount: verify every file's checksum, one sector per step.
        self.content.extend(
            self.context.read_sector(self.file_start + self.file_sector)
        )
        self.file_sector += 1
        if self.file_sector < self.file_length:
            return
        if zlib.crc32(bytes(self.content)) & 0xFFFFFFFF != self.file_crc:
            raise KernelPanic(f"RFS: checksum error in file {self.file_index}")
        self.file_index += 1
        if self.file_index < self.file_count:
            self._begin_file()
            return
        self.phase = "writeback"

    def _step_writeback(self) -> None:
        # Mount write-back: bump the mount count.  Deliberately *not*
        # read back and verified — a real mount doesn't, and this is the
        # window through which write-path mutants damage the disk
        # undetected, as the paper's two disk-destroying mutants did.
        superblock = self.superblock
        updated = bytearray(superblock)
        count = int.from_bytes(
            superblock[MOUNT_COUNT_OFFSET : MOUNT_COUNT_OFFSET + 4], "little"
        )
        updated[MOUNT_COUNT_OFFSET : MOUNT_COUNT_OFFSET + 4] = (
            count + 1
        ).to_bytes(4, "little")
        self.context.write_sector(self.part_start, bytes(updated))
        self.phase = "done"


def _boot_sequence(context: _KernelContext, machine: Machine) -> None:
    """Straight-line boot (historical entry point; tests exercise it)."""
    BootSequence(context, machine).run()
