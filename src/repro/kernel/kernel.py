"""The boot sequence.

The kernel side is trusted Python (mutations never touch it); the driver
side is mini-C.  Drivers implement the three-function ABI below; the boot
sequence then mirrors what a 2001 Linux kernel does between "ide: probing"
and "VFS: mounted root":

1. ``ide_init()`` — reset/probe/identify; returns the drive's sector count
   (negative = no drive);
2. read LBA 0 through ``ide_read``, parse the partition table;
3. read the superblock, walk the file table, verify every file checksum
   (the "mount");
4. bump the superblock mount count through ``ide_write`` and read it back
   — the one legitimate disk write of a boot, which is what gives write-
   path mutants the chance to destroy the disk, as two of the paper's
   mutants famously did.

Failures raise :class:`KernelPanic` (the paper's "Halt"); stray bus
accesses, watchdog expiry and Devil assertions surface as their own
outcome classes via the exception types of `repro.minic.errors`.
"""

from __future__ import annotations

import os
import zlib

from repro.hw.diskimage import (
    MBR_SIGNATURE,
    PARTITION_ENTRY_OFFSET,
    SECTOR_SIZE,
    SUPERBLOCK_MAGIC,
    bytes_to_words,
    words_to_bytes,
)
from repro.hw.machine import Machine
from repro.kernel.fsck import MOUNT_COUNT_OFFSET, fsck
from repro.kernel.outcomes import BootOutcome, BootReport
from repro.minic.ctypes import U16
from repro.minic.errors import (
    DevilAssertion,
    KernelPanic,
    MachineFault,
    StepBudgetExceeded,
)
from repro.minic.compile import interpreter_for
from repro.minic.interp import Interpreter
from repro.minic.program import CompiledProgram
from repro.minic.values import CArray, CPointer

#: Functions a boot-capable driver must define.
DRIVER_ABI = ("ide_init", "ide_read", "ide_write")

#: Default watchdog: generous against the ~60k-step clean boot.
DEFAULT_STEP_BUDGET = 1_500_000

#: Execution backend booted kernels run on.  "closure" is the lowered
#: fast path, "source" the Python-source-emitting codegen backend, and
#: "tree" the reference walker (`REPRO_MINIC_BACKEND` overrides, and
#: the equivalence + differential tests assert all three agree).
DEFAULT_BACKEND = os.environ.get("REPRO_MINIC_BACKEND", "closure")

MAX_FILES = 64


class _KernelContext:
    """Driver calls + sector marshalling for one boot."""

    def __init__(self, interp: Interpreter):
        self.interp = interp

    def _call_checked(self, name: str, *args) -> int:
        result = self.interp.call(name, *args)
        return int(result) if result is not None else 0

    def init_driver(self) -> int:
        for name in DRIVER_ABI:
            if not self.interp.has_function(name):
                raise KernelPanic(f"ide: driver lacks required entry {name!r}")
        return self._call_checked("ide_init")

    #: Sector buffers carry slack: a driver overrunning by a few words
    #: scribbles adjacent kernel memory (silently, as on real hardware)
    #: instead of faulting; only a far overrun crashes.
    BUFFER_SLACK = 256

    def read_sector(self, lba: int) -> bytes:
        array = CArray.zeroed(U16, 256 + self.BUFFER_SLACK)
        status = self._call_checked("ide_read", lba, CPointer(array, 0), 256)
        if status != 0:
            raise KernelPanic(f"ide: read error {status} at sector {lba}")
        # words_to_bytes masks each word (raising on non-ints exactly as
        # int() would), so no separate conversion pass is needed.
        return words_to_bytes(array.values[:256])

    def write_sector(self, lba: int, data: bytes) -> None:
        words = bytes_to_words(data) + [0] * self.BUFFER_SLACK
        array = CArray(U16, words)
        status = self._call_checked("ide_write", lba, CPointer(array, 0), 256)
        if status != 0:
            raise KernelPanic(f"ide: write error {status} at sector {lba}")


def boot(
    program: CompiledProgram,
    machine: Machine,
    step_budget: int = DEFAULT_STEP_BUDGET,
    backend: str | None = None,
) -> BootReport:
    """Boot a compiled driver program on a machine and classify the run."""
    interp_class = interpreter_for(backend or DEFAULT_BACKEND)
    mounted = False
    try:
        interp = interp_class(program, machine.bus, step_budget=step_budget)
        context = _KernelContext(interp)
        _boot_sequence(context, machine)
        mounted = True
    except DevilAssertion as event:
        return _report(BootOutcome.RUN_TIME_CHECK, str(event), machine, interp)
    except KernelPanic as event:
        return _report(BootOutcome.HALT, str(event), machine, interp)
    except MachineFault as event:
        return _report(BootOutcome.CRASH, str(event), machine, interp)
    except StepBudgetExceeded as event:
        return _report(BootOutcome.INFINITE_LOOP, str(event), machine, interp)

    check = fsck(machine, mounted=mounted)
    if check.damaged:
        return _report(BootOutcome.DAMAGED_BOOT, check.detail, machine, interp)
    return _report(BootOutcome.BOOT, "clean boot", machine, interp)


def _report(
    outcome: BootOutcome, detail: str, machine: Machine, interp: Interpreter
) -> BootReport:
    return BootReport(
        outcome=outcome,
        detail=detail,
        steps=interp.steps,
        coverage=set(interp.coverage),
        log=list(interp.log),
        disk_diff=machine.disk_diff(),
    )


def _boot_sequence(context: _KernelContext, machine: Machine) -> None:
    sectors = context.init_driver()
    if sectors <= 0:
        raise KernelPanic(f"ide: no drive found (init returned {sectors})")

    # Partition scan.
    mbr = context.read_sector(0)
    if mbr[510] | (mbr[511] << 8) != MBR_SIGNATURE:
        raise KernelPanic("ide: invalid partition table")
    entry = PARTITION_ENTRY_OFFSET
    part_start = int.from_bytes(mbr[entry + 8 : entry + 12], "little")
    part_size = int.from_bytes(mbr[entry + 12 : entry + 16], "little")
    if part_start == 0 or part_size == 0:
        raise KernelPanic("ide: empty partition table")
    if part_start + part_size > sectors:
        raise KernelPanic("ide: partition exceeds reported drive capacity")

    # Mount: superblock.
    superblock = context.read_sector(part_start)
    if superblock[0:4] != SUPERBLOCK_MAGIC:
        raise KernelPanic("VFS: unable to mount root fs (bad superblock magic)")
    file_count = int.from_bytes(superblock[8:12], "little")
    if not 0 < file_count <= MAX_FILES:
        raise KernelPanic("VFS: unable to mount root fs (corrupt file table)")

    # Mount: verify every file's checksum.
    offset = 16
    for index in range(file_count):
        start = int.from_bytes(superblock[offset : offset + 4], "little")
        length = int.from_bytes(superblock[offset + 4 : offset + 8], "little")
        expected_crc = int.from_bytes(superblock[offset + 8 : offset + 12], "little")
        offset += 12
        if length == 0 or length > 64:
            raise KernelPanic(f"RFS: file {index} has corrupt extent")
        content = bytearray()
        for sector in range(start, start + length):
            content.extend(context.read_sector(sector))
        if zlib.crc32(bytes(content)) & 0xFFFFFFFF != expected_crc:
            raise KernelPanic(f"RFS: checksum error in file {index}")

    # Mount write-back: bump the mount count.  Deliberately *not* read
    # back and verified — a real mount doesn't, and this is the window
    # through which write-path mutants damage the disk undetected, as the
    # paper's two disk-destroying mutants did.
    updated = bytearray(superblock)
    count = int.from_bytes(
        superblock[MOUNT_COUNT_OFFSET : MOUNT_COUNT_OFFSET + 4], "little"
    )
    updated[MOUNT_COUNT_OFFSET : MOUNT_COUNT_OFFSET + 4] = (count + 1).to_bytes(
        4, "little"
    )
    context.write_sector(part_start, bytes(updated))
