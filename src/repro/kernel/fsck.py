"""Post-boot damage assessment.

After a completed boot the harness compares the disk against its boot-time
snapshot.  The only legitimate difference is the superblock mount-count
bump the kernel itself performs; anything else is the paper's "Damaged
boot" — the class whose worst members forced the authors to reformat
their disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.diskimage import (
    DiskImage,
    MBR_SIGNATURE,
    PARTITION_ENTRY_OFFSET,
    SUPERBLOCK_MAGIC,
)
from repro.hw.machine import Machine

MOUNT_COUNT_OFFSET = 12


@dataclass
class FsckResult:
    damaged: bool
    detail: str = ""
    dirty_lbas: list[int] = field(default_factory=list)


def partition_start(disk: DiskImage) -> int | None:
    """Parse the MBR for the first partition's start LBA."""
    mbr = disk.read_sector(0)
    if mbr[510] | (mbr[511] << 8) != MBR_SIGNATURE:
        return None
    entry = PARTITION_ENTRY_OFFSET
    return int.from_bytes(mbr[entry + 8 : entry + 12], "little")


def read_mount_count(disk: DiskImage) -> int | None:
    start = partition_start(disk)
    if start is None or start >= disk.sector_count:
        return None
    superblock = disk.read_sector(start)
    if superblock[0:4] != SUPERBLOCK_MAGIC:
        return None
    return int.from_bytes(
        superblock[MOUNT_COUNT_OFFSET : MOUNT_COUNT_OFFSET + 4], "little"
    )


def fsck(machine: Machine, mounted: bool = True) -> FsckResult:
    """Compare the disk with its snapshot, tolerating only the mount bump.

    ``mounted=False`` (boot failed before the mount-count update) demands
    a byte-identical disk.
    """
    if machine.disk is None or machine.pristine_disk is None:
        return FsckResult(damaged=False, detail="no disk attached")

    diff = machine.disk_diff()
    if not diff:
        # A silently-dropped mount-count update is *not* visible damage —
        # it is exactly the kind of latent bug the paper's "Boot" class
        # captures.
        return FsckResult(damaged=False)

    start = partition_start(machine.pristine_disk)
    if not mounted or start is None:
        return FsckResult(
            damaged=True,
            detail=f"{len(diff)} sector(s) altered",
            dirty_lbas=diff,
        )

    if diff != [start]:
        return FsckResult(
            damaged=True,
            detail=f"{len(diff)} sector(s) altered beyond the superblock",
            dirty_lbas=[lba for lba in diff if lba != start],
        )

    before = machine.pristine_disk.read_sector(start)
    after = machine.disk.read_sector(start)
    expected = bytearray(before)
    count = int.from_bytes(
        before[MOUNT_COUNT_OFFSET : MOUNT_COUNT_OFFSET + 4], "little"
    )
    expected[MOUNT_COUNT_OFFSET : MOUNT_COUNT_OFFSET + 4] = (count + 1).to_bytes(
        4, "little"
    )
    if after != bytes(expected):
        return FsckResult(
            damaged=True,
            detail="superblock altered beyond the mount count",
            dirty_lbas=[start],
        )
    return FsckResult(damaged=False)
