"""Simulated Linux boot harness (paper §4.2).

Boots a compiled driver program on a :class:`~repro.hw.machine.Machine`:
runs the driver's initialisation, reads the partition table, mounts the
toy root filesystem (checksummed), updates the superblock mount count, and
classifies the run into the paper's outcome classes.
"""

from repro.kernel.outcomes import BootOutcome, BootReport
from repro.kernel.kernel import DRIVER_ABI, boot
from repro.kernel.fsck import FsckResult, fsck

__all__ = ["BootOutcome", "BootReport", "DRIVER_ABI", "FsckResult", "boot", "fsck"]
