"""Bundled Devil device specifications.

Five devices, matching Table 2 of the paper: the Logitech busmouse
(Figure 3 verbatim), an Intel 82371FB PCI IDE bus master, an Intel PIIX4
IDE disk controller, an NE2000 (ns8390) Ethernet controller and a 3Dlabs
Permedia 2 graphics card.
"""

from __future__ import annotations

import importlib.resources

#: Spec registry: name → (resource file, device identifier).
SPEC_FILES = {
    "logitech_busmouse": "logitech_busmouse.dil",
    "pci_82371fb": "pci_82371fb.dil",
    "ide_piix4": "ide_piix4.dil",
    "ne2000": "ne2000.dil",
    "permedia2": "permedia2.dil",
}

#: Display names used by the Table 2 harness, in the paper's row order.
PAPER_NAMES = {
    "logitech_busmouse": "Logitech Busmouse",
    "pci_82371fb": "PCI Bus Master (Intel 82371FB)",
    "ide_piix4": "IDE (Intel PIIX4)",
    "ne2000": "Ethernet NE2000 (ns8390)",
    "permedia2": "Graphic card (Permedia 2)",
}


def spec_names() -> list[str]:
    """All bundled spec names, in the paper's Table 2 order."""
    return list(SPEC_FILES)


def load_spec_source(name: str) -> str:
    """Source text of a bundled spec."""
    try:
        filename = SPEC_FILES[name]
    except KeyError:
        raise KeyError(
            f"unknown spec {name!r}; available: {', '.join(SPEC_FILES)}"
        ) from None
    resource = importlib.resources.files(__package__).joinpath(filename)
    return resource.read_text(encoding="utf-8")
