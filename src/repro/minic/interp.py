"""Tree-walking interpreter for mini-C.

The machine the paper boots mutant kernels on.  Responsibilities:

* faithful C integer semantics (width/signedness wrap, usual arithmetic
  conversions, truncating division, short-circuit logic);
* the watchdog: a step budget whose exhaustion the kernel harness maps to
  the paper's "Infinite loop" outcome;
* statement coverage (union of executed statements' ``origins``), feeding
  the "Dead code" classification;
* port I/O routed to a bus object (`repro.hw.bus.IOBus`); a bus fault is a
  :class:`~repro.minic.errors.MachineFault`, the paper's "Crash".
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass

from repro.minic import ast
from repro.minic.builtins import BUILTIN_IMPLS
from repro.minic.sema import BUILTIN_SIGNATURES
from repro.minic.ctypes import (
    ArrayType,
    CType,
    IntCType,
    PointerType,
    S32,
    StructType,
    U32,
    VOID,
    usual_arithmetic,
)
from repro.minic.errors import InterpreterBug, MachineFault, StepBudgetExceeded
from repro.minic.program import CompiledProgram
from repro.minic.values import CArray, CPointer, CStructValue


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


@dataclass(frozen=True)
class InterpreterSnapshot:
    """All mutable interpreter state at a snapshot-safe point.

    Value state (``globals`` plus the synthetic-address anchors) is
    deep-copied *into* the snapshot when taken and *out of* it on every
    restore, so neither the source interpreter nor any number of resumed
    runs can alias each other's arrays or structs.  Snapshots transfer
    between backends: the tree, closure, source and hybrid interpreters
    keep all run state in the same base attributes.

    Safe points are function-call boundaries (``frames`` empty) and, for
    interpreters that track a statement path (the checkpoint recorder),
    statement boundaries inside a depth-1 call: ``frames`` then carries
    the active call's scope chain and ``resume`` the re-entry position
    consumed by :meth:`Interpreter.resume_in_flight`.
    """

    steps: int
    time_us: int
    log: tuple[str, ...]
    coverage: frozenset
    globals: dict
    #: ``(value, synthetic address)`` pairs in ``address_of`` assignment
    #: order; values share identity with the ``globals`` graph via the
    #: snapshot's copy memo.
    anchors: tuple
    #: Active call frames (outermost first), each a tuple of scope dicts;
    #: empty at a call boundary.  Values share the snapshot's copy memo,
    #: so locals aliasing globals (or each other) stay aliased.
    frames: tuple = ()
    #: ``(function name, statement path, call arguments)`` re-entry
    #: record for the in-flight call, or ``None`` at a call boundary.
    #: The path is a tuple of markers addressing the statement about to
    #: execute (see ``Interpreter._resume_stmt``).
    resume: tuple | None = None


def _snapshot_copy(value, memo: dict):
    """Deep copy of a mini-C value graph, aliasing preserved via ``memo``.

    Equivalent to ``copy.deepcopy`` for the types interpreter state can
    hold — which is what snapshot/restore cost per resumed boot — minus
    the generic dispatch: integer-element array payloads copy as one
    list slice instead of element-wise (mini-C arrays only ever hold
    pre-wrapped plain ints; see `repro.minic.values`).  The memo speaks
    ``copy.deepcopy``'s id-keyed protocol, and unknown types fall back
    to it with the same memo.
    """
    cls = value.__class__
    if cls in (int, str, bool, bytes, type(None)):
        return value
    key = id(value)
    hit = memo.get(key)
    if hit is not None:
        return hit
    if cls is CArray:
        if isinstance(value.element, IntCType):
            copied = CArray(value.element, list(value.values))
        else:  # pragma: no cover - int elements are the only kind built
            copied = CArray(
                value.element,
                [_snapshot_copy(item, memo) for item in value.values],
            )
        memo[key] = copied
        return copied
    if cls is CPointer:
        copied = CPointer(_snapshot_copy(value.array, memo), value.offset)
        memo[key] = copied
        return copied
    if cls is CStructValue:
        copied = CStructValue(value.struct_name)
        memo[key] = copied
        copied.fields = {
            name: _snapshot_copy(item, memo)
            for name, item in value.fields.items()
        }
        return copied
    if cls is dict:
        copied = {}
        memo[key] = copied
        for name, item in value.items():
            copied[name] = _snapshot_copy(item, memo)
        return copied
    if cls is list:
        copied = []
        memo[key] = copied
        copied.extend(_snapshot_copy(item, memo) for item in value)
        return copied
    if cls is tuple:
        copied = tuple(_snapshot_copy(item, memo) for item in value)
        memo[key] = copied
        return copied
    return copy.deepcopy(value, memo)


class _NullBus:
    """Default bus: every access faults (no devices present)."""

    def read_port(self, address: int, size: int) -> int:
        raise MachineFault(f"bus fault: read of unclaimed port {address:#x}")

    def write_port(self, address: int, value: int, size: int) -> None:
        raise MachineFault(f"bus fault: write of unclaimed port {address:#x}")


class Interpreter:
    """Execute a compiled program against a bus.

    ``step_budget`` bounds total execution; ``call`` raises
    :class:`StepBudgetExceeded` when it runs out.
    """

    def __init__(
        self,
        program: CompiledProgram,
        bus=None,
        step_budget: int = 2_000_000,
        defer_globals: bool = False,
    ):
        self.program = program
        self.bus = bus if bus is not None else _NullBus()
        self.step_budget = step_budget
        self.steps = 0
        self.time_us = 0
        self.log: list[str] = []
        self.coverage: set[tuple[str, int]] = set()
        self.globals: dict[str, object] = {}
        self._scopes: list[list[dict[str, object]]] = []
        self._functions = {
            decl.name: decl
            for decl in program.unit.decls
            if isinstance(decl, ast.FuncDecl) and decl.body is not None
        }
        # Synthetic "kernel addresses" for pointer values converted to
        # integers (a warning, not an error, in the paper's era — the
        # mutant runs with a wild-looking but deterministic value).
        self._addresses: dict[int, int] = {}
        self._address_keepalive: list[object] = []
        self._globals_ready = False
        #: ``(name, path, args)`` of a restored in-flight call awaiting
        #: :meth:`resume_in_flight`; ``None`` otherwise.
        self._pending_resume: tuple | None = None
        if not defer_globals:
            self.initialize_globals()

    def initialize_globals(self) -> None:
        """Run global initialisers (idempotent).

        ``defer_globals=True`` lets a harness construct the interpreter
        first and run this *inside* its exception classification, since
        initialiser expressions execute for real (consuming steps and
        possibly faulting, exactly like any other evaluation).
        """
        if not self._globals_ready:
            self._globals_ready = True
            self._init_globals()

    # -- checkpointing ------------------------------------------------------

    def _resume_position(self) -> tuple | None:
        """``(name, path, args)`` describing the in-flight call, if known.

        The base interpreter only knows a position while a restored
        in-flight call is still pending (re-snapshot before resuming);
        the checkpoint recorder overrides this with its live statement
        path.
        """
        return self._pending_resume

    def snapshot_state(self) -> InterpreterSnapshot:
        """Capture all mutable state at a snapshot-safe point.

        Safe points are call boundaries (no active frames) and, when the
        interpreter knows its statement position (`_resume_position`),
        statement boundaries inside a single active call.
        """
        frames: tuple = ()
        resume = None
        if self._scopes:
            position = self._resume_position()
            if position is None or len(self._scopes) != 1:
                raise InterpreterBug(
                    "interpreter snapshot taken inside an active call"
                )
        memo: dict = {}
        globals_copy = _snapshot_copy(self.globals, memo)
        if self._scopes:
            name, path, args = position
            frames = tuple(
                tuple(_snapshot_copy(scope, memo) for scope in frame)
                for frame in self._scopes
            )
            resume = (name, path, tuple(_snapshot_copy(args, memo)))
        anchors = []
        for value in self._address_keepalive:
            key = value.array if isinstance(value, CPointer) else value
            anchors.append(
                (_snapshot_copy(value, memo), self._addresses[id(key)])
            )
        return InterpreterSnapshot(
            steps=self.steps,
            time_us=self.time_us,
            log=tuple(self.log),
            coverage=frozenset(self.coverage),
            globals=globals_copy,
            anchors=tuple(anchors),
            frames=frames,
            resume=resume,
        )

    def restore_state(self, snapshot: InterpreterSnapshot) -> None:
        """Reinstate a :meth:`snapshot_state` capture (fresh value copies)."""
        memo: dict = {}
        self.globals = _snapshot_copy(snapshot.globals, memo)
        scopes: list[list[dict[str, object]]] = []
        pending = None
        if snapshot.frames:
            scopes = [
                [_snapshot_copy(scope, memo) for scope in frame]
                for frame in snapshot.frames
            ]
            name, path, args = snapshot.resume
            pending = (name, path, list(_snapshot_copy(args, memo)))
        addresses: dict[int, int] = {}
        keepalive: list[object] = []
        for value, address in snapshot.anchors:
            copied = _snapshot_copy(value, memo)
            key = copied.array if isinstance(copied, CPointer) else copied
            addresses[id(key)] = address
            keepalive.append(copied)
        self._addresses = addresses
        self._address_keepalive = keepalive
        self.steps = snapshot.steps
        self.time_us = snapshot.time_us
        self.log = list(snapshot.log)
        self.coverage = set(snapshot.coverage)
        self._scopes = scopes
        self._pending_resume = pending
        self._globals_ready = True

    # -- mid-call re-entry ---------------------------------------------------

    def has_pending_resume(self) -> bool:
        return self._pending_resume is not None

    def pending_call_name(self) -> str:
        assert self._pending_resume is not None
        return self._pending_resume[0]

    def pending_resume_args(self) -> list:
        """The in-flight call's original arguments (restored identities).

        These are the deep-copied originals of the objects the caller
        passed in — a ``CPointer`` argument still references the exact
        array the restored frame writes through, so a harness can read
        call results out of its own buffers after :meth:`resume_in_flight`.
        """
        assert self._pending_resume is not None
        return self._pending_resume[2]

    def resume_in_flight(self):
        """Finish the restored in-flight call from its recorded position.

        The restored frame already holds the call's locals; the recorded
        statement path addresses the statement that was *about to*
        execute when the snapshot was taken, so execution continues with
        that statement's own step/coverage accounting — no call-entry
        step, argument coercion or stack-depth check is repeated.  The
        resumed statements run on the inherited tree-walking machinery;
        fresh nested calls dispatch through ``_call_function``, which the
        compiled backends override with their fast paths.
        """
        pending = self._pending_resume
        if pending is None:
            raise InterpreterBug("resume_in_flight without a pending call")
        if len(self._scopes) != 1:
            raise InterpreterBug("pending resume with unexpected frame depth")
        self._pending_resume = None
        name, path, _ = pending
        decl = self._functions.get(name)
        if decl is None:
            raise InterpreterBug(f"no function {name!r} in program")
        try:
            assert decl.body is not None
            self._resume_stmt(decl.body, path)
            result = None
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            self._scopes.pop()
        assert decl.return_type is not None
        if isinstance(decl.return_type, type(VOID)):
            return None
        return self._coerce(result if result is not None else 0, decl.return_type)

    def _exec_resumed(self, stmt: ast.Stmt) -> None:
        """Execute a fresh statement reached by an in-flight resume.

        The base walker just executes it; compiled backends override
        with their lowered statement bodies, so a resumed boot's
        remaining work — including a mutant's budget-burning loop —
        runs at backend speed.
        """
        self._exec(stmt)

    def _resume_stmt(self, stmt: ast.Stmt, path: tuple) -> None:
        """Descend ``path`` into ``stmt`` and continue execution from there.

        An empty path means ``stmt`` is the statement the snapshot was
        taken in front of: it executes fresh (entry step and coverage
        included).  Otherwise the head marker selects the child position
        inside ``stmt`` — whose own entry accounting already happened in
        the recorded prefix — and each construct's *continuation* after
        the resumed child mirrors the corresponding ``_exec_*`` loop
        exactly.  Scopes on the path were restored with the frame, so
        the descent only pops them on the way out.
        """
        if not path:
            self._exec_resumed(stmt)
            return
        marker, rest = path[0], path[1:]
        kind = marker[0]
        if kind == "block":
            assert isinstance(stmt, ast.Block)
            self._resume_block(stmt, marker[1], bool(marker[2]), rest)
        elif kind == "then":
            assert isinstance(stmt, ast.If) and stmt.then is not None
            self._resume_stmt(stmt.then, rest)
        elif kind == "else":
            assert isinstance(stmt, ast.If) and stmt.otherwise is not None
            self._resume_stmt(stmt.otherwise, rest)
        elif kind == "while":
            assert isinstance(stmt, ast.While)
            self._resume_while(stmt, rest)
        elif kind == "dowhile":
            assert isinstance(stmt, ast.DoWhile)
            self._resume_do_while(stmt, rest)
        elif kind in ("for-init", "for-body"):
            assert isinstance(stmt, ast.For)
            self._resume_for(stmt, kind == "for-init", rest)
        elif kind == "switch":
            assert isinstance(stmt, ast.Switch)
            self._resume_switch(stmt, marker[1], marker[2], rest)
        else:
            raise InterpreterBug(f"unhandled resume marker {marker!r}")

    def _resume_block(
        self, block: ast.Block, index: int, new_scope: bool, rest: tuple
    ) -> None:
        try:
            self._resume_stmt(block.statements[index], rest)
            for stmt in block.statements[index + 1 :]:
                self._exec_resumed(stmt)
        finally:
            if new_scope:
                self._pop_scope()

    def _resume_while(self, stmt: ast.While, rest: tuple) -> None:
        assert stmt.cond is not None and stmt.body is not None
        try:
            self._resume_stmt(stmt.body, rest)
        except _BreakSignal:
            return
        except _ContinueSignal:
            pass
        while True:
            self.consume_steps(1)
            self.coverage.update(stmt.origins)
            if not self._truthy(self._eval(stmt.cond)):
                return
            try:
                self._exec_resumed(stmt.body)
            except _BreakSignal:
                return
            except _ContinueSignal:
                continue

    def _resume_do_while(self, stmt: ast.DoWhile, rest: tuple) -> None:
        assert stmt.cond is not None and stmt.body is not None
        try:
            self._resume_stmt(stmt.body, rest)
        except _BreakSignal:
            return
        except _ContinueSignal:
            pass
        if not self._truthy(self._eval(stmt.cond)):
            return
        while True:
            self.consume_steps(1)
            self.coverage.update(stmt.origins)
            try:
                self._exec_resumed(stmt.body)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if not self._truthy(self._eval(stmt.cond)):
                return

    def _resume_for(self, stmt: ast.For, in_init: bool, rest: tuple) -> None:
        assert stmt.body is not None
        try:
            if in_init:
                assert stmt.init is not None
                self._resume_stmt(stmt.init, rest)
            else:
                try:
                    self._resume_stmt(stmt.body, rest)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step)
            while True:
                self.consume_steps(1)
                self.coverage.update(stmt.origins)
                if stmt.cond is not None and not self._truthy(
                    self._eval(stmt.cond)
                ):
                    return
                try:
                    self._exec_resumed(stmt.body)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step)
        finally:
            self._pop_scope()

    def _resume_switch(
        self, stmt: ast.Switch, group_index: int, stmt_index: int, rest: tuple
    ) -> None:
        try:
            group = stmt.groups[group_index]
            self._resume_stmt(group.body[stmt_index], rest)
            for inner in group.body[stmt_index + 1 :]:
                self._exec_resumed(inner)
            for later in stmt.groups[group_index + 1 :]:
                self.coverage.update(later.origins)
                for inner in later.body:
                    self._exec_resumed(inner)
        except _BreakSignal:
            pass
        finally:
            self._pop_scope()

    # -- plumbing -----------------------------------------------------------

    def consume_steps(self, count: int = 1) -> None:
        self.steps += count
        if self.steps > self.step_budget:
            raise StepBudgetExceeded(
                f"step budget of {self.step_budget} exhausted"
            )

    def bus_read(self, address: int, size: int) -> int:
        self.consume_steps(1)
        return self.bus.read_port(address, size)

    def bus_write(self, address: int, value: int, size: int) -> None:
        self.consume_steps(1)
        self.bus.write_port(address, value, size)

    def address_of(self, value) -> int:
        """Deterministic synthetic address for a pointer-ish value.

        Deterministic across *processes*, not merely within one:
        built-in ``hash(str)`` is randomised per interpreter start
        (``PYTHONHASHSEED``), and these addresses feed real computation
        (a mutant can write one to a device register), so a
        hash-derived address would make such mutants' outcomes differ
        between the fork-sharing worker pool and the fresh processes a
        distributed campaign runs shards in.  CRC32 of the content is
        stable everywhere.
        """
        if isinstance(value, str):
            # Stable per content: string literals live in .rodata.
            return 0xC0800000 + (zlib.crc32(value.encode("utf-8")) & 0x3FFFF0)
        key = id(value.array if isinstance(value, CPointer) else value)
        address = self._addresses.get(key)
        if address is None:
            address = 0xC1000000 + 0x1000 * len(self._addresses)
            self._addresses[key] = address
            self._address_keepalive.append(value)
        if isinstance(value, CPointer):
            width = value.array.element.width if isinstance(
                value.array.element, IntCType
            ) else 8
            return address + value.offset * (width // 8)
        return address

    def function_address(self, name: str) -> int:
        # CRC32, not hash(): see address_of — cross-process stability.
        return 0xC8000000 + (zlib.crc32(name.encode("utf-8")) & 0xFFFFF0)

    # -- globals ------------------------------------------------------------

    def _init_globals(self) -> None:
        for decl in self.program.unit.decls:
            if not isinstance(decl, ast.GlobalDecl):
                continue
            assert decl.var_type is not None
            self.coverage.update(decl.origins)
            self.globals[decl.name] = self._initial_value(
                decl.var_type, decl.init
            )

    def _initial_value(self, ctype: CType, init) -> object:
        if init is None:
            return self._zero_value(ctype)
        if isinstance(init, ast.InitList):
            if isinstance(ctype, StructType):
                value = CStructValue(ctype.name)
                for field in ctype.fields:
                    value.fields[field.name] = self._zero_value(field.ctype)
                for field, item in zip(ctype.fields, init.items):
                    value.fields[field.name] = self._coerce(
                        self._eval(item), field.ctype
                    )
                return value
            if isinstance(ctype, ArrayType):
                length = ctype.length if ctype.length is not None else len(init.items)
                array = CArray.zeroed(_element_int_type(ctype), length)
                for index, item in enumerate(init.items):
                    array.store(index, self._coerce(self._eval(item), ctype.element))
                return array
            raise InterpreterBug("brace initializer for scalar survived sema")
        return self._coerce(self._eval(init), ctype)

    def _zero_value(self, ctype: CType) -> object:
        if isinstance(ctype, IntCType):
            return 0
        if isinstance(ctype, PointerType):
            return None
        if isinstance(ctype, StructType):
            value = CStructValue(ctype.name)
            for field in ctype.fields:
                value.fields[field.name] = self._zero_value(field.ctype)
            return value
        if isinstance(ctype, ArrayType):
            return CArray.zeroed(_element_int_type(ctype), ctype.length or 0)
        if isinstance(ctype, type(VOID)):
            return None
        raise InterpreterBug(f"cannot zero-initialise {ctype.describe()}")

    # -- function calls ----------------------------------------------------------

    def call(self, name: str, *args):
        """Call a defined function by name with Python-int/str arguments."""
        decl = self._functions.get(name)
        if decl is None:
            raise InterpreterBug(f"no function {name!r} in program")
        return self._call_function(decl, list(args))

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def _call_function(self, decl: ast.FuncDecl, args: list):
        # Kernel stacks are small; this also keeps runaway-recursion
        # mutants clear of Python's own recursion limit.
        if len(self._scopes) > 48:
            raise MachineFault("kernel stack overflow (runaway recursion)")
        self.consume_steps(1)
        frame: dict[str, object] = {}
        for param, arg in zip(decl.params, args):
            assert param.ctype is not None
            frame[param.name] = self._coerce(arg, param.ctype)
        self._scopes.append([frame])
        try:
            assert decl.body is not None
            self._exec_block(decl.body, new_scope=False)
            result = None
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            self._scopes.pop()
        assert decl.return_type is not None
        if isinstance(decl.return_type, type(VOID)):
            return None
        return self._coerce(result if result is not None else 0, decl.return_type)

    # -- scopes ------------------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes[-1].append({})

    def _pop_scope(self) -> None:
        self._scopes[-1].pop()

    def _find_cell(self, name: str) -> tuple[dict, str] | None:
        if self._scopes:
            for scope in reversed(self._scopes[-1]):
                if name in scope:
                    return scope, name
        if name in self.globals:
            return self.globals, name
        return None

    # -- statements ----------------------------------------------------------------

    def _exec(self, stmt: ast.Stmt) -> None:
        self.consume_steps(1)
        self.coverage.update(stmt.origins)

        if isinstance(stmt, ast.Block):
            self._exec_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._eval(stmt.expr)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        elif isinstance(stmt, ast.LocalDecl):
            assert stmt.var_type is not None
            self._scopes[-1][-1][stmt.name] = self._initial_value(
                stmt.var_type, stmt.init
            )
        elif isinstance(stmt, ast.If):
            assert stmt.cond is not None and stmt.then is not None
            if self._truthy(self._eval(stmt.cond)):
                self._exec(stmt.then)
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._exec_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value) if stmt.value is not None else None
            raise _ReturnSignal(value)
        else:
            raise InterpreterBug(f"unhandled statement {stmt!r}")

    def _exec_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self._push_scope()
        try:
            for stmt in block.statements:
                self._exec(stmt)
        finally:
            if new_scope:
                self._pop_scope()

    def _exec_while(self, stmt: ast.While) -> None:
        assert stmt.cond is not None and stmt.body is not None
        while True:
            self.consume_steps(1)
            self.coverage.update(stmt.origins)
            if not self._truthy(self._eval(stmt.cond)):
                return
            try:
                self._exec(stmt.body)
            except _BreakSignal:
                return
            except _ContinueSignal:
                continue

    def _exec_do_while(self, stmt: ast.DoWhile) -> None:
        assert stmt.cond is not None and stmt.body is not None
        while True:
            self.consume_steps(1)
            self.coverage.update(stmt.origins)
            try:
                self._exec(stmt.body)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if not self._truthy(self._eval(stmt.cond)):
                return

    def _exec_for(self, stmt: ast.For) -> None:
        assert stmt.body is not None
        self._push_scope()
        try:
            if stmt.init is not None:
                self._exec(stmt.init)
            while True:
                self.consume_steps(1)
                self.coverage.update(stmt.origins)
                if stmt.cond is not None and not self._truthy(self._eval(stmt.cond)):
                    return
                try:
                    self._exec(stmt.body)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step)
        finally:
            self._pop_scope()

    def _exec_switch(self, stmt: ast.Switch) -> None:
        assert stmt.expr is not None
        selector = int(self._eval(stmt.expr))
        start = None
        default = None
        for index, group in enumerate(stmt.groups):
            if any(value == selector for value in group.values if value is not None):
                start = index
                break
            if default is None and any(value is None for value in group.values):
                default = index
        if start is None:
            start = default
        if start is None:
            return
        self._push_scope()
        try:
            for group in stmt.groups[start:]:
                self.coverage.update(group.origins)
                for inner in group.body:
                    self._exec(inner)
        except _BreakSignal:
            pass
        finally:
            self._pop_scope()

    # -- expressions -----------------------------------------------------------------

    def _truthy(self, value) -> bool:
        if value is None:
            return False
        if isinstance(value, (CPointer, str)):
            return True
        return int(value) != 0

    def _eval(self, expr: ast.Expr):
        self.consume_steps(1)

        if isinstance(expr, ast.IntLit):
            return expr.value if expr.unsigned else S32.wrap(expr.value)
        if isinstance(expr, ast.CharLit):
            return expr.value
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            return self._load_ident(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr)
        if isinstance(expr, ast.Member):
            return self._eval_member(expr)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._eval_postfix(expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr)
        if isinstance(expr, ast.Ternary):
            assert expr.cond is not None and expr.then is not None
            assert expr.other is not None
            if self._truthy(self._eval(expr.cond)):
                return self._eval(expr.then)
            return self._eval(expr.other)
        if isinstance(expr, ast.Cast):
            assert expr.operand is not None and expr.target_type is not None
            return self._coerce(self._eval(expr.operand), expr.target_type)
        if isinstance(expr, ast.Comma):
            assert expr.left is not None and expr.right is not None
            self._eval(expr.left)
            return self._eval(expr.right)
        raise InterpreterBug(f"unhandled expression {expr!r}")

    def _load_ident(self, expr: ast.Ident):
        cell = self._find_cell(expr.name)
        if cell is None:
            if expr.name in self._functions or expr.name in BUILTIN_IMPLS:
                return self.function_address(expr.name)
            raise InterpreterBug(f"unbound identifier {expr.name!r}")
        container, key = cell
        value = container[key]
        if isinstance(value, CArray):  # decay in value context
            return CPointer(value, 0)
        if isinstance(value, CStructValue):
            return value  # copied at store/call boundaries
        return value

    def _eval_call(self, expr: ast.Call):
        assert isinstance(expr.callee, ast.Ident)
        name = expr.callee.name
        args = [self._eval(arg) for arg in expr.args]
        builtin = BUILTIN_IMPLS.get(name)
        if builtin is not None and name not in self._functions:
            self.consume_steps(1)
            signature = BUILTIN_SIGNATURES.get(name)
            if signature is not None:
                args = [
                    self._coerce(value, param)
                    for value, param in zip(args, signature.params)
                ] + args[len(signature.params) :]
            return builtin(self, args)
        decl = self._functions.get(name)
        if decl is None:
            raise InterpreterBug(f"call of undefined function {name!r}")
        prepared = [
            value.copy() if isinstance(value, CStructValue) else value
            for value in args
        ]
        return self._call_function(decl, prepared)

    def _eval_index(self, expr: ast.Index):
        assert expr.base is not None and expr.index is not None
        base = self._eval(expr.base)
        index = int(self._eval(expr.index))
        if isinstance(base, CPointer):
            return base.load(index)
        if isinstance(base, str):
            if not 0 <= index <= len(base):
                raise MachineFault("string index out of bounds")
            return ord(base[index]) if index < len(base) else 0
        raise MachineFault("subscript of non-array value")

    def _eval_member(self, expr: ast.Member):
        assert expr.base is not None
        base = self._eval(expr.base)
        if isinstance(base, CPointer) and expr.arrow:
            base = base.load(0)
        if not isinstance(base, CStructValue):
            raise MachineFault("member access on non-struct value")
        if expr.name not in base.fields:
            raise InterpreterBug(f"missing struct field {expr.name!r}")
        return base.fields[expr.name]

    def _eval_unary(self, expr: ast.Unary):
        assert expr.operand is not None
        if expr.op in ("++", "--"):
            delta = 1 if expr.op == "++" else -1
            new_value = self._apply_delta(expr.operand, delta)
            return new_value
        operand = self._eval(expr.operand)
        result_type = expr.ctype if isinstance(expr.ctype, IntCType) else S32
        if expr.op == "-":
            return result_type.wrap(-int(operand))
        if expr.op == "~":
            return result_type.wrap(~int(operand))
        if expr.op == "!":
            return 0 if self._truthy(operand) else 1
        if expr.op == "*":
            if isinstance(operand, CPointer):
                return operand.load(0)
            raise MachineFault("dereference of non-pointer value")
        raise InterpreterBug(f"unhandled unary {expr.op!r}")

    def _eval_postfix(self, expr: ast.Postfix):
        assert expr.operand is not None
        delta = 1 if expr.op == "++" else -1
        old_value = self._load_lvalue(expr.operand)
        self._apply_delta(expr.operand, delta)
        return old_value

    def _apply_delta(self, target: ast.Expr, delta: int):
        value = self._load_lvalue(target)
        if isinstance(value, CPointer):
            new_value: object = value.advanced(delta)
        else:
            ctype = target.ctype if isinstance(target.ctype, IntCType) else S32
            new_value = ctype.wrap(int(value) + delta)
        self._store_lvalue(target, new_value)
        return new_value

    def _eval_binary(self, expr: ast.Binary):
        assert expr.left is not None and expr.right is not None
        op = expr.op

        if op == "&&":
            if not self._truthy(self._eval(expr.left)):
                return 0
            return 1 if self._truthy(self._eval(expr.right)) else 0
        if op == "||":
            if self._truthy(self._eval(expr.left)):
                return 1
            return 1 if self._truthy(self._eval(expr.right)) else 0

        left = self._eval(expr.left)
        right = self._eval(expr.right)

        if isinstance(left, CPointer) or isinstance(right, CPointer):
            return self._pointer_binary(op, left, right)
        if left is None or right is None or isinstance(left, str) or isinstance(right, str):
            return self._pointerish_compare(op, left, right)

        left_i, right_i = int(left), int(right)
        left_t = expr.left.ctype if isinstance(expr.left.ctype, IntCType) else S32
        right_t = expr.right.ctype if isinstance(expr.right.ctype, IntCType) else S32

        if op in ("==", "!=", "<", ">", "<=", ">="):
            common = usual_arithmetic(left_t, right_t)
            left_c, right_c = common.wrap(left_i), common.wrap(right_i)
            return int(
                {
                    "==": left_c == right_c,
                    "!=": left_c != right_c,
                    "<": left_c < right_c,
                    ">": left_c > right_c,
                    "<=": left_c <= right_c,
                    ">=": left_c >= right_c,
                }[op]
            )

        result_type = expr.ctype if isinstance(expr.ctype, IntCType) else S32
        if op in ("<<", ">>"):
            amount = right_i & 31
            base_v = result_type.wrap(left_i)
            if op == "<<":
                return result_type.wrap(base_v << amount)
            if result_type.signed:
                return base_v >> amount  # arithmetic shift
            return result_type.wrap((base_v & ((1 << result_type.width) - 1)) >> amount)

        common = usual_arithmetic(left_t, right_t)
        left_c, right_c = common.wrap(left_i), common.wrap(right_i)
        if op == "+":
            return result_type.wrap(left_c + right_c)
        if op == "-":
            return result_type.wrap(left_c - right_c)
        if op == "*":
            return result_type.wrap(left_c * right_c)
        if op == "/":
            if right_c == 0:
                raise MachineFault("division by zero")
            return result_type.wrap(_c_div(left_c, right_c))
        if op == "%":
            if right_c == 0:
                raise MachineFault("division by zero")
            return result_type.wrap(left_c - _c_div(left_c, right_c) * right_c)
        if op == "&":
            return result_type.wrap(left_c & right_c)
        if op == "|":
            return result_type.wrap(left_c | right_c)
        if op == "^":
            return result_type.wrap(left_c ^ right_c)
        raise InterpreterBug(f"unhandled binary {op!r}")

    def _pointer_binary(self, op: str, left, right):
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._pointerish_compare(op, left, right)
        if op == "+":
            if isinstance(left, CPointer) and not isinstance(right, CPointer):
                return left.advanced(int(right))
            if isinstance(right, CPointer) and not isinstance(left, CPointer):
                return right.advanced(int(left))
        if op == "-" and isinstance(left, CPointer) and not isinstance(right, CPointer):
            return left.advanced(-int(right))
        raise MachineFault(f"invalid pointer arithmetic {op!r}")

    def _pointerish_compare(self, op: str, left, right):
        def normalise(value):
            if value is None:
                return ("null",)
            if isinstance(value, str):
                return ("str", value)
            if isinstance(value, CPointer):
                return ("ptr", id(value.array), value.offset)
            return ("int", int(value))

        left_n, right_n = normalise(left), normalise(right)
        if left_n[0] == "int" and left_n[1] == 0:
            left_n = ("null",)
        if right_n[0] == "int" and right_n[1] == 0:
            right_n = ("null",)
        equal = left_n == right_n
        if op == "==":
            return int(equal)
        if op == "!=":
            return int(not equal)
        # Relational comparison: within one array, by offset; otherwise by
        # synthetic address, as compiled code would compare raw pointers.
        if (
            left_n[0] == "ptr"
            and right_n[0] == "ptr"
            and left_n[1] == right_n[1]
        ):
            left_v, right_v = left_n[2], right_n[2]
        else:
            left_v, right_v = self._numeric_view(left), self._numeric_view(right)
        return int(
            {
                "<": left_v < right_v,
                ">": left_v > right_v,
                "<=": left_v <= right_v,
                ">=": left_v >= right_v,
            }[op]
        )

    def _numeric_view(self, value) -> int:
        if value is None:
            return 0
        if isinstance(value, (CPointer, str)):
            return self.address_of(value)
        return int(value)

    def _eval_assign(self, expr: ast.Assign):
        assert expr.target is not None and expr.value is not None
        if expr.op == "=":
            value = self._eval(expr.value)
            target_type = expr.target.ctype
            if target_type is not None:
                value = self._coerce(value, target_type)
            self._store_lvalue(expr.target, value)
            return value
        binary = ast.Binary(
            op=expr.op[:-1],
            left=expr.target,
            right=expr.value,
            location=expr.location,
        )
        binary.ctype = (
            expr.target.ctype if isinstance(expr.target.ctype, IntCType) else S32
        )
        value = self._eval_binary(binary)
        if expr.target.ctype is not None:
            value = self._coerce(value, expr.target.ctype)
        self._store_lvalue(expr.target, value)
        return value

    # -- lvalues --------------------------------------------------------------------

    def _load_lvalue(self, expr: ast.Expr):
        return self._eval(expr)

    def _store_lvalue(self, expr: ast.Expr, value) -> None:
        if isinstance(expr, ast.Ident):
            cell = self._find_cell(expr.name)
            if cell is None:
                raise InterpreterBug(f"unbound identifier {expr.name!r}")
            container, key = cell
            if isinstance(value, CStructValue):
                value = value.copy()
            container[key] = value
            return
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            base = self._eval(expr.base)
            index = int(self._eval(expr.index))
            if isinstance(base, CPointer):
                base.store(value, index)
                return
            raise MachineFault("store into non-array value")
        if isinstance(expr, ast.Member):
            assert expr.base is not None
            base = self._eval_member_base(expr)
            base.fields[expr.name] = (
                value.copy() if isinstance(value, CStructValue) else value
            )
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            assert expr.operand is not None
            pointer = self._eval(expr.operand)
            if isinstance(pointer, CPointer):
                pointer.store(value, 0)
                return
            raise MachineFault("store through non-pointer value")
        raise InterpreterBug(f"store to non-lvalue {expr!r}")

    def _eval_member_base(self, expr: ast.Member) -> CStructValue:
        """Reference (not copy) of the struct containing a member lvalue."""
        assert expr.base is not None
        base_expr = expr.base
        if isinstance(base_expr, ast.Ident):
            cell = self._find_cell(base_expr.name)
            if cell is None:
                raise InterpreterBug(f"unbound identifier {base_expr.name!r}")
            container, key = cell
            value = container[key]
        else:
            value = self._eval(base_expr)
        if isinstance(value, CPointer) and expr.arrow:
            value = value.load(0)
        if not isinstance(value, CStructValue):
            raise MachineFault("member store on non-struct value")
        return value

    # -- coercion --------------------------------------------------------------------

    def _coerce(self, value, ctype: CType):
        if isinstance(ctype, IntCType):
            if value is None:
                return 0
            if isinstance(value, (CPointer, str)):
                return ctype.wrap(self.address_of(value))
            if isinstance(value, CStructValue):
                raise InterpreterBug(
                    f"coercing struct to {ctype.describe()}"
                )
            return ctype.wrap(int(value))
        if isinstance(ctype, PointerType):
            if isinstance(value, (CPointer, str)) or value is None:
                return value
            if isinstance(value, int):
                # A wild pointer forged from an integer: kept as the raw
                # number; any dereference faults (the paper's Crash).
                return None if value == 0 else value
            raise InterpreterBug(f"coercing {value!r} to pointer")
        if isinstance(ctype, StructType):
            if isinstance(value, CStructValue):
                return value.copy()
            raise InterpreterBug(f"coercing {value!r} to struct")
        if isinstance(ctype, ArrayType):
            if isinstance(value, (CArray, CPointer)):
                return value
            raise InterpreterBug(f"coercing {value!r} to array")
        if isinstance(ctype, type(VOID)):
            return None
        raise InterpreterBug(f"unhandled coercion target {ctype.describe()}")


def _c_div(left: int, right: int) -> int:
    """C division truncates toward zero."""
    quotient = abs(left) // abs(right)
    if (left < 0) != (right < 0):
        quotient = -quotient
    return quotient


def _element_int_type(ctype: ArrayType) -> IntCType:
    if isinstance(ctype.element, IntCType):
        return ctype.element
    raise InterpreterBug(
        f"unsupported array element type {ctype.element.describe()}"
    )
