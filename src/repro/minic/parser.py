"""Recursive-descent parser for mini-C.

Consumes the preprocessor's token stream and produces a
:class:`~repro.minic.ast.TranslationUnit`.  The parser owns the classic
"lexer hack" state: a typedef table (seeded with the kernel integer
typedefs) and a struct registry, both needed to tell declarations from
expressions.

Mutants must stay parseable (the §3.1 error model only produces
syntactically correct programs), so the grammar accepts everything the
mutation operators can produce — e.g. assignment in conditions, ``|``
where ``||`` stood, comma expressions — and leaves judgement to `sema`.
"""

from __future__ import annotations

from repro.diagnostics import CompileError, Diagnostic, Severity, SourceLocation
from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    BUILTIN_TYPEDEFS,
    CHAR,
    CType,
    IntCType,
    PointerType,
    S16,
    S32,
    StructField,
    StructType,
    U16,
    U32,
    U8,
    VOID,
    S8,
)
from repro.minic.tokens import (
    CToken,
    CTokenKind,
    is_unsigned_literal,
    parse_c_char,
    parse_c_int,
    parse_c_string,
)

_TYPE_KEYWORDS = frozenset(
    {"void", "char", "int", "long", "short", "unsigned", "signed", "struct", "const", "volatile"}
)

_SPEC_KEYWORDS = frozenset({"static", "extern", "inline", "typedef"})

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
)

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "*": 10, "/": 10, "%": 10,
    "+": 9, "-": 9,
    "<<": 8, ">>": 8,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "==": 6, "!=": 6,
    "&": 5,
    "^": 4,
    "|": 3,
    "&&": 2,
    "||": 1,
}


class CParseError(CompileError):
    """Input is not syntactically valid mini-C."""


class Parser:
    def __init__(self, tokens: list[CToken]):
        if not tokens or tokens[-1].kind is not CTokenKind.EOF:
            eof_line = tokens[-1].line if tokens else 1
            tokens = list(tokens) + [
                CToken(CTokenKind.EOF, "", eof_line, 1, "<c>")
            ]
        self.tokens = tokens
        self.index = 0
        self.typedefs: dict[str, CType] = dict(BUILTIN_TYPEDEFS)
        self.structs: dict[str, StructType] = {}

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> CToken:
        return self.tokens[self.index]

    def _peek(self, ahead: int = 1) -> CToken:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def _advance(self) -> CToken:
        token = self.current
        if token.kind is not CTokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str, token: CToken | None = None) -> CParseError:
        token = token or self.current
        found = token.text or "end of input"
        return CParseError(
            [
                Diagnostic(
                    Severity.ERROR,
                    "c-parse",
                    f"{message} (found {found!r})",
                    token.location,
                )
            ]
        )

    def _expect(self, text: str) -> CToken:
        if self.current.text != text or self.current.kind not in (
            CTokenKind.PUNCT,
            CTokenKind.KEYWORD,
        ):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> CToken:
        if self.current.kind is not CTokenKind.IDENT:
            raise self._error(f"expected {what}")
        return self._advance()

    # -- origins ------------------------------------------------------------

    def _origins(self, start: int, end: int | None = None) -> ast.Origins:
        """Source lines covered by tokens[start:end], macro sites included."""
        end = self.index if end is None else end
        lines: set[tuple[str, int]] = set()
        for token in self.tokens[start:end]:
            lines.add((token.filename, token.line))
            if token.macro_file is not None and token.macro_line is not None:
                lines.add((token.macro_file, token.macro_line))
        return frozenset(lines)

    # -- type recognition -----------------------------------------------------

    def _starts_type(self, token: CToken) -> bool:
        if token.kind is CTokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        return token.kind is CTokenKind.IDENT and token.text in self.typedefs

    def _starts_declaration(self, token: CToken) -> bool:
        if token.kind is CTokenKind.KEYWORD and token.text in _SPEC_KEYWORDS:
            return True
        return self._starts_type(token)

    # -- entry point -------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(location=self.current.location)
        while self.current.kind is not CTokenKind.EOF:
            unit.decls.extend(self._parse_top_decl())
        return unit

    # -- declarations ----------------------------------------------------------

    def _parse_top_decl(self) -> list[ast.TopDecl]:
        start = self.index
        location = self.current.location

        specs = self._parse_spec_flags()
        if self.current.is_keyword("typedef"):
            self._advance()
            return [self._parse_typedef(start, location)]

        base, struct_def = self._parse_base_type(allow_body=True)

        # Bare "struct X { ... };" definition.
        if struct_def is not None and self.current.is_punct(";"):
            self._advance()
            return [
                ast.StructDef(
                    name=struct_def.name,
                    location=location,
                    origins=self._origins(start),
                )
            ]
        if self.current.is_punct(";"):
            self._advance()
            return []  # e.g. a stray "int;" — tolerated

        decls: list[ast.TopDecl] = []
        while True:
            var_type, name_token, is_function, params, variadic = self._parse_declarator(
                base
            )
            if is_function:
                func = ast.FuncDecl(
                    name=name_token.text,
                    return_type=var_type,
                    params=params,
                    variadic=variadic,
                    static=specs["static"],
                    inline=specs["inline"],
                    location=name_token.location,
                )
                if self.current.is_punct("{"):
                    func.origins = self._origins(start)
                    func.body = self._parse_block()
                    decls.append(func)
                    return decls
                func.origins = self._origins(start)
                self._expect(";")
                decls.append(func)
                return decls

            init: ast.Expr | ast.InitList | None = None
            if self.current.is_punct("="):
                self._advance()
                init = self._parse_initializer()
            var_type, symbol_const = _apply_leading_const(var_type, specs["const"])
            decls.append(
                ast.GlobalDecl(
                    name=name_token.text,
                    var_type=var_type,
                    init=init,
                    const=symbol_const,
                    static=specs["static"],
                    extern=specs["extern"],
                    location=name_token.location,
                )
            )
            if self.current.is_punct(","):
                self._advance()
                continue
            self._expect(";")
            break
        origins = self._origins(start)
        for decl in decls:
            decl.origins = origins
        return decls

    def _parse_spec_flags(self) -> dict[str, bool]:
        flags = {"static": False, "extern": False, "inline": False, "const": False}
        while True:
            token = self.current
            if token.is_keyword("static"):
                flags["static"] = True
            elif token.is_keyword("extern"):
                flags["extern"] = True
            elif token.is_keyword("inline"):
                flags["inline"] = True
            elif token.is_keyword("const"):
                flags["const"] = True
            elif token.is_keyword("volatile"):
                pass  # accepted and ignored
            elif token.is_keyword("typedef"):
                return flags  # caller handles
            else:
                return flags
            if token.is_keyword("typedef"):
                return flags
            self._advance()

    def _parse_typedef(self, start: int, location: SourceLocation) -> ast.TopDecl:
        base, _ = self._parse_base_type(allow_body=True)
        var_type, name_token, is_function, _, _ = self._parse_declarator(base)
        if is_function:
            raise self._error("function typedefs are not supported", name_token)
        self._expect(";")
        self.typedefs[name_token.text] = var_type
        return ast.TypedefDecl(
            name=name_token.text,
            target=var_type,
            location=location,
            origins=self._origins(start),
        )

    def _parse_base_type(
        self, allow_body: bool = False
    ) -> tuple[CType, StructType | None]:
        """Parse declaration specifiers' type part (plus trailing quals)."""
        token = self.current

        if token.is_keyword("struct"):
            self._advance()
            name_token = self._expect_ident("struct name")
            struct = self.structs.get(name_token.text)
            if struct is None:
                struct = StructType(name=name_token.text)
                self.structs[name_token.text] = struct
            struct_def = None
            if self.current.is_punct("{"):
                if not allow_body:
                    raise self._error("struct body not allowed here")
                if struct.defined:
                    raise self._error(
                        f"struct {struct.name!r} defined twice", name_token
                    )
                self._advance()
                fields: list[StructField] = []
                while not self.current.is_punct("}"):
                    field_base, _ = self._parse_base_type()
                    while True:
                        field_type, field_name, is_fn, _, _ = self._parse_declarator(
                            field_base
                        )
                        if is_fn:
                            raise self._error("function fields are not supported")
                        fields.append(StructField(field_name.text, field_type))
                        if self.current.is_punct(","):
                            self._advance()
                            continue
                        break
                    self._expect(";")
                self._expect("}")
                struct.fields = fields
                struct.defined = True
                struct_def = struct
            self._consume_quals()
            return struct, struct_def

        if token.kind is CTokenKind.IDENT and token.text in self.typedefs:
            self._advance()
            self._consume_quals()
            return self.typedefs[token.text], None

        # Built-in combinations: collect the keyword multiset.
        words: list[str] = []
        while self.current.kind is CTokenKind.KEYWORD and self.current.text in (
            "void", "char", "int", "long", "short", "unsigned", "signed",
            "const", "volatile",
        ):
            if self.current.text not in ("const", "volatile"):
                words.append(self.current.text)
            self._advance()
        if not words:
            raise self._error("expected a type")
        return _base_type_from_words(words, token), None

    def _consume_quals(self) -> None:
        while self.current.is_keyword("const") or self.current.is_keyword("volatile"):
            self._advance()

    def _parse_declarator(
        self, base: CType
    ) -> tuple[CType, CToken, bool, list[ast.Param], bool]:
        """Parse ``'*'* name ( '(' params ')' | ('[' n ']')* )``.

        Returns (type, name token, is_function, params, variadic).
        """
        result = base
        const_pointee = False
        while self.current.is_punct("*"):
            self._advance()
            result = PointerType(result, const_pointee=const_pointee)
            while self.current.is_keyword("const") or self.current.is_keyword(
                "volatile"
            ):
                self._advance()

        name_token = self._expect_ident("declarator name")

        if self.current.is_punct("("):
            self._advance()
            params, variadic = self._parse_params()
            self._expect(")")
            return result, name_token, True, params, variadic

        while self.current.is_punct("["):
            self._advance()
            length: int | None = None
            if not self.current.is_punct("]"):
                length = self._parse_constant_expression()
            self._expect("]")
            result = ArrayType(result, length)
        return result, name_token, False, [], False

    def _parse_params(self) -> tuple[list[ast.Param], bool]:
        params: list[ast.Param] = []
        variadic = False
        if self.current.is_punct(")"):
            return params, variadic
        if self.current.is_keyword("void") and self._peek().is_punct(")"):
            self._advance()
            return params, variadic
        while True:
            if self.current.is_punct("..."):
                self._advance()
                variadic = True
                break
            base, _ = self._parse_base_type()
            ctype = base
            while self.current.is_punct("*"):
                self._advance()
                const_ptr = False
                while self.current.is_keyword("const") or self.current.is_keyword(
                    "volatile"
                ):
                    self._advance()
                ctype = PointerType(ctype, const_pointee=const_ptr)
            name = ""
            location = self.current.location
            if self.current.kind is CTokenKind.IDENT:
                token = self._advance()
                name = token.text
                location = token.location
            while self.current.is_punct("["):
                self._advance()
                if not self.current.is_punct("]"):
                    self._parse_constant_expression()
                self._expect("]")
                ctype = PointerType(ctype)  # array params decay
            params.append(ast.Param(name=name, ctype=ctype, location=location))
            if self.current.is_punct(","):
                self._advance()
                continue
            break
        return params, variadic

    def _parse_initializer(self) -> ast.Expr | ast.InitList:
        if not self.current.is_punct("{"):
            return self._parse_assignment()
        location = self.current.location
        self._advance()
        items: list[ast.Expr] = []
        while not self.current.is_punct("}"):
            items.append(self._parse_assignment())
            if self.current.is_punct(","):
                self._advance()
                continue
            break
        self._expect("}")
        return ast.InitList(items=items, location=location)

    # -- statements ---------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        location = self.current.location
        self._expect("{")
        statements: list[ast.Stmt] = []
        while not self.current.is_punct("}"):
            if self.current.kind is CTokenKind.EOF:
                raise self._error("unterminated block")
            statements.extend(self._parse_statement())
        self._expect("}")
        return ast.Block(statements=statements, location=location)

    def _parse_statement(self) -> list[ast.Stmt]:
        """Parse one statement (a declaration line may yield several)."""
        token = self.current
        start = self.index

        if token.is_punct("{"):
            return [self._parse_block()]
        if token.is_punct(";"):
            self._advance()
            return [ast.EmptyStmt(location=token.location, origins=self._origins(start))]
        if token.is_keyword("if"):
            return [self._parse_if(start)]
        if token.is_keyword("while"):
            return [self._parse_while(start)]
        if token.is_keyword("do"):
            return [self._parse_do_while(start)]
        if token.is_keyword("for"):
            return [self._parse_for(start)]
        if token.is_keyword("switch"):
            return [self._parse_switch(start)]
        if token.is_keyword("break"):
            self._advance()
            self._expect(";")
            return [ast.Break(location=token.location, origins=self._origins(start))]
        if token.is_keyword("continue"):
            self._advance()
            self._expect(";")
            return [ast.Continue(location=token.location, origins=self._origins(start))]
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self.current.is_punct(";"):
                value = self._parse_expression()
            self._expect(";")
            return [
                ast.Return(
                    value=value, location=token.location, origins=self._origins(start)
                )
            ]
        if token.is_keyword("goto"):
            raise self._error("goto is not supported in mini-C")
        if self._starts_declaration(token):
            return self._parse_local_decl(start)

        expr = self._parse_expression()
        self._expect(";")
        return [
            ast.ExprStmt(expr=expr, location=token.location, origins=self._origins(start))
        ]

    def _parse_local_decl(self, start: int) -> list[ast.Stmt]:
        specs = self._parse_spec_flags()
        if self.current.is_keyword("typedef"):
            raise self._error("local typedefs are not supported")
        base, _ = self._parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            var_type, name_token, is_function, _, _ = self._parse_declarator(base)
            if is_function:
                raise self._error("local function declarations are not supported")
            init: ast.Expr | ast.InitList | None = None
            if self.current.is_punct("="):
                self._advance()
                init = self._parse_initializer()
            var_type, symbol_const = _apply_leading_const(var_type, specs["const"])
            decls.append(
                ast.LocalDecl(
                    name=name_token.text,
                    var_type=var_type,
                    init=init,
                    const=symbol_const,
                    location=name_token.location,
                )
            )
            if self.current.is_punct(","):
                self._advance()
                continue
            break
        self._expect(";")
        origins = self._origins(start)
        for decl in decls:
            decl.origins = origins
        return decls

    def _parse_if(self, start: int) -> ast.If:
        location = self.current.location
        self._expect("if")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        origins = self._origins(start)  # header only: coverage excludes arms
        then = _single(self._parse_statement())
        otherwise = None
        if self.current.is_keyword("else"):
            self._advance()
            otherwise = _single(self._parse_statement())
        return ast.If(
            cond=cond, then=then, otherwise=otherwise, location=location, origins=origins
        )

    def _parse_while(self, start: int) -> ast.While:
        location = self.current.location
        self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        origins = self._origins(start)
        body = _single(self._parse_statement())
        return ast.While(cond=cond, body=body, location=location, origins=origins)

    def _parse_do_while(self, start: int) -> ast.DoWhile:
        location = self.current.location
        self._expect("do")
        do_origins = self._origins(start)
        body = _single(self._parse_statement())
        tail_start = self.index
        self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(
            body=body,
            cond=cond,
            location=location,
            origins=do_origins | self._origins(tail_start),
        )

    def _parse_for(self, start: int) -> ast.For:
        location = self.current.location
        self._expect("for")
        self._expect("(")
        init: ast.Stmt | None = None
        if self.current.is_punct(";"):
            self._advance()
        elif self._starts_declaration(self.current):
            init = _single(self._parse_local_decl(self.index))
        else:
            expr = self._parse_expression()
            init = ast.ExprStmt(expr=expr, location=expr.location)
            self._expect(";")
        cond = None
        if not self.current.is_punct(";"):
            cond = self._parse_expression()
        self._expect(";")
        step = None
        if not self.current.is_punct(")"):
            step = self._parse_expression()
        self._expect(")")
        origins = self._origins(start)
        if init is not None:
            init.origins = origins
        body = _single(self._parse_statement())
        return ast.For(
            init=init, cond=cond, step=step, body=body, location=location, origins=origins
        )

    def _parse_switch(self, start: int) -> ast.Switch:
        location = self.current.location
        self._expect("switch")
        self._expect("(")
        expr = self._parse_expression()
        self._expect(")")
        origins = self._origins(start)
        self._expect("{")
        groups: list[ast.CaseGroup] = []
        while not self.current.is_punct("}"):
            if self.current.kind is CTokenKind.EOF:
                raise self._error("unterminated switch")
            label_start = self.index
            values: list[int | None] = []
            while self.current.is_keyword("case") or self.current.is_keyword("default"):
                if self.current.is_keyword("case"):
                    self._advance()
                    values.append(self._parse_constant_expression())
                else:
                    self._advance()
                    values.append(None)
                self._expect(":")
            if not values:
                raise self._error("expected 'case' or 'default' inside switch")
            label_origins = self._origins(label_start)
            body: list[ast.Stmt] = []
            while not (
                self.current.is_punct("}")
                or self.current.is_keyword("case")
                or self.current.is_keyword("default")
            ):
                body.extend(self._parse_statement())
            groups.append(
                ast.CaseGroup(values=values, body=body, origins=label_origins)
            )
        self._expect("}")
        return ast.Switch(expr=expr, groups=groups, location=location, origins=origins)

    # -- expressions ------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        while self.current.is_punct(","):
            location = self._advance().location
            right = self._parse_assignment()
            expr = ast.Comma(left=expr, right=right, location=location)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        token = self.current
        if token.kind is CTokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(
                op=token.text, target=left, value=value, location=token.location
            )
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if not self.current.is_punct("?"):
            return cond
        location = self._advance().location
        then = self._parse_expression()
        self._expect(":")
        other = self._parse_assignment()
        return ast.Ternary(cond=cond, then=then, other=other, location=location)

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            precedence = (
                _BINARY_PRECEDENCE.get(token.text)
                if token.kind is CTokenKind.PUNCT
                else None
            )
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(
                op=token.text, left=left, right=right, location=token.location
            )

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind is CTokenKind.PUNCT:
            if token.text in ("-", "+", "!", "~", "*", "&"):
                self._advance()
                operand = self._parse_unary()
                if token.text == "+":
                    return operand
                return ast.Unary(op=token.text, operand=operand, location=token.location)
            if token.text in ("++", "--"):
                self._advance()
                operand = self._parse_unary()
                return ast.Unary(op=token.text, operand=operand, location=token.location)
            if token.text == "(" and self._starts_type(self._peek()):
                self._advance()
                base, _ = self._parse_base_type()
                ctype = base
                while self.current.is_punct("*"):
                    self._advance()
                    ctype = PointerType(ctype)
                self._expect(")")
                operand = self._parse_unary()
                return ast.Cast(
                    target_type=ctype, operand=operand, location=token.location
                )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.current
            if token.is_punct("("):
                self._advance()
                args: list[ast.Expr] = []
                while not self.current.is_punct(")"):
                    args.append(self._parse_assignment())
                    if self.current.is_punct(","):
                        self._advance()
                        continue
                    break
                self._expect(")")
                expr = ast.Call(callee=expr, args=args, location=token.location)
            elif token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect("]")
                expr = ast.Index(base=expr, index=index, location=token.location)
            elif token.is_punct("."):
                self._advance()
                name = self._expect_ident("member name")
                expr = ast.Member(
                    base=expr, name=name.text, arrow=False, location=token.location
                )
            elif token.is_punct("->"):
                self._advance()
                name = self._expect_ident("member name")
                expr = ast.Member(
                    base=expr, name=name.text, arrow=True, location=token.location
                )
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expr = ast.Postfix(op=token.text, operand=expr, location=token.location)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is CTokenKind.INT:
            self._advance()
            return ast.IntLit(
                value=parse_c_int(token.text),
                unsigned=is_unsigned_literal(token.text),
                location=token.location,
            )
        if token.kind is CTokenKind.CHAR:
            self._advance()
            return ast.CharLit(value=parse_c_char(token.text), location=token.location)
        if token.kind is CTokenKind.STRING:
            self._advance()
            value = parse_c_string(token.text)
            # Adjacent string literal concatenation.
            while self.current.kind is CTokenKind.STRING:
                value += parse_c_string(self._advance().text)
            return ast.StrLit(value=value, location=token.location)
        if token.kind is CTokenKind.IDENT:
            self._advance()
            return ast.Ident(name=token.text, location=token.location)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if token.is_keyword("sizeof"):
            raise self._error("sizeof is not supported in mini-C")
        raise self._error("expected an expression")

    # -- constant expressions ------------------------------------------------------

    def _parse_constant_expression(self) -> int:
        expr = self._parse_ternary()
        value = _const_eval(expr)
        if value is None:
            raise self._error("expected a constant expression", self.current)
        return value


def _apply_leading_const(ctype: CType, const_flag: bool) -> tuple[CType, bool]:
    """Resolve a leading ``const`` against the declarator.

    ``const char *s`` makes the *pointee* const (the pointer variable stays
    assignable); ``const u32 k`` makes the variable itself const.
    """
    if not const_flag:
        return ctype, False
    if isinstance(ctype, PointerType):
        inner, _ = _apply_leading_const(ctype.pointee, True)
        if isinstance(ctype.pointee, PointerType):
            return PointerType(inner, ctype.const_pointee), False
        return PointerType(ctype.pointee, const_pointee=True), False
    return ctype, True


def _single(stmts: list[ast.Stmt]) -> ast.Stmt:
    if len(stmts) == 1:
        return stmts[0]
    return ast.Block(statements=stmts, location=stmts[0].location)


def _base_type_from_words(words: list[str], token: CToken) -> CType:
    key = tuple(sorted(words))
    mapping: dict[tuple[str, ...], CType] = {
        ("void",): VOID,
        ("char",): CHAR,
        ("char", "signed"): S8,
        ("char", "unsigned"): U8,
        ("int",): S32,
        ("signed",): S32,
        ("int", "signed"): S32,
        ("unsigned",): U32,
        ("int", "unsigned"): U32,
        ("short",): S16,
        ("int", "short"): S16,
        ("short", "unsigned"): U16,
        ("int", "short", "unsigned"): U16,
        ("long",): S32,
        ("int", "long"): S32,
        ("long", "unsigned"): U32,
        ("int", "long", "unsigned"): U32,
        ("long", "long"): IntCType("long long", 64, signed=True),
        ("long", "long", "unsigned"): IntCType("unsigned long long", 64, signed=False),
    }
    result = mapping.get(key)
    if result is None:
        raise CParseError(
            [
                Diagnostic(
                    Severity.ERROR,
                    "c-parse",
                    f"unsupported type combination {' '.join(words)!r}",
                    token.location,
                )
            ]
        )
    return result


def _const_eval(expr: ast.Expr) -> int | None:
    """Fold an integer constant expression (case labels, array sizes)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.operand is not None:
        value = _const_eval(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value & 0xFFFFFFFF
        if expr.op == "!":
            return int(value == 0)
        return None
    if isinstance(expr, ast.Cast) and expr.operand is not None:
        inner = _const_eval(expr.operand)
        if inner is None or not isinstance(expr.target_type, IntCType):
            return None
        return expr.target_type.wrap(inner)
    if isinstance(expr, ast.Binary) and expr.left is not None and expr.right is not None:
        left = _const_eval(expr.left)
        right = _const_eval(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else None,
                "%": lambda: left % right if right else None,
                "<<": lambda: left << (right & 31),
                ">>": lambda: left >> (right & 31),
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right),
                ">": lambda: int(left > right),
                "<=": lambda: int(left <= right),
                ">=": lambda: int(left >= right),
                "&&": lambda: int(bool(left) and bool(right)),
                "||": lambda: int(bool(left) or bool(right)),
            }[expr.op]()
        except KeyError:
            return None
    return None
