"""Program assembly: preprocess, parse and type-check a set of sources.

A *program* is an ordered list of virtual source files (prelude, generated
stub header, driver code ...) compiled as a single translation unit — the
moral equivalent of the single-module kernel objects the paper builds.
``compile_program`` is the mutation runner's compile gate: it raises
:class:`~repro.diagnostics.CompileError` carrying every error diagnostic,
and returns a :class:`CompiledProgram` (plus any warnings) on success.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import CompileError, Diagnostic, DiagnosticSink
from repro.minic import ast
from repro.minic.parser import Parser
from repro.minic.preprocessor import Preprocessor
from repro.minic.sema import Sema
from repro.minic.tokens import CToken, CTokenKind


@dataclass(frozen=True)
class SourceFile:
    name: str
    text: str


@dataclass
class CompiledProgram:
    unit: ast.TranslationUnit
    warnings: list[Diagnostic] = field(default_factory=list)

    def function_names(self) -> list[str]:
        return [
            decl.name
            for decl in self.unit.decls
            if isinstance(decl, ast.FuncDecl) and decl.body is not None
        ]


def compile_program(
    files: list[SourceFile],
    include_registry: dict[str, str] | None = None,
) -> CompiledProgram:
    """Compile sources into a checked program.

    Raises :class:`CompileError` on any lex/preprocess/parse/sema error —
    the event the mutation harness classifies as "Compile-time check".
    """
    preprocessor = Preprocessor(include_registry)
    tokens: list[CToken] = []
    for source in files:
        tokens.extend(preprocessor.process(source.text, source.name))
    last_file = files[-1].name if files else "<c>"
    last_line = tokens[-1].line if tokens else 1
    tokens.append(CToken(CTokenKind.EOF, "", last_line, 1, last_file))

    unit = Parser(tokens).parse_translation_unit()

    sink = DiagnosticSink()
    Sema(unit, sink).run()
    sink.raise_if_errors()
    return CompiledProgram(
        unit=unit,
        warnings=[d for d in sink.diagnostics if not d.is_error],
    )
