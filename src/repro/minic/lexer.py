"""Lexer for mini-C.

Operates on a single *logical line* at a time (the preprocessor drives it
line by line so that directives and ``__LINE__`` behave), or on whole text
for direct use in tests.
"""

from __future__ import annotations

from repro.diagnostics import CompileError, Diagnostic, Severity, SourceLocation
from repro.minic.tokens import KEYWORDS, PUNCTUATION, CToken, CTokenKind


class CLexError(CompileError):
    """A character sequence that is not part of mini-C."""


def _error(message: str, location: SourceLocation) -> CLexError:
    return CLexError([Diagnostic(Severity.ERROR, "c-lex", message, location)])


def lex_line(text: str, line: int, filename: str) -> list[CToken]:
    """Tokenize one logical line (no newline handling, no comments).

    The preprocessor strips comments before calling this.
    """
    tokens: list[CToken] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char in " \t\r\f\v":
            pos += 1
            continue
        column = pos + 1
        location = SourceLocation(line, column, filename)

        if char.isalpha() or char == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            kind = CTokenKind.KEYWORD if word in KEYWORDS else CTokenKind.IDENT
            tokens.append(CToken(kind, word, line, column, filename))
            pos = end
            continue

        if char.isdigit():
            end = pos
            if text.startswith(("0x", "0X"), pos):
                end = pos + 2
                while end < length and text[end] in "0123456789abcdefABCDEF":
                    end += 1
                if end == pos + 2:
                    raise _error("hexadecimal literal with no digits", location)
            else:
                while end < length and text[end].isdigit():
                    end += 1
            while end < length and text[end] in "uUlL":
                end += 1
            if end < length and (text[end].isalpha() or text[end] == "_"):
                raise _error(f"malformed number near {text[pos:end + 1]!r}", location)
            tokens.append(CToken(CTokenKind.INT, text[pos:end], line, column, filename))
            pos = end
            continue

        if char == "'":
            end = pos + 1
            while end < length and text[end] != "'":
                if text[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                raise _error("unterminated character literal", location)
            tokens.append(
                CToken(CTokenKind.CHAR, text[pos : end + 1], line, column, filename)
            )
            pos = end + 1
            continue

        if char == '"':
            end = pos + 1
            while end < length and text[end] != '"':
                if text[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                raise _error("unterminated string literal", location)
            tokens.append(
                CToken(CTokenKind.STRING, text[pos : end + 1], line, column, filename)
            )
            pos = end + 1
            continue

        matched = None
        for punct in PUNCTUATION:
            if text.startswith(punct, pos):
                matched = punct
                break
        if matched is None:
            raise _error(f"unexpected character {char!r}", location)
        tokens.append(CToken(CTokenKind.PUNCT, matched, line, column, filename))
        pos += len(matched)
    return tokens


def strip_comments(text: str) -> str:
    """Replace comments with spaces, preserving line structure."""
    result: list[str] = []
    pos = 0
    length = len(text)
    state = "code"
    while pos < length:
        char = text[pos]
        nxt = text[pos + 1] if pos + 1 < length else ""
        if state == "code":
            if char == "/" and nxt == "/":
                state = "line"
                result.append("  ")
                pos += 2
            elif char == "/" and nxt == "*":
                state = "block"
                result.append("  ")
                pos += 2
            elif char == '"':
                state = "string"
                result.append(char)
                pos += 1
            elif char == "'":
                state = "char"
                result.append(char)
                pos += 1
            else:
                result.append(char)
                pos += 1
        elif state == "line":
            if char == "\n":
                state = "code"
                result.append(char)
            else:
                result.append(" ")
            pos += 1
        elif state == "block":
            if char == "*" and nxt == "/":
                state = "code"
                result.append("  ")
                pos += 2
            else:
                result.append(char if char == "\n" else " ")
                pos += 1
        elif state == "string":
            result.append(char)
            if char == "\\" and nxt:
                result.append(nxt)
                pos += 2
                continue
            if char == '"':
                state = "code"
            pos += 1
        elif state == "char":
            result.append(char)
            if char == "\\" and nxt:
                result.append(nxt)
                pos += 2
                continue
            if char == "'":
                state = "code"
            pos += 1
    return "".join(result)


def tokenize(text: str, filename: str = "<c>") -> list[CToken]:
    """Tokenize full text (comments stripped); no preprocessing."""
    tokens: list[CToken] = []
    for index, line in enumerate(strip_comments(text).splitlines(), start=1):
        tokens.extend(lex_line(line, index, filename))
    tokens.append(CToken(CTokenKind.EOF, "", len(text.splitlines()) + 1, 1, filename))
    return tokens
