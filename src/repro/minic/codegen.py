"""Source-emitting codegen backend for mini-C.

The closure backend (`repro.minic.compile`) removed per-node dispatch but
still pays one Python call per AST node at run time.  This module removes
the calls too: each checked function body is emitted as *Python source
text* — real ``while``/``break``/``continue``, mini-C locals as Python
locals, integer wrapping folded into inline mask expressions, the hot
port-I/O idioms (``inb(PORT)``, ``(inb(PORT) & MASK) == V``, ``i++``)
fused into single statements — then ``compile()``d once per function and
``exec``'d into a per-program namespace.

Semantics are bit-for-bit those of the tree walker (and therefore of the
closure backend): same outcomes, same step counts, same coverage sets,
same fault messages, same log lines and disk effects.  The emitter is a
statement-for-statement transliteration of ``compile._Lowerer``; every
step-batching decision either copies the closure backend's or is one of
the two provably neutral extensions below:

* the per-iteration ``coverage.update(origins)`` of a loop is skipped:
  the loop statement's entry prologue has already added the *same*
  ``origins`` frozenset unconditionally, so every later update of it is
  a no-op;
* a loop's per-iteration step is batched into the condition expression's
  entry step (with the usual ``budget + 1`` fix-up): nothing with a side
  effect sits between the two consumes in the reference backends.

Static name resolution replaces the interpreter's scope-chain scan:
mini-C block scoping is lexical (a ``LocalDecl`` becomes visible to the
statements after it, shadowing outer bindings), so each local maps to a
mangled Python local at emit time.  One construct genuinely needs the
dynamic scan — a ``switch`` whose case groups declare locals, where
jumping into a later group skips the declaration — and any function
containing it falls back to the closure backend (both backends are
bit-identical, so mixing is safe).  A per-call arity guard routes calls
with unexpected argument counts to the closure function for the same
reason.

Caching: the compiled code object (plus its constant pool) is cached
*on the declaration node* keyed by an environment fingerprint (function
signatures and global types — everything emission and sema annotation
of an unchanged declaration can depend on), so
`repro.minic.incremental.CampaignCompiler` splices reuse unmutated
functions' code objects across mutants; the assembled per-program
function table is cached on the program like the closure backend's.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.minic import ast
from repro.minic.builtins import BUILTIN_IMPLS
from repro.minic.sema import BUILTIN_SIGNATURES
from repro.minic.ctypes import (
    ArrayType,
    CType,
    IntCType,
    PointerType,
    S32,
    StructType,
    U8,
    U16,
    U32,
    VOID,
    usual_arithmetic,
)
from repro.minic.errors import InterpreterBug, MachineFault, StepBudgetExceeded
from repro.minic.interp import (
    Interpreter,
    _BreakSignal,
    _ContinueSignal,
    _element_int_type,
)
from repro.minic.compile import (
    BACKENDS,
    _ARITH_OPS,
    _COMPARE_OPS,
    _PORT_READS,
    _PORT_WRITES,
    _const_of,
    _div,
    _fold_binary,
    _mod,
    _pointer_binary,
    _pointerish_compare,
    _Lowerer,
    _static_coerce,
    _truthy,
    _wrap_fn,
    ClosureInterpreter,
    compiled_functions,
)
from repro.minic.program import CompiledProgram
from repro.minic.values import CArray, CPointer, CStructValue

_VOID_TYPE = type(VOID)

#: Matches codes that are plain names or integer literals — safe to use
#: verbatim without a temporary.
_SIMPLE_RE = re.compile(r"\A-?[A-Za-z0-9_]+\Z")


class _Unsupported(Exception):
    """Emission cannot preserve dynamic semantics; use the closure path."""


# -- runtime support for emitted code -----------------------------------------


def _exceeded(budget: int) -> StepBudgetExceeded:
    return StepBudgetExceeded(f"step budget of {budget} exhausted")


#: Shared sentinel appended to ``rt._scopes`` per emitted call.  Only its
#: presence (the kernel stack-depth clamp) is observable: emitted code
#: resolves every name statically and never reads scope frames.
_FRAME: list = []


def _binary_slow(rt, op, left_v, right_v, common_wrap, result_wrap, result_type):
    """Non-int operands of a binary op — the closure backend's fallbacks."""
    if isinstance(left_v, CPointer) or isinstance(right_v, CPointer):
        return _pointer_binary(rt, op, left_v, right_v)
    if (
        left_v is None
        or right_v is None
        or isinstance(left_v, str)
        or isinstance(right_v, str)
    ):
        return _pointerish_compare(rt, op, left_v, right_v)
    if op in _COMPARE_OPS:
        return int(
            _COMPARE_OPS[op](common_wrap(int(left_v)), common_wrap(int(right_v)))
        )
    if op in ("<<", ">>"):
        left_i, right_i = int(left_v), int(right_v)
        amount = right_i & 31
        base_v = result_wrap(left_i)
        if op == "<<":
            return result_wrap(base_v << amount)
        if result_type.signed:
            return base_v >> amount  # arithmetic shift
        return result_wrap((base_v & ((1 << result_type.width) - 1)) >> amount)
    arithmetic = _ARITH_OPS[op]
    return result_wrap(
        arithmetic(common_wrap(int(left_v)), common_wrap(int(right_v)))
    )


#: Base namespace every emitted function is exec'd against.
_BASE_HELPERS = {
    "_exceeded": _exceeded,
    "_truthy": _truthy,
    "_MachineFault": MachineFault,
    "_InterpreterBug": InterpreterBug,
    "_BreakSignal": _BreakSignal,
    "_ContinueSignal": _ContinueSignal,
    "_CPointer": CPointer,
    "_CArray": CArray,
    "_CStructValue": CStructValue,
    "_binary_slow": _binary_slow,
    "_div": _div,
    "_mod": _mod,
    "_element_int_type": _element_int_type,
    "_FRAME": _FRAME,
}


# -- static program environment ------------------------------------------------


def _type_key(ctype: CType | None) -> str:
    return "?" if ctype is None else ctype.describe()


def _signature_key(decl: ast.FuncDecl) -> tuple:
    return (
        _type_key(decl.return_type),
        tuple(_type_key(param.ctype) for param in decl.params),
        decl.variadic,
    )


class _Env:
    """Everything a function's emitted code may depend on beyond its AST.

    ``key`` fingerprints the environment: if it matches, a cached code
    object emitted against a previous program is still valid (sema
    annotations of an unchanged declaration are a deterministic function
    of the declaration and this environment).
    """

    def __init__(self, program: CompiledProgram):
        self.function_decls = {
            decl.name: decl
            for decl in program.unit.decls
            if isinstance(decl, ast.FuncDecl) and decl.body is not None
        }
        self.global_types = {
            decl.name: decl.var_type
            for decl in program.unit.decls
            if isinstance(decl, ast.GlobalDecl)
        }
        self.key = (
            tuple(
                sorted(
                    (name, _signature_key(decl))
                    for name, decl in self.function_decls.items()
                )
            ),
            tuple(
                sorted(
                    (name, _type_key(ctype))
                    for name, ctype in self.global_types.items()
                )
            ),
        )


# -- emitted values ------------------------------------------------------------


class _Val:
    """A compiled expression: Python code plus static facts about it.

    ``pure`` — evaluating (or discarding) the code has no effect and
    cannot raise; ``known_int`` — the value is statically known to be a
    Python int, so dynamic type dispatch may be skipped; ``bool_code`` —
    for comparison results, the underlying boolean expression (pure,
    multi-eval safe), letting conditions skip the 1/0 round-trip;
    ``itype`` — an int type whose value range is known to contain the
    value (cells are stored pre-wrapped), letting wraps into any wider
    range be skipped entirely.
    """

    __slots__ = ("code", "pure", "known_int", "bool_code", "itype")

    def __init__(
        self,
        code: str,
        pure: bool = False,
        known_int: bool = False,
        bool_code: str | None = None,
        itype: IntCType | None = None,
    ):
        self.code = code
        self.pure = pure
        self.known_int = known_int or itype is not None
        self.bool_code = bool_code
        self.itype = itype


def _fits(inner: IntCType | None, outer: IntCType) -> bool:
    """Whether every ``inner``-wrapped value is ``outer``-wrap invariant."""
    return (
        inner is not None
        and inner.min_value >= outer.min_value
        and inner.max_value <= outer.max_value
    )


_INT_LITERAL_RE = re.compile(r"\A-?\d+\Z")


def _literal_int(code: str) -> int | None:
    """The int a code string literally denotes, or None."""
    if _INT_LITERAL_RE.match(code):
        return int(code)
    return None


class _BranchScope:
    """Saves/restores an emitter's covered-lines set around a region
    whose execution is conditional (see ``_FunctionEmitter.cov``)."""

    __slots__ = ("emitter", "saved")

    def __init__(self, emitter):
        self.emitter = emitter

    def __enter__(self):
        self.saved = set(self.emitter._covered)

    def __exit__(self, *exc):
        self.emitter._covered = self.saved


def _has_loop_continue(stmt: ast.Stmt | None) -> bool:
    """Whether ``stmt`` contains a ``continue`` binding to the current loop."""
    if stmt is None:
        return False
    if isinstance(stmt, ast.Continue):
        return True
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        return False  # inner loops capture their own continues
    if isinstance(stmt, ast.Block):
        return any(_has_loop_continue(inner) for inner in stmt.statements)
    if isinstance(stmt, ast.If):
        return _has_loop_continue(stmt.then) or _has_loop_continue(stmt.otherwise)
    if isinstance(stmt, ast.Switch):
        return any(
            _has_loop_continue(inner)
            for group in stmt.groups
            for inner in group.body
        )
    return False

# -- the emitter ---------------------------------------------------------------


class _FunctionEmitter:
    """Emit one function body as Python source (see module docstring)."""

    def __init__(self, decl: ast.FuncDecl, env: _Env):
        self.decl = decl
        self.env = env
        self.pyname = f"_mc_{decl.name}"
        self.lines: list[str] = []
        self.indent = 0
        self.consts: dict[str, object] = {}
        self._const_ids: dict[int, str] = {}
        self._tmp = 0
        self._scope_id = 0
        self._scopes: list[dict[str, tuple[str, CType | None]]] = []
        #: (file, line) pairs guaranteed to be in the coverage set at the
        #: current emission point (updates of subsets are no-ops).
        self._covered: set[tuple[str, int]] = set()
        #: port -> hoisted bus read-handler name (fused reads bypass
        #: IOBus.read_port when the bus published a handler).
        self._port_hoists: dict[int, str] = {}
        self._hoist_mark = 0
        #: innermost-last ("loop"|"switch", break mode, continue mode);
        #: modes are "py" (native break/continue) or "signal" (raise).
        self._targets: list[tuple[str, str, str | None]] = []

    # -- infrastructure ----------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1

    def temp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def const(self, obj, hint: str = "c") -> str:
        name = self._const_ids.get(id(obj))
        if name is None:
            name = f"_{hint}{len(self.consts)}"
            self.consts[name] = obj
            self._const_ids[id(obj)] = name
        return name

    def steps(self, count: int) -> None:
        """One batched step consume; crossings always leave ``budget + 1``."""
        if count <= 0:
            return
        self.line(f"rt.steps = _s = rt.steps + {count}")
        if count > 1:
            self.line(
                "if _s > _budget: rt.steps = _budget + 1; "
                "raise _exceeded(_budget)"
            )
        else:
            self.line("if _s > _budget: raise _exceeded(_budget)")

    def cov(self, origins) -> None:
        """Coverage update; skipped when provably idempotent.

        ``_covered`` tracks lines some earlier update on every path to
        this point has already added (coverage is monotone, and if that
        earlier update was skipped by a budget crossing, this code never
        runs either).  Conditional regions save/restore it (:meth:`branch`).
        """
        if origins and not origins <= self._covered:
            self.line(f"_cov.update({self.const(origins, 'o')})")
        self._covered |= origins

    def branch(self) -> "_BranchScope":
        """Context manager for conditionally-executed emission regions."""
        return _BranchScope(self)

    def materialize(self, val: _Val, own: bool = False) -> str:
        """A name (or literal) holding ``val``, evaluated exactly here.

        ``own`` forces a fresh temporary the caller may reassign.
        """
        if not own and _SIMPLE_RE.match(val.code):
            return val.code
        name = self.temp()
        self.line(f"{name} = {val.code}")
        return name

    def discard(self, val: _Val) -> None:
        if not val.pure:
            self.line(val.code)

    def truthy_code(self, val: _Val) -> str:
        """A boolean Python expression mirroring ``Interpreter._truthy``."""
        if val.bool_code is not None:
            return f"({val.bool_code})"
        if val.known_int:
            return f"({val.code} != 0)"
        name = self.materialize(val)
        return f"(({name} != 0) if type({name}) is int else _truthy({name}))"

    def eq_wrap_of(
        self, ctype: IntCType, code: str, const_value: int | None = None
    ) -> str:
        """Wrap for ``==``/``!=`` operands: mask-only.

        ``wrap`` is a bijection on the 2**width residue classes, so
        equality of wrapped values is equivalent to equality of the
        masked residues — the sign adjustment may be skipped.
        """
        mask = (1 << ctype.width) - 1
        literal = _literal_int(code) if const_value is None else const_value
        if literal is not None:
            return repr(literal & mask)
        return f"({code} & {hex(mask)})"

    def wrap_of(self, ctype: IntCType, code: str, const_value: int | None = None) -> str:
        """Python expression for ``ctype.wrap(code)``; folds literals."""
        literal = _literal_int(code) if const_value is None else const_value
        if literal is not None:
            return repr(ctype.wrap(literal))
        if not ctype.signed:
            return f"({code} & {hex((1 << ctype.width) - 1)})"
        return f"{self.const(_wrap_fn(ctype), 'w')}({code})"

    def wrap_name(self, ctype: IntCType, name: str, itype: IntCType | None = None) -> str:
        """Wrap over a *name* (multi-eval safe): call-free when in range.

        ``wrap`` is the identity exactly on ``[min_value, max_value]``:
        a value known to lie in ``itype``'s range needs no code at all,
        a literal folds, and anything else gets a range test instead of
        a function call — out-of-range falls back to the wrap const.
        """
        if _fits(itype, ctype):
            return name
        literal = _literal_int(name)
        if literal is not None:
            return repr(ctype.wrap(literal))
        if not ctype.signed:
            return f"({name} & {hex((1 << ctype.width) - 1)})"
        wrap = self.const(_wrap_fn(ctype), "w")
        return (
            f"({name} if {ctype.min_value} <= {name} <= {ctype.max_value} "
            f"else {wrap}({name}))"
        )

    def wrap_into(self, ctype: IntCType, code: str) -> str:
        """Emit ``code`` into a temp and return its wrapped value (a pure
        expression over the temp)."""
        literal = _literal_int(code)
        if literal is not None:
            return repr(ctype.wrap(literal))
        name = self.temp()
        self.line(f"{name} = {code}")
        return self.wrap_name(ctype, name)

    def coerce_expr(
        self,
        ctype: CType | None,
        name: str,
        itype: IntCType | None = None,
    ) -> str:
        """Mirror ``compile._coerce_fn`` over a name (multi-eval safe)."""
        if ctype is None:
            return name
        if isinstance(ctype, IntCType):
            literal = _literal_int(name)
            if literal is not None:
                return repr(ctype.wrap(literal))
            if _fits(itype, ctype):
                return name
            wrapped = self.wrap_name(ctype, name)
            ct = self.const(ctype, "ct")
            return f"({wrapped} if type({name}) is int else rt._coerce({name}, {ct}))"
        return f"rt._coerce({name}, {self.const(ctype, 'ct')})"

    def zero_expr(self, ctype: CType | None) -> str:
        if isinstance(ctype, IntCType):
            return "0"
        if isinstance(ctype, PointerType):
            return "None"
        return f"rt._zero_value({self.const(ctype, 'ct')})"

    def static_int(self, expr: ast.Expr) -> tuple[int, int] | None:
        """(value, walker steps) for a constant integer subtree.

        Extends ``compile._const_of`` to whole literal-only expression
        trees (the shape every macro-expanded driver constant like
        ``(STAT_BUSY | STAT_READY)`` takes): the value is folded with the
        walker's exact wrap semantics and the step count is the walker's
        exact consume count for the subtree — so a fold is batched with
        the same neutrality argument as a single literal.  Anything
        side-effecting, fault-prone (division by zero) or non-int
        reports None.
        """
        if isinstance(expr, ast.IntLit):
            return (expr.value if expr.unsigned else S32.wrap(expr.value)), 1
        if isinstance(expr, ast.CharLit):
            return expr.value, 1
        if isinstance(expr, ast.Unary) and expr.op in ("-", "~", "!"):
            assert expr.operand is not None
            inner = self.static_int(expr.operand)
            if inner is None:
                return None
            value, steps = inner
            result_type = expr.ctype if isinstance(expr.ctype, IntCType) else S32
            if expr.op == "-":
                folded = result_type.wrap(-value)
            elif expr.op == "~":
                folded = result_type.wrap(~value)
            else:
                folded = 0 if value != 0 else 1
            return folded, steps + 1
        if isinstance(expr, ast.Cast) and isinstance(expr.target_type, IntCType):
            assert expr.operand is not None
            inner = self.static_int(expr.operand)
            if inner is None:
                return None
            value, steps = inner
            return expr.target_type.wrap(value), steps + 1
        if isinstance(expr, ast.Binary):
            assert expr.left is not None and expr.right is not None
            op = expr.op
            left = self.static_int(expr.left)
            if left is None:
                return None
            left_v, left_s = left
            if op in ("&&", "||"):
                # Short-circuiting is static too: the walker's step count
                # depends only on the (folded) left value.
                if op == "&&" and left_v == 0:
                    return 0, left_s + 1
                if op == "||" and left_v != 0:
                    return 1, left_s + 1
                right = self.static_int(expr.right)
                if right is None:
                    return None
                right_v, right_s = right
                return (1 if right_v != 0 else 0), left_s + right_s + 1
            right = self.static_int(expr.right)
            if right is None:
                return None
            right_v, right_s = right
            left_ct = expr.left.ctype
            right_ct = expr.right.ctype
            left_t = left_ct if isinstance(left_ct, IntCType) else S32
            right_t = right_ct if isinstance(right_ct, IntCType) else S32
            common = usual_arithmetic(left_t, right_t)
            result_type = expr.ctype if isinstance(expr.ctype, IntCType) else S32
            folded, fold_error = _fold_binary(
                op, left_v, right_v,
                _wrap_fn(common), _wrap_fn(result_type), result_type,
            )
            if fold_error is not None:
                return None  # the raising path must run normally
            return folded, left_s + right_s + 1
        return None

    def pure_load(self, expr: ast.Expr) -> tuple[str, IntCType] | None:
        """(name, declared type) when ``expr`` is a fault-free int load.

        An identifier bound to an int-typed local or global consumes one
        step and cannot fault or touch any state, so its step may be
        batched into an adjacent consume and its name used directly.
        """
        if not isinstance(expr, ast.Ident):
            return None
        kind, payload, declct = self.resolve(expr.name)
        if not isinstance(declct, IntCType):
            return None
        if kind == "local":
            return payload, declct
        if kind == "global":
            return f"_glb[{expr.name!r}]", declct
        return None

    # -- static scopes -----------------------------------------------------

    def push_scope(self) -> None:
        self._scopes.append({})

    def pop_scope(self) -> None:
        self._scopes.pop()

    def bind(self, name: str, ctype: CType | None) -> str:
        self._scope_id += 1
        py = f"_v{self._scope_id}_{name}"
        self._scopes[-1][name] = (py, ctype)
        return py

    def resolve(self, name: str) -> tuple[str, str | None, CType | None]:
        """("local"|"global"|"function"|"unbound", payload, declared type)."""
        for scope in reversed(self._scopes):
            if name in scope:
                py, ctype = scope[name]
                return ("local", py, ctype)
        if name in self.env.global_types:
            return ("global", name, self.env.global_types[name])
        if name in self.env.function_decls or name in BUILTIN_IMPLS:
            return ("function", name, None)
        return ("unbound", None, None)

    @staticmethod
    def may_decay(ctype: CType | None) -> bool:
        """Whether a cell of this declared type could hold a ``CArray``."""
        return ctype is None or isinstance(ctype, ArrayType)

    # -- the function ------------------------------------------------------

    def emit(self) -> tuple[str, dict[str, object], str]:
        decl = self.decl
        assert decl.body is not None and decl.return_type is not None
        # The per-program bindings (the function table and the closure
        # fallback) are closure cells of a factory: instantiating the
        # cached code object for a new program is one call, no exec.
        self.line("def _factory(_FNS, _fb):")
        self.push()
        self.line(f"def {self.pyname}(rt, _args):")
        self.push()
        # Unexpected arity: the closure backend's zip-binding semantics
        # (missing params stay unbound) are genuinely dynamic — route the
        # whole call there.
        self.line(f"if len(_args) != {len(decl.params)}:")
        self.push()
        self.line("return _fb(rt, _args)")
        self.pop()
        # Mirrors compile._Lowerer's call_function prologue exactly.
        self.line("_scopes = rt._scopes")
        self.line("if len(_scopes) > 48:")
        self.push()
        self.line('raise _MachineFault("kernel stack overflow (runaway recursion)")')
        self.pop()
        self.line("_budget = rt.step_budget")
        self.steps(1)
        self.line("_cov = rt.coverage")
        self.line("_bus = rt.bus")
        self.line("_glb = rt.globals")
        self._hoist_mark = len(self.lines)
        self.push_scope()
        for index, param in enumerate(decl.params):
            py = self.bind(param.name, param.ctype)
            self.line(f"{py} = {self.coerce_expr(param.ctype, f'_args[{index}]')}")
        self.line("_scopes.append(_FRAME)")
        self.line("try:")
        self.push()
        for stmt in decl.body.statements:
            self.emit_stmt(stmt)
        self.emit_default_return()
        self.pop()
        self.line("finally:")
        self.push()
        self.line("_scopes.pop()")
        self.pop()
        self.pop()
        self.line(f"return {self.pyname}")
        self.pop_scope()
        if self._port_hoists:
            pad = "        "  # factory + def body indent
            hoist = [
                pad + "_tl = getattr(_bus, 'trace_limit', 1)",
                pad + "_rdh = getattr(_bus, '_read_handlers', None)",
            ]
            for port, hname in self._port_hoists.items():
                hoist.append(
                    pad + f"{hname} = _rdh.get({port}) "
                    f"if (_tl == 0 and _rdh is not None) else None"
                )
            self.lines[self._hoist_mark : self._hoist_mark] = hoist
        return "\n".join(self.lines) + "\n", self.consts, self.pyname

    def emit_default_return(self) -> None:
        """Fall-through return: ``coerce_return(result=None -> 0)``."""
        rtype = self.decl.return_type
        if isinstance(rtype, _VOID_TYPE):
            self.line("return None")
        elif isinstance(rtype, IntCType):
            self.line("return 0")
        elif isinstance(rtype, PointerType):
            self.line("return None")  # _coerce(0, pointer) is a null pointer
        else:
            self.line(f"return rt._coerce(0, {self.const(rtype, 'ct')})")

    # -- statements --------------------------------------------------------

    def emit_stmt(self, stmt: ast.Stmt, extra: int = 0) -> None:
        """Emit one statement; ``extra`` batches pending steps (an
        enclosing block's entry, whose origins are empty) into the
        statement's own entry consume."""
        origins = stmt.origins
        if isinstance(stmt, ast.Block):
            self.emit_block(stmt, origins, extra)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self.steps(1 + extra)
            self.cov(origins)
            self.discard(self.emit_expr(stmt.expr, drop=True))
        elif isinstance(stmt, ast.EmptyStmt):
            self.steps(1 + extra)
            self.cov(origins)
        elif isinstance(stmt, ast.LocalDecl):
            self.emit_local(stmt, origins, extra)
        elif isinstance(stmt, ast.If):
            self.emit_if(stmt, origins, extra)
        elif isinstance(stmt, ast.While):
            self.emit_while(stmt, origins, extra)
        elif isinstance(stmt, ast.DoWhile):
            self.emit_do_while(stmt, origins, extra)
        elif isinstance(stmt, ast.For):
            self.emit_for(stmt, origins, extra)
        elif isinstance(stmt, ast.Switch):
            self.emit_switch(stmt, origins, extra)
        elif isinstance(stmt, ast.Break):
            self.steps(1 + extra)
            self.cov(origins)
            for kind, break_mode, _ in reversed(self._targets):
                if break_mode == "py":
                    self.line("break")
                else:
                    self.line("raise _BreakSignal()")
                break
            else:
                self.line("raise _BreakSignal()")  # escapes, as the walker's would
        elif isinstance(stmt, ast.Continue):
            self.steps(1 + extra)
            self.cov(origins)
            for kind, _, continue_mode in reversed(self._targets):
                if kind != "loop":
                    continue
                if continue_mode == "py":
                    self.line("continue")
                else:
                    self.line("raise _ContinueSignal()")
                break
            else:
                self.line("raise _ContinueSignal()")
        elif isinstance(stmt, ast.Return):
            self.emit_return(stmt, origins, extra)
        else:
            message = f"unhandled statement {stmt!r}"
            self.line(f"raise _InterpreterBug({message!r})")

    def emit_block(self, stmt: ast.Block, origins, extra: int = 0) -> None:
        if all(isinstance(inner, ast.EmptyStmt) for inner in stmt.statements):
            # `{ ; }` — the walker interleaves consume/update per part.
            # When every part except the last has empty origins (always
            # true for the block's own part — the parser leaves Block
            # origins empty), the interleaved updates are all no-ops, so
            # the consumes batch into one add: any crossing leaves the
            # final (only meaningful) update unexecuted either way.
            parts = [frozenset(origins)] + [
                inner.origins for inner in stmt.statements
            ]
            if all(not part for part in parts[:-1]):
                self.steps(len(parts) + extra)
                self.cov(parts[-1])
                return
            self.steps(1 + extra)
            self.cov(parts[0])
            for inner in stmt.statements:
                self.steps(1)
                self.cov(inner.origins)
            return
        if origins:
            self.steps(1 + extra)
            self.cov(origins)
            carried = 0
        else:
            # The block's entry consume batches into its first statement
            # (block origins are empty, so nothing else would happen
            # between the two consumes).
            carried = 1 + extra
        self.push_scope()
        for index, inner in enumerate(stmt.statements):
            self.emit_stmt(inner, extra=carried if index == 0 else 0)
        self.pop_scope()

    def emit_local(self, stmt: ast.LocalDecl, origins, extra: int = 0) -> None:
        self.steps(1 + extra)
        self.cov(origins)
        ctype = stmt.var_type
        init = stmt.init
        if init is None:
            code = self.zero_expr(ctype)
        elif isinstance(init, ast.InitList):
            if isinstance(ctype, StructType):
                value = self.temp()
                self.line(f"{value} = _CStructValue({ctype.name!r})")
                for field in ctype.fields:
                    self.line(
                        f"{value}.fields[{field.name!r}] = "
                        f"{self.zero_expr(field.ctype)}"
                    )
                for field, item in zip(ctype.fields, init.items):
                    item_v = self.materialize(self.emit_expr(item))
                    ct = self.const(field.ctype, "ct")
                    self.line(
                        f"{value}.fields[{field.name!r}] = "
                        f"rt._coerce({item_v}, {ct})"
                    )
                code = value
            elif isinstance(ctype, ArrayType):
                length = (
                    ctype.length if ctype.length is not None else len(init.items)
                )
                value = self.temp()
                at = self.const(ctype, "ct")
                self.line(
                    f"{value} = _CArray.zeroed(_element_int_type({at}), {length})"
                )
                element = self.const(ctype.element, "ct")
                for index, item in enumerate(init.items):
                    item_v = self.materialize(self.emit_expr(item))
                    self.line(
                        f"{value}.store({index}, rt._coerce({item_v}, {element}))"
                    )
                code = value
            else:
                self.line(
                    'raise _InterpreterBug('
                    '"brace initializer for scalar survived sema")'
                )
                self.bind(stmt.name, ctype)
                return
        else:
            value = self.emit_expr(init)
            code = self.coerce_expr(
                ctype, self.materialize(value), value.itype
            )
        py = self.bind(stmt.name, ctype)
        self.line(f"{py} = {code}")

    def emit_if(self, stmt: ast.If, origins, extra: int = 0) -> None:
        assert stmt.cond is not None and stmt.then is not None
        self.steps(1 + extra)
        self.cov(origins)
        cond = self.emit_expr(stmt.cond)
        self.line(f"if {self.truthy_code(cond)}:")
        self.push()
        with self.branch():
            self.emit_stmt(stmt.then)
        self.pop()
        if stmt.otherwise is not None:
            self.line("else:")
            self.push()
            with self.branch():
                self.emit_stmt(stmt.otherwise)
            self.pop()

    def emit_while(self, stmt: ast.While, origins, extra: int = 0) -> None:
        assert stmt.cond is not None and stmt.body is not None
        self.steps(1 + extra)
        self.cov(origins)
        self.line("while True:")
        self.push()
        # Iteration step batched into the condition's entry consume; the
        # iteration coverage update is skipped (same frozenset as the
        # entry's — always idempotent).  See the module docstring.
        cond = self.emit_expr(stmt.cond, extra=1)
        self.line(f"if not {self.truthy_code(cond)}:")
        self.push()
        self.line("break")
        self.pop()
        self._targets.append(("loop", "py", "py"))
        with self.branch():
            self.emit_stmt(stmt.body)
        self._targets.pop()
        self.pop()

    def _emit_loop_body(self, body: ast.Stmt) -> None:
        """Body of a do-while/for loop: continue must not skip the tail."""
        if _has_loop_continue(body):
            self.line("try:")
            self.push()
            self._targets.append(("loop", "py", "signal"))
            with self.branch():
                self.emit_stmt(body)
            self._targets.pop()
            self.pop()
            self.line("except _ContinueSignal:")
            self.push()
            self.line("pass")
            self.pop()
        else:
            self._targets.append(("loop", "py", "py"))
            with self.branch():
                self.emit_stmt(body)
            self._targets.pop()

    def emit_do_while(self, stmt: ast.DoWhile, origins, extra: int = 0) -> None:
        assert stmt.cond is not None and stmt.body is not None
        self.steps(1 + extra)
        self.cov(origins)
        self.line("while True:")
        self.push()
        self.steps(1)  # iteration; coverage update idempotent, skipped
        self._emit_loop_body(stmt.body)
        cond = self.emit_expr(stmt.cond)
        self.line(f"if not {self.truthy_code(cond)}:")
        self.push()
        self.line("break")
        self.pop()
        self.pop()

    def emit_for(self, stmt: ast.For, origins, extra: int = 0) -> None:
        assert stmt.body is not None
        self.steps(1 + extra)
        self.cov(origins)
        self.push_scope()
        if stmt.init is not None:
            self.emit_stmt(stmt.init)
        self.line("while True:")
        self.push()
        if stmt.cond is not None:
            cond = self.emit_expr(stmt.cond, extra=1)
            self.line(f"if not {self.truthy_code(cond)}:")
            self.push()
            self.line("break")
            self.pop()
        else:
            self.steps(1)  # iteration step still consumed
        self._emit_loop_body(stmt.body)
        if stmt.step is not None:
            self.discard(self.emit_expr(stmt.step, drop=True))
        self.pop()
        self.pop_scope()

    def emit_switch(self, stmt: ast.Switch, origins, extra: int = 0) -> None:
        assert stmt.expr is not None
        for group in stmt.groups:
            if any(isinstance(inner, ast.LocalDecl) for inner in group.body):
                # Jumping into a later group past the declaration leaves
                # the name dynamically unbound — only the scope-dict
                # semantics of the reference backends model that.
                raise _Unsupported("switch group declares a local")
        self.steps(1 + extra)
        self.cov(origins)
        selector = self.materialize(self.emit_expr(stmt.expr))
        sel = self.temp()
        self.line(f"{sel} = int({selector})")
        if not stmt.groups:
            return
        default_index = next(
            (
                index
                for index, group in enumerate(stmt.groups)
                if any(value is None for value in group.values)
            ),
            -1,
        )
        conds = []
        for index, group in enumerate(stmt.groups):
            values = [value for value in group.values if value is not None]
            if values:
                conds.append(
                    (" or ".join(f"{sel} == {value}" for value in values), index)
                )
        start = self.temp()
        if conds:
            for position, (cond, index) in enumerate(conds):
                self.line(f"{'if' if position == 0 else 'elif'} {cond}:")
                self.push()
                self.line(f"{start} = {index}")
                self.pop()
            self.line("else:")
            self.push()
            self.line(f"{start} = {default_index}")
            self.pop()
        else:
            if default_index < 0:
                return
            self.line(f"{start} = {default_index}")
        self.line(f"if {start} >= 0:")
        self.push()
        self.line("try:")
        self.push()
        self._targets.append(("switch", "signal", None))
        for index, group in enumerate(stmt.groups):
            self.line(f"if {start} <= {index}:")
            self.push()
            mark = len(self.lines)
            with self.branch():
                self.cov(group.origins)
                for inner in group.body:
                    self.emit_stmt(inner)
            if len(self.lines) == mark:
                self.line("pass")
            self.pop()
        self._targets.pop()
        self.pop()
        self.line("except _BreakSignal:")
        self.push()
        self.line("pass")
        self.pop()
        self.pop()

    def emit_return(self, stmt: ast.Return, origins, extra: int = 0) -> None:
        self.steps(1 + extra)
        self.cov(origins)
        rtype = self.decl.return_type
        returns_void = isinstance(rtype, _VOID_TYPE)
        if stmt.value is None:
            if returns_void:
                self.line("return None")
            else:
                self.emit_default_return()
            return
        value = self.emit_expr(stmt.value)
        if returns_void:
            self.discard(value)
            self.line("return None")
            return
        if value.known_int:
            name = self.materialize(value)
            if isinstance(rtype, IntCType):
                self.line(f"return {self.wrap_of(rtype, name)}")
            else:
                self.line(f"return {self.coerce_expr(rtype, name)}")
            return
        name = self.materialize(value, own=True)
        self.line(f"if {name} is None:")
        self.push()
        self.line(f"{name} = 0")
        self.pop()
        self.line(f"return {self.coerce_expr(rtype, name)}")

    # -- expressions -------------------------------------------------------

    def emit_expr(self, expr: ast.Expr, extra: int = 0, drop: bool = False) -> _Val:
        """Emit ``expr``; the returned code is consumed exactly once.

        ``extra`` batches that many pending steps (a loop's iteration
        step) into the expression's entry consume; ``drop`` marks the
        value as unused so fused forms may skip dead temporaries.
        """
        if isinstance(expr, ast.IntLit):
            self.steps(1 + extra)
            value = expr.value if expr.unsigned else S32.wrap(expr.value)
            return _Val(repr(value), pure=True, known_int=True)
        if isinstance(expr, ast.CharLit):
            self.steps(1 + extra)
            return _Val(repr(expr.value), pure=True, known_int=True)
        if isinstance(expr, ast.StrLit):
            self.steps(1 + extra)
            return _Val(repr(expr.value), pure=True)
        if isinstance(expr, (ast.Unary, ast.Binary, ast.Cast)):
            # Whole-subtree constant folding (macro-expanded constants):
            # the batched add carries the subtree's exact walker steps.
            static = self.static_int(expr)
            if static is not None:
                value, total = static
                self.steps(total + extra)
                return _Val(repr(value), pure=True, known_int=True)
        if isinstance(expr, ast.Ident):
            return self.emit_ident(expr, extra)
        if isinstance(expr, ast.Call):
            return self.emit_call(expr, extra)
        if isinstance(expr, ast.Index):
            return self.emit_index(expr, extra)
        if isinstance(expr, ast.Member):
            return self.emit_member(expr, extra)
        if isinstance(expr, ast.Unary):
            return self.emit_unary(expr, extra, drop)
        if isinstance(expr, ast.Postfix):
            return self.emit_postfix(expr, extra, drop)
        if isinstance(expr, ast.Binary):
            return self.emit_binary(expr, extra)
        if isinstance(expr, ast.Assign):
            return self.emit_assign(expr, extra)
        if isinstance(expr, ast.Ternary):
            return self.emit_ternary(expr, extra)
        if isinstance(expr, ast.Cast):
            return self.emit_cast(expr, extra)
        if isinstance(expr, ast.Comma):
            self.steps(1 + extra)
            self.discard(self.emit_expr(expr.left))
            return self.emit_expr(expr.right)
        self.steps(extra)
        message = f"unhandled expression {expr!r}"
        self.line(f"raise _InterpreterBug({message!r})")
        return _Val("None", pure=True)

    def emit_ident(self, expr: ast.Ident, extra: int = 0) -> _Val:
        name = expr.name
        kind, payload, declct = self.resolve(name)
        self.steps(1 + extra)
        if kind == "local":
            if self.may_decay(declct):
                value = self.temp()
                self.line(
                    f"{value} = _CPointer({payload}, 0) "
                    f"if {payload}.__class__ is _CArray else {payload}"
                )
                return _Val(value, pure=True)
            return _Val(
                payload,
                pure=True,
                itype=declct if isinstance(declct, IntCType) else None,
            )
        if kind == "global":
            value = self.temp()
            self.line(f"{value} = _glb[{name!r}]")
            if self.may_decay(declct):
                self.line(f"if {value}.__class__ is _CArray:")
                self.push()
                self.line(f"{value} = _CPointer({value}, 0)")
                self.pop()
                return _Val(value, pure=True)
            return _Val(
                value,
                pure=True,
                itype=declct if isinstance(declct, IntCType) else None,
            )
        if kind == "function":
            return _Val(f"rt.function_address({name!r})", pure=True, known_int=True)
        message = f"unbound identifier {name!r}"
        self.line(f"raise _InterpreterBug({message!r})")
        return _Val("None", pure=True)

    # -- calls -------------------------------------------------------------

    def match_port_read(self, expr: ast.Expr) -> tuple[int, int, int] | None:
        """(port, size, steps) when ``expr`` is ``inb/inw/inl(<const>)``.

        ``steps`` is the walker's consume count for the whole call:
        entry + the (folded) port argument subtree + builtin + bus read.
        """
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.callee, ast.Ident)
            and expr.callee.name in _PORT_READS
            and expr.callee.name not in self.env.function_decls
            and len(expr.args) == 1
        ):
            return None
        signature = BUILTIN_SIGNATURES.get(expr.callee.name)
        if signature is None or len(signature.params) != 1:
            return None
        static = self.static_int(expr.args[0])
        if static is None:
            return None
        value, arg_steps = static
        ok, port_value = _static_coerce(signature.params[0], value)
        if not ok:
            return None
        return int(port_value), _PORT_READS[expr.callee.name], 3 + arg_steps

    def match_masked_port_read(self, expr: ast.Expr):
        """Mirror of ``compile._Lowerer._match_masked_port_read``, with
        constant *subtrees* (macro-expanded masks) recognised too."""
        matched = self.match_port_read(expr)
        if matched is not None:
            port, size, steps = matched
            return steps, port, size, None
        if not (
            isinstance(expr, ast.Binary)
            and expr.op in _ARITH_OPS
            and expr.left is not None
            and expr.right is not None
        ):
            return None
        for read_side, const_side, read_left in (
            (expr.left, expr.right, True),
            (expr.right, expr.left, False),
        ):
            matched = self.match_port_read(read_side)
            if matched is None:
                continue
            static = self.static_int(const_side)
            if static is None:
                return None
            literal, const_steps = static
            port, size, read_steps = matched
            left_ct = expr.left.ctype
            right_ct = expr.right.ctype
            left_t = left_ct if isinstance(left_ct, IntCType) else S32
            right_t = right_ct if isinstance(right_ct, IntCType) else S32
            common = usual_arithmetic(left_t, right_t)
            result_type = expr.ctype if isinstance(expr.ctype, IntCType) else S32
            transform = (
                expr.op, common.wrap(literal), common, result_type, read_left
            )
            return 1 + read_steps + const_steps, port, size, transform
        return None

    def port_read_code(self, port: int, size: int) -> str:
        """A fused port read: the hoisted per-port bus handler when one
        exists (same value and side effects as ``read_port``, without
        the per-access decode), else the bus method."""
        hname = self._port_hoists.get(port)
        if hname is None:
            hname = f"_h{len(self._port_hoists)}"
            self._port_hoists[port] = hname
        mask = (1 << size) - 1
        return (
            f"(({hname}({size}) & {mask}) if {hname} is not None "
            f"else _bus.read_port({port}, {size}))"
        )

    def arith_code(self, op: str, a: str, b: str) -> str:
        if op == "/":
            return f"_div({a}, {b})"
        if op == "%":
            return f"_mod({a}, {b})"
        return f"({a} {op} {b})"

    def masked_read_code(
        self, raw: str, transform, raw_itype: IntCType | None = None
    ) -> str:
        if transform is None:
            return raw
        op, wrapped_literal, common, result_type, read_left = transform
        if (
            op == "&"  # commutative, so operand order is irrelevant
            and _fits(raw_itype, common)
            and 0 <= wrapped_literal <= result_type.max_value
        ):
            return f"({raw} & {wrapped_literal})"  # every wrap an identity
        a = self.wrap_name(common, raw, raw_itype)
        b = repr(wrapped_literal)
        inner = self.arith_code(op, a, b) if read_left else self.arith_code(op, b, a)
        return self.wrap_of(result_type, inner)

    def emit_call(self, expr: ast.Call, extra: int = 0) -> _Val:
        if not isinstance(expr.callee, ast.Ident):
            self.steps(extra)
            self.line(
                'raise AssertionError('
                '"call of a non-identifier callee survived sema")'
            )
            return _Val("None", pure=True)
        name = expr.callee.name
        builtin = BUILTIN_IMPLS.get(name)
        if builtin is not None and name not in self.env.function_decls:
            signature = BUILTIN_SIGNATURES.get(name)
            params = signature.params if signature is not None else ()

            matched = self.match_port_read(expr)
            if matched is not None:
                port, size, read_steps = matched
                self.steps(read_steps + extra)
                return _Val(
                    self.port_read_code(port, size),
                    itype={8: U8, 16: U16, 32: U32}[size],
                )

            if name in _PORT_WRITES and len(expr.args) == 2 and len(params) == 2:
                port_static = self.static_int(expr.args[1])
                if port_static is not None:
                    ok, port_value = _static_coerce(params[1], port_static[0])
                    if ok:
                        port = int(port_value)
                        size, value_mask = _PORT_WRITES[name]
                        value_static = self.static_int(expr.args[0])
                        if value_static is not None:
                            ok, coerced = _static_coerce(
                                params[0], value_static[0]
                            )
                            if ok:
                                # Whole call static: one batched add (the
                                # value and port subtrees are pure), one
                                # bus write with the wire value folded.
                                self.steps(
                                    1 + extra + value_static[1]
                                    + port_static[1] + 2
                                )
                                wire_value = int(coerced) & value_mask
                                self.line(
                                    f"_bus.write_port({port}, "
                                    f"{wire_value}, {size})"
                                )
                                return _Val("None", pure=True)
                        self.steps(1 + extra)
                        wire = self.materialize(
                            self.emit_expr(expr.args[0]), own=True
                        )
                        # port argument subtree + builtin + bus_write
                        self.steps(port_static[1] + 2)
                        self.line(f"{wire} = {self.coerce_expr(params[0], wire)}")
                        self.line(
                            f"_bus.write_port({port}, "
                            f"int({wire}) & {value_mask:#x}, {size})"
                        )
                        return _Val("None", pure=True)

            #: Per-arg (value, walker steps) — int subtrees via
            #: static_int, string literals via _const_of.
            consts: list[tuple[object, int] | None] = []
            for arg in expr.args:
                static = self.static_int(arg)
                if static is not None:
                    consts.append(static)
                    continue
                is_const, value = _const_of(arg)
                consts.append((value, 1) if is_const else None)
            static_args = []
            static_steps = 0
            all_static = True
            for index, entry in enumerate(consts):
                if entry is None:
                    all_static = False
                    break
                value, arg_steps = entry
                ok, coerced = _static_coerce(
                    params[index] if index < len(params) else None, value
                )
                if not ok:
                    all_static = False
                    break
                static_args.append(coerced)
                static_steps += arg_steps
            bi = self.const(builtin, "b")
            if all_static:
                self.steps(static_steps + 2 + extra)
                args_code = ", ".join(repr(value) for value in static_args)
                return _Val(f"{bi}(rt, [{args_code}])")

            self.steps(1 + extra)
            entries = []
            for entry, arg in zip(consts, expr.args):
                if entry is not None:
                    value, arg_steps = entry
                    self.steps(arg_steps)
                    entries.append((True, value, None))
                else:
                    entries.append(
                        (False, None, self.materialize(self.emit_expr(arg)))
                    )
            self.steps(1)
            parts = []
            for index, (is_const, value, varname) in enumerate(entries):
                param = (
                    params[index]
                    if signature is not None and index < len(params)
                    else None
                )
                if param is None:
                    parts.append(repr(value) if is_const else varname)
                elif is_const:
                    ok, coerced = _static_coerce(param, value)
                    if ok:
                        parts.append(repr(coerced))
                    else:
                        ct = self.const(param, "ct")
                        parts.append(f"rt._coerce({value!r}, {ct})")
                else:
                    parts.append(self.coerce_expr(param, varname))
            return _Val(f"{bi}(rt, [{', '.join(parts)}])")

        if name not in self.env.function_decls:
            self.steps(1 + extra)
            for arg in expr.args:
                self.discard(self.emit_expr(arg))
            message = f"call of undefined function {name!r}"
            self.line(f"raise _InterpreterBug({message!r})")
            return _Val("None", pure=True)

        decl = self.env.function_decls[name]
        self.steps(1 + extra)
        arg_info = []
        for arg in expr.args:
            value = self.emit_expr(arg)
            arg_info.append(
                (self.materialize(value), arg.ctype, value.known_int)
            )
        codes = []
        for varname, ctype, known in arg_info:
            if known or isinstance(ctype, IntCType):
                codes.append(varname)
            else:
                codes.append(
                    f"({varname}.copy() "
                    f"if {varname}.__class__ is _CStructValue else {varname})"
                )
        return_type = decl.return_type
        return _Val(
            f"_FNS[{name!r}](rt, [{', '.join(codes)}])",
            itype=return_type if isinstance(return_type, IntCType) else None,
        )

    # -- loads -------------------------------------------------------------

    def emit_index(self, expr: ast.Index, extra: int = 0) -> _Val:
        assert expr.base is not None and expr.index is not None
        self.steps(1 + extra)
        base = self.materialize(self.emit_expr(expr.base))
        index_v = self.materialize(self.emit_expr(expr.index))
        idx = self.temp()
        self.line(f"{idx} = int({index_v})")
        result = self.temp()
        self.line(f"if {base}.__class__ is _CPointer:")
        self.push()
        self.line(f"{result} = {base}.load({idx})")
        self.pop()
        self.line(f"elif isinstance({base}, str):")
        self.push()
        self.line(f"if not 0 <= {idx} <= len({base}):")
        self.push()
        self.line('raise _MachineFault("string index out of bounds")')
        self.pop()
        self.line(f"{result} = ord({base}[{idx}]) if {idx} < len({base}) else 0")
        self.pop()
        self.line("else:")
        self.push()
        self.line('raise _MachineFault("subscript of non-array value")')
        self.pop()
        return _Val(result, pure=True)

    def emit_member(self, expr: ast.Member, extra: int = 0) -> _Val:
        assert expr.base is not None
        self.steps(1 + extra)
        base = self.materialize(self.emit_expr(expr.base), own=True)
        if expr.arrow:
            self.line(f"if {base}.__class__ is _CPointer:")
            self.push()
            self.line(f"{base} = {base}.load(0)")
            self.pop()
        self.line(f"if not isinstance({base}, _CStructValue):")
        self.push()
        self.line('raise _MachineFault("member access on non-struct value")')
        self.pop()
        message = f"missing struct field {expr.name!r}"
        self.line(f"if {expr.name!r} not in {base}.fields:")
        self.push()
        self.line(f"raise _InterpreterBug({message!r})")
        self.pop()
        result = self.temp()
        self.line(f"{result} = {base}.fields[{expr.name!r}]")
        return _Val(result, pure=True)

    # -- unary / increment -------------------------------------------------

    def emit_unary(self, expr: ast.Unary, extra: int = 0, drop: bool = False) -> _Val:
        assert expr.operand is not None
        op = expr.op
        if op in ("++", "--"):
            delta = 1 if op == "++" else -1
            if isinstance(expr.operand, ast.Ident):
                return self.emit_ident_bump(
                    expr.operand, delta, postfix=False, extra=extra, drop=drop
                )
            self.steps(1 + extra)
            return self.emit_apply_delta(expr.operand, delta)

        result_type = expr.ctype if isinstance(expr.ctype, IntCType) else S32
        operand_const, operand_val = _const_of(expr.operand)
        if operand_const and type(operand_val) is int and op in ("-", "~", "!"):
            wrap = _wrap_fn(result_type)
            if op == "-":
                folded = wrap(-operand_val)
            elif op == "~":
                folded = wrap(~operand_val)
            else:
                folded = 0 if operand_val != 0 else 1
            self.steps(2 + extra)
            return _Val(repr(folded), pure=True, known_int=True)

        self.steps(1 + extra)
        if op == "-":
            operand = self.materialize(self.emit_expr(expr.operand))
            return _Val(
                self.wrap_into(result_type, f"-int({operand})"),
                pure=True,
                known_int=True,
            )
        if op == "~":
            operand = self.materialize(self.emit_expr(expr.operand))
            return _Val(
                self.wrap_into(result_type, f"~int({operand})"),
                pure=True,
                known_int=True,
            )
        if op == "!":
            value = self.emit_expr(expr.operand)
            operand = self.materialize(value)
            if value.known_int:
                return _Val(
                    f"(0 if {operand} != 0 else 1)",
                    pure=True,
                    known_int=True,
                    bool_code=f"{operand} == 0",
                )
            return _Val(
                f"((0 if {operand} != 0 else 1) if type({operand}) is int "
                f"else (0 if _truthy({operand}) else 1))",
                known_int=True,
            )
        if op == "*":
            operand = self.materialize(self.emit_expr(expr.operand))
            result = self.temp()
            self.line(f"if {operand}.__class__ is _CPointer:")
            self.push()
            self.line(f"{result} = {operand}.load(0)")
            self.pop()
            self.line("else:")
            self.push()
            self.line('raise _MachineFault("dereference of non-pointer value")')
            self.pop()
            return _Val(result, pure=True)
        message = f"unhandled unary {op!r}"
        self.line(f"raise _InterpreterBug({message!r})")
        return _Val("None", pure=True)

    def emit_postfix(self, expr: ast.Postfix, extra: int = 0, drop: bool = False) -> _Val:
        assert expr.operand is not None
        delta = 1 if expr.op == "++" else -1
        if isinstance(expr.operand, ast.Ident):
            return self.emit_ident_bump(
                expr.operand, delta, postfix=True, extra=extra, drop=drop
            )
        self.steps(1 + extra)
        old = self.materialize(self.emit_expr(expr.operand))
        self.emit_apply_delta(expr.operand, delta)
        return _Val(old, pure=True)

    def emit_apply_delta(self, target: ast.Expr, delta: int) -> _Val:
        """Mirror ``Interpreter._apply_delta`` (load, bump, store)."""
        value = self.materialize(self.emit_expr(target))
        ctype = target.ctype if isinstance(target.ctype, IntCType) else S32
        new = self.temp()
        self.line(f"if {value}.__class__ is _CPointer:")
        self.push()
        self.line(f"{new} = {value}.advanced({delta})")
        self.pop()
        self.line("else:")
        self.push()
        self.line(
            f"{new} = {self.wrap_into(ctype, f'int({value}) + {delta}')}"
        )
        self.pop()
        self.emit_store(target, new)
        return _Val(new, pure=True)

    def emit_ident_bump(
        self,
        target: ast.Ident,
        delta: int,
        postfix: bool,
        extra: int = 0,
        drop: bool = False,
    ) -> _Val:
        """Fused ``i++``/``--i`` on a plain identifier (batched steps)."""
        name = target.name
        kind, payload, declct = self.resolve(name)
        ctype = target.ctype if isinstance(target.ctype, IntCType) else S32
        self.steps((3 if postfix else 2) + extra)
        if kind in ("function", "unbound"):
            message = f"unbound identifier {name!r}"
            self.line(f"raise _InterpreterBug({message!r})")
            return _Val("None", pure=True)
        int_cell = isinstance(declct, IntCType)
        if kind == "local" and int_cell:
            if postfix and not drop:
                old = self.temp()
                self.line(f"{old} = {payload}")
                self.line(
                    f"{payload} = "
                    f"{self.wrap_into(ctype, f'{old} + {delta}')}"
                )
                return _Val(old, pure=True, known_int=True)
            self.line(
                f"{payload} = "
                f"{self.wrap_into(ctype, f'{payload} + {delta}')}"
            )
            if drop:
                return _Val("None", pure=True)
            return _Val(payload, pure=True, known_int=True)

        value = self.temp()
        if kind == "local":
            self.line(f"{value} = {payload}")
        else:
            self.line(f"{value} = _glb[{name!r}]")
        new = self.temp()
        if int_cell:
            self.line(
                f"{new} = {self.wrap_into(ctype, f'{value} + {delta}')}"
            )
        else:
            if self.may_decay(declct):
                self.line(f"if {value}.__class__ is _CArray:")
                self.push()
                self.line(f"{value} = _CPointer({value}, 0)")
                self.pop()
            self.line(f"if {value}.__class__ is _CPointer:")
            self.push()
            self.line(f"{new} = {value}.advanced({delta})")
            self.pop()
            self.line("else:")
            self.push()
            self.line(
                f"{new} = {self.wrap_into(ctype, f'int({value}) + {delta}')}"
            )
            self.pop()
        if kind == "local":
            self.line(f"{payload} = {new}")
        else:
            self.line(f"_glb[{name!r}] = {new}")
        result = value if postfix else new
        return _Val(result, pure=True, known_int=int_cell)

    # -- binary operators --------------------------------------------------

    def emit_binary(self, expr: ast.Binary, extra: int = 0) -> _Val:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op in ("&&", "||"):
            self.steps(1 + extra)
            result = self.temp()
            left = self.emit_expr(expr.left)
            test = self.truthy_code(left)
            if op == "&&":
                self.line(f"if {test}:")
                self.push()
                right = self.emit_expr(expr.right)
                self.line(f"{result} = 1 if {self.truthy_code(right)} else 0")
                self.pop()
                self.line("else:")
                self.push()
                self.line(f"{result} = 0")
                self.pop()
            else:
                self.line(f"if {test}:")
                self.push()
                self.line(f"{result} = 1")
                self.pop()
                self.line("else:")
                self.push()
                right = self.emit_expr(expr.right)
                self.line(f"{result} = 1 if {self.truthy_code(right)} else 0")
                self.pop()
            return _Val(result, pure=True, known_int=True)
        return self.emit_binary_op(
            op, expr.left, expr.right, expr.ctype, entry=True, extra=extra
        )

    def emit_binary_op(
        self,
        op: str,
        left_expr: ast.Expr,
        right_expr: ast.Expr,
        result_ctype: CType | None,
        entry: bool,
        extra: int = 0,
    ) -> _Val:
        """Non-shortcut binary op; mirrors ``compile._Lowerer._lower_binary_op``."""
        left_ct = left_expr.ctype
        right_ct = right_expr.ctype
        left_t = left_ct if isinstance(left_ct, IntCType) else S32
        right_t = right_ct if isinstance(right_ct, IntCType) else S32
        common = usual_arithmetic(left_t, right_t)
        result_type = result_ctype if isinstance(result_ctype, IntCType) else S32
        left_static = self.static_int(left_expr)
        right_static = self.static_int(right_expr)
        entry_steps = 1 if entry else 0

        if left_static is not None and right_static is not None:
            left_val, left_s = left_static
            right_val, right_s = right_static
            self.steps(entry_steps + left_s + right_s + extra)
            folded, fold_error = _fold_binary(
                op, left_val, right_val,
                _wrap_fn(common), _wrap_fn(result_type), result_type,
            )
            if fold_error is not None:
                self.line(f"raise {self.const(fold_error, 'e')}")
                return _Val("None", pure=True)
            return _Val(repr(folded), pure=True, known_int=True)

        if right_static is not None and left_static is None and (
            op in _COMPARE_OPS or op in _ARITH_OPS
        ):
            fused = self.match_masked_port_read(left_expr)
            if fused is not None:
                # `(inb(PORT) [& MASK]) <op> CONST` — one batched add,
                # one bus access, the rest inline (see compile.py for the
                # neutrality argument; constant subtrees batch their
                # exact walker step counts).
                right_val, right_s = right_static
                inner_steps, port, size, transform = fused
                self.steps(entry_steps + inner_steps + right_s + extra)
                raw = self.temp()
                self.line(f"{raw} = {self.port_read_code(port, size)}")
                raw_itype = {8: U8, 16: U16, 32: U32}[size]
                wrapped_right = repr(common.wrap(right_val))
                if (
                    op in _COMPARE_OPS
                    and transform is not None
                    and transform[0] == "&"
                    and 0 <= transform[1] <= transform[3].max_value
                    and transform[1] <= common.max_value
                ):
                    # `(inb(P) & M) <cmp> V` with M inside every wrap's
                    # identity range: `raw & M` IS the wrapped value
                    # (low-bit & is wrap-invariant; the result is within
                    # [0, M], where both wraps are the identity), so the
                    # comparison runs on it directly.
                    cond = f"({raw} & {transform[1]}) {op} {wrapped_right}"
                    return _Val(
                        f"(1 if {cond} else 0)",
                        pure=True,
                        bool_code=cond,
                        itype=U8,
                    )
                value_code = self.masked_read_code(raw, transform, raw_itype)
                value_itype = raw_itype
                if transform is not None:
                    held = self.temp()
                    self.line(f"{held} = {value_code}")
                    value_code = held
                    value_itype = transform[3]  # masked_read_code wrapped it
                if op in _COMPARE_OPS:
                    if op in ("==", "!="):
                        left_w = self.eq_wrap_of(common, value_code)
                        right_w = self.eq_wrap_of(
                            common, None, common.wrap(right_val)
                        )
                    else:
                        left_w = self.wrap_name(common, value_code, value_itype)
                        right_w = wrapped_right
                    cond = f"{left_w} {op} {right_w}"
                    return _Val(
                        f"(1 if {cond} else 0)",
                        pure=True,
                        bool_code=cond,
                        itype=U8,
                    )
                if (
                    op == "&"
                    and transform is None
                    and _fits(raw_itype, common)
                    and 0 <= common.wrap(right_val) <= result_type.max_value
                ):
                    # `inb(P) & M` with every wrap an identity: the raw
                    # value fits the common type, and the result lies in
                    # [0, M] inside the result range.
                    mask_v = common.wrap(right_val)
                    code = f"({raw} & {mask_v})"
                    return _Val(code, pure=True, itype=result_type)
                code = self.wrap_into(
                    result_type,
                    self.arith_code(
                        op,
                        self.wrap_name(common, value_code, value_itype),
                        wrapped_right,
                    ),
                )
                return _Val(code, pure=True, itype=result_type)

        # Steps of fault-free operands (constant subtrees and plain int
        # loads) batch into the entry add; an operand that can fault or
        # have effects keeps the walker's consume positions around it.
        left_load = self.pure_load(left_expr) if left_static is None else None
        right_load = (
            self.pure_load(right_expr) if right_static is None else None
        )
        left_first = left_static is not None or left_load is not None
        pre_add = entry_steps + extra
        mid_add = 0
        if left_static is not None:
            pre_add += left_static[1]
        elif left_load is not None:
            pre_add += 1
        if right_static is not None:
            if left_first:
                pre_add += right_static[1]
            else:
                mid_add = right_static[1]
        elif right_load is not None:
            if left_first:
                pre_add += 1
            else:
                mid_add = 1
        self.steps(pre_add)

        left_cval: int | None = None
        left_itype: IntCType | None = None
        if left_static is not None:
            left_cval = left_static[0]
            left_name = repr(left_cval)
            left_known = True
        elif left_load is not None:
            left_name, left_itype = left_load
            left_known = True
        else:
            left_v = self.emit_expr(left_expr)
            left_name = self.materialize(left_v)
            left_known = left_v.known_int
            left_itype = left_v.itype
        self.steps(mid_add)
        right_cval: int | None = None
        right_itype: IntCType | None = None
        if right_static is not None:
            right_cval = right_static[0]
            right_name = repr(right_cval)
            right_known = True
        elif right_load is not None:
            right_name, right_itype = right_load
            right_known = True
        else:
            right_v = self.emit_expr(right_expr)
            right_name = self.materialize(right_v)
            right_known = right_v.known_int
            right_itype = right_v.itype

        if (
            op not in _COMPARE_OPS
            and op not in ("<<", ">>")
            and op not in _ARITH_OPS
        ):
            message = f"unhandled binary {op!r}"
            self.line(f"raise _InterpreterBug({message!r})")
            return _Val("None", pure=True)

        def common_operand(name, cval, itype):
            """``common.wrap(operand)`` — folded / skipped / inline."""
            if cval is not None:
                return repr(common.wrap(cval))
            return self.wrap_name(common, name, itype)

        def fast_path() -> tuple[str, bool, str | None]:
            """(code, pure, bool_code) of the all-int path; may emit."""
            if op in _COMPARE_OPS:
                if op in ("==", "!="):
                    # Both sides in common's identity range: compare raw.
                    # Otherwise compare masked residues (wrap is a
                    # bijection on them, so equality is preserved).
                    left_in = (
                        _fits(left_itype, common)
                        or (
                            left_cval is not None
                            and common.wrap(left_cval) == left_cval
                        )
                    )
                    right_in = (
                        _fits(right_itype, common)
                        or (
                            right_cval is not None
                            and common.wrap(right_cval) == right_cval
                        )
                    )
                    if left_in and right_in:
                        lw, rw = left_name, right_name
                    else:
                        lw = self.eq_wrap_of(
                            common, left_name, left_cval
                        )
                        rw = self.eq_wrap_of(
                            common, right_name, right_cval
                        )
                else:
                    lw = common_operand(left_name, left_cval, left_itype)
                    rw = common_operand(right_name, right_cval, right_itype)
                cond = f"{lw} {op} {rw}"
                return f"(1 if {cond} else 0)", True, cond
            if op in ("<<", ">>"):
                amount = self.temp()
                self.line(f"{amount} = {right_name} & 31")
                base = self.temp()
                base_code = (
                    repr(result_type.wrap(left_cval))
                    if left_cval is not None
                    else self.wrap_name(result_type, left_name, left_itype)
                )
                self.line(f"{base} = {base_code}")
                if op == "<<":
                    return (
                        self.wrap_into(result_type, f"{base} << {amount}"),
                        True,
                        None,
                    )
                if result_type.signed:
                    return f"({base} >> {amount})", True, None  # arithmetic
                mask = hex((1 << result_type.width) - 1)
                return (
                    self.wrap_into(
                        result_type, f"({base} & {mask}) >> {amount}"
                    ),
                    True,
                    None,
                )
            lw = common_operand(left_name, left_cval, left_itype)
            rw = common_operand(right_name, right_cval, right_itype)
            # wrap_into emits the (possibly raising) arithmetic as a
            # statement; the returned wrapped-temp expression is pure.
            code = self.wrap_into(result_type, self.arith_code(op, lw, rw))
            return code, True, None

        unknown = [
            name
            for name, known in (
                (left_name, left_known),
                (right_name, right_known),
            )
            if not known
        ]
        if not unknown:
            code, pure, bool_code = fast_path()
            return _Val(
                code,
                pure=pure,
                bool_code=bool_code,
                itype=U8 if op in _COMPARE_OPS else result_type,
            )
        result = self.temp()
        check = " and ".join(f"type({name}) is int" for name in unknown)
        self.line(f"if {check}:")
        self.push()
        code, _, _ = fast_path()
        self.line(f"{result} = {code}")
        self.pop()
        self.line("else:")
        self.push()
        cw = self.const(_wrap_fn(common), "w")
        rw = self.const(_wrap_fn(result_type), "w")
        rc = self.const(result_type, "ct")
        self.line(
            f"{result} = _binary_slow(rt, {op!r}, {left_name}, {right_name}, "
            f"{cw}, {rw}, {rc})"
        )
        self.pop()
        # Comparisons yield 0/1 on the slow paths too; arithmetic may
        # yield a pointer there, so no int range is claimed.
        return _Val(
            result,
            pure=True,
            itype=U8 if op in _COMPARE_OPS else None,
        )

    # -- assignment / ternary / cast ---------------------------------------

    def emit_assign(self, expr: ast.Assign, extra: int = 0) -> _Val:
        assert expr.target is not None and expr.value is not None
        target_type = expr.target.ctype
        self.steps(1 + extra)
        if expr.op == "=":
            value = self.emit_expr(expr.value)
        else:
            # Compound assignment: the synthesised Binary is evaluated
            # without its own entry step, exactly as the walker does.
            result_ctype = (
                target_type if isinstance(target_type, IntCType) else S32
            )
            value = self.emit_binary_op(
                expr.op[:-1], expr.target, expr.value, result_ctype, entry=False
            )
        name = self.materialize(value)
        if target_type is None:
            result = name
            known = value.known_int
            itype = value.itype
        elif isinstance(target_type, IntCType):
            coerced = self.coerce_expr(target_type, name, value.itype)
            if coerced == name:
                result = name  # value already in the target's range
            else:
                result = self.temp()
                self.line(f"{result} = {coerced}")
            known = True
            itype = target_type
        else:
            result = self.temp()
            self.line(f"{result} = {self.coerce_expr(target_type, name)}")
            known = False
            itype = None
        self.emit_store(expr.target, result, known_int=known)
        return _Val(result, pure=True, known_int=known, itype=itype)

    def emit_ternary(self, expr: ast.Ternary, extra: int = 0) -> _Val:
        assert expr.cond is not None and expr.then is not None
        assert expr.other is not None
        self.steps(1 + extra)
        cond = self.emit_expr(expr.cond)
        result = self.temp()
        self.line(f"if {self.truthy_code(cond)}:")
        self.push()
        then = self.emit_expr(expr.then)
        self.line(f"{result} = {then.code}")
        self.pop()
        self.line("else:")
        self.push()
        other = self.emit_expr(expr.other)
        self.line(f"{result} = {other.code}")
        self.pop()
        return _Val(
            result, pure=True, known_int=then.known_int and other.known_int
        )

    def emit_cast(self, expr: ast.Cast, extra: int = 0) -> _Val:
        assert expr.operand is not None and expr.target_type is not None
        self.steps(1 + extra)
        value = self.emit_expr(expr.operand)
        operand = self.materialize(value)
        target = expr.target_type
        if isinstance(target, IntCType):
            coerced = self.coerce_expr(target, operand, value.itype)
            if coerced == operand:
                return _Val(operand, pure=True, itype=target)
            result = self.temp()
            self.line(f"{result} = {coerced}")
            return _Val(result, pure=True, itype=target)
        result = self.temp()
        self.line(f"{result} = {self.coerce_expr(target, operand)}")
        return _Val(result, pure=True)

    # -- lvalue stores -----------------------------------------------------

    def emit_store(
        self, target: ast.Expr, value_name: str, known_int: bool = False
    ) -> None:
        """Mirror ``compile._Lowerer._lower_store`` for a known target."""
        if isinstance(target, ast.Ident):
            kind, payload, declct = self.resolve(target.name)
            if kind in ("function", "unbound"):
                message = f"unbound identifier {target.name!r}"
                self.line(f"raise _InterpreterBug({message!r})")
                return
            if known_int or isinstance(declct, IntCType):
                stored = value_name
            else:
                stored = (
                    f"({value_name}.copy() "
                    f"if {value_name}.__class__ is _CStructValue else {value_name})"
                )
            if kind == "local":
                self.line(f"{payload} = {stored}")
            else:
                self.line(f"_glb[{target.name!r}] = {stored}")
            return
        if isinstance(target, ast.Index):
            assert target.base is not None and target.index is not None
            base = self.materialize(self.emit_expr(target.base))
            index_v = self.materialize(self.emit_expr(target.index))
            idx = self.temp()
            self.line(f"{idx} = int({index_v})")
            self.line(f"if {base}.__class__ is _CPointer:")
            self.push()
            self.line(f"{base}.store({value_name}, {idx})")
            self.pop()
            self.line("else:")
            self.push()
            self.line('raise _MachineFault("store into non-array value")')
            self.pop()
            return
        if isinstance(target, ast.Member):
            assert target.base is not None
            base_expr = target.base
            if isinstance(base_expr, ast.Ident):
                # Reference semantics, no step consumed (walker's
                # _eval_member_base goes straight to the cell).
                kind, payload, declct = self.resolve(base_expr.name)
                if kind in ("function", "unbound"):
                    message = f"unbound identifier {base_expr.name!r}"
                    self.line(f"raise _InterpreterBug({message!r})")
                    return
                base = self.temp()
                if kind == "local":
                    self.line(f"{base} = {payload}")
                else:
                    self.line(f"{base} = _glb[{base_expr.name!r}]")
            else:
                base = self.materialize(self.emit_expr(base_expr), own=True)
            if target.arrow:
                self.line(f"if {base}.__class__ is _CPointer:")
                self.push()
                self.line(f"{base} = {base}.load(0)")
                self.pop()
            self.line(f"if not isinstance({base}, _CStructValue):")
            self.push()
            self.line('raise _MachineFault("member store on non-struct value")')
            self.pop()
            if known_int:
                stored = value_name
            else:
                stored = (
                    f"({value_name}.copy() "
                    f"if {value_name}.__class__ is _CStructValue else {value_name})"
                )
            self.line(f"{base}.fields[{target.name!r}] = {stored}")
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            assert target.operand is not None
            pointer = self.materialize(self.emit_expr(target.operand))
            self.line(f"if {pointer}.__class__ is _CPointer:")
            self.push()
            self.line(f"{pointer}.store({value_name}, 0)")
            self.pop()
            self.line("else:")
            self.push()
            self.line('raise _MachineFault("store through non-pointer value")')
            self.pop()
            return
        message = f"store to non-lvalue {target!r}"
        self.line(f"raise _InterpreterBug({message!r})")


# -- program assembly ----------------------------------------------------------


def _emit_decl(decl: ast.FuncDecl, env: _Env):
    """The function's factory callable — or None for closure mode.

    The emitted module is exec'd once here, against a namespace holding
    the helpers and the constant pool (all immutable); the returned
    factory binds a program's function table per instantiation.
    """
    try:
        source, consts, pyname = _FunctionEmitter(decl, env).emit()
    except _Unsupported:
        return None
    code = compile(source, f"<minic:{decl.name}>", "exec")
    namespace = dict(_BASE_HELPERS)
    namespace.update(consts)
    exec(code, namespace)
    return namespace["_factory"]


def _closure_call(program: CompiledProgram, name: str) -> Callable:
    """Lazy dispatch into the closure backend's lowering of ``name``."""

    def call(rt, args):
        return compiled_functions(program)[name](rt, args)

    return call


def compiled_source_functions(program: CompiledProgram) -> dict[str, Callable]:
    """Source-compiled function bodies for ``program``.

    Assembled once per program (cached on it); per-declaration code
    objects are cached on the declaration nodes keyed by the environment
    fingerprint, so `CampaignCompiler` splices recompile only mutated
    functions.
    """
    cached = getattr(program, "_source_functions", None)
    if cached is not None:
        return cached
    env = _Env(program)
    fns: dict[str, Callable] = {}
    for name, decl in env.function_decls.items():
        entry = getattr(decl, "_source_code", None)
        if entry is None or entry[0] != env.key:
            # Cache miss (this declaration is the mutated one, or the
            # program is new): defer emission until the function actually
            # runs — mutants in never-executed functions skip it.
            fns[name] = _deferred_entry(program, name, decl, env, fns)
            continue
        factory = entry[1]
        if factory is None:
            fns[name] = _closure_call(program, name)
            continue
        fns[name] = factory(fns, _closure_call(program, name))
    program._source_functions = fns
    return fns


def _deferred_entry(program, name, decl, env, fns) -> Callable:
    """Emit + compile on first call, then replace ourselves in the table."""

    def first_call(rt, args):
        entry = getattr(decl, "_source_code", None)
        if entry is None or entry[0] != env.key:
            entry = (env.key, _emit_decl(decl, env))
            decl._source_code = entry
        factory = entry[1]
        if factory is None:
            compiled = _closure_call(program, name)
        else:
            compiled = factory(fns, _closure_call(program, name))
        fns[name] = compiled
        return compiled(rt, args)

    return first_call


# -- the backend ---------------------------------------------------------------


class SourceInterpreter(Interpreter):
    """Drop-in :class:`Interpreter` executing source-compiled bodies.

    Globals are still initialised by the inherited tree-walking logic
    (initialisers run once; their step accounting must match the
    reference backend exactly); every function call dispatches into the
    emitted Python functions.
    """

    def __init__(
        self,
        program,
        bus=None,
        step_budget: int = 2_000_000,
        defer_globals: bool = False,
    ):
        # Before super().__init__: global initialisers may run there and
        # can call functions, which dispatch through ``_call_function``
        # into this table.
        self._compiled = compiled_source_functions(program)
        super().__init__(
            program, bus, step_budget=step_budget, defer_globals=defer_globals
        )

    def call(self, name: str, *args):
        compiled = self._compiled.get(name)
        if compiled is None:
            raise InterpreterBug(f"no function {name!r} in program")
        return compiled(self, list(args))

    def _call_function(self, decl, args):
        # Tree-walked statements (global initialisers, resumed in-flight
        # calls) dispatch nested calls into the emitted bodies, whose
        # call prologue is step-for-step the walker's.
        return self._compiled[decl.name](self, args)

    # As on the closure backend: fresh statements in a resumed in-flight
    # call run closure-lowered (source emission is per-function, so
    # statement-level lowering borrows the closure backend's), cached on
    # the shared AST nodes with calls late-bound through rt._compiled.
    _resume_lowerer = None
    _exec_resumed = ClosureInterpreter._exec_resumed


def _contains_loop(stmts) -> bool:
    """Whether any (nested) statement is a loop construct."""
    for stmt in stmts:
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            return True
        if isinstance(stmt, ast.Block):
            if _contains_loop(stmt.statements):
                return True
        elif isinstance(stmt, ast.If):
            inner = [s for s in (stmt.then, stmt.otherwise) if s is not None]
            if _contains_loop(inner):
                return True
        elif isinstance(stmt, ast.Switch):
            for group in stmt.groups:
                if _contains_loop(group.body):
                    return True
    return False


def compiled_hybrid_functions(program: CompiledProgram) -> dict[str, Callable]:
    """Source-compiled where cached, closure-lowered where fresh (and safe).

    Campaign mutants share every unmutated declaration's emitted code
    object with the baseline; only the freshly re-parsed (mutated)
    declarations lack a cache entry.  Emitting those through the source
    backend costs a per-mutant Python ``compile`` (~1 ms); lowering just
    the fresh declaration on the closure backend costs ~0.05 ms with
    bit-identical semantics.  Fresh declarations that contain a loop
    keep the source path: a budget-bound mutant burns its entire step
    budget inside its own loop, where the source backend's fused polling
    idioms are ~3x faster than closures — exactly the wrong place to
    trade execution speed for setup cost.  Cross-calls in both
    directions dispatch through the shared function table, mirroring the
    per-function closure fallback the source backend already performs.
    """
    cached = getattr(program, "_hybrid_functions", None)
    if cached is not None:
        return cached
    env = _Env(program)
    fns: dict[str, Callable] = {}
    lowerer_slot: list = []

    def shared_lowerer() -> _Lowerer:
        if not lowerer_slot:
            lowerer = _Lowerer(program)
            # Late-bound call dispatch goes through the *hybrid* table,
            # so a closure-lowered body calls its source-compiled
            # siblings (and vice versa).
            lowerer.compiled = fns
            lowerer_slot.append(lowerer)
        return lowerer_slot[0]

    for name, decl in env.function_decls.items():
        entry = getattr(decl, "_source_code", None)
        if entry is None or entry[0] != env.key:
            if decl.body is not None and _contains_loop(decl.body.statements):
                fns[name] = _deferred_entry(program, name, decl, env, fns)
            else:
                fns[name] = _closure_lowered_entry(
                    name, decl, fns, shared_lowerer
                )
            continue
        factory = entry[1]
        if factory is None:
            fns[name] = _closure_call(program, name)
            continue
        fns[name] = factory(fns, _closure_call(program, name))
    program._hybrid_functions = fns
    return fns


def _closure_lowered_entry(name, decl, fns, shared_lowerer) -> Callable:
    """Lower on first call, then replace ourselves in the table."""

    def first_call(rt, args):
        compiled = shared_lowerer()._lower_function(decl)
        fns[name] = compiled
        return compiled(rt, args)

    return first_call


class HybridInterpreter(SourceInterpreter):
    """Campaign execution backend for compile-cache splices.

    Identical observable semantics to every other backend; selected by
    the checkpointed campaign runner where per-mutant source emission
    would dominate the boot.
    """

    def __init__(
        self,
        program,
        bus=None,
        step_budget: int = 2_000_000,
        defer_globals: bool = False,
    ):
        self._compiled = compiled_hybrid_functions(program)
        Interpreter.__init__(
            self, program, bus, step_budget=step_budget, defer_globals=defer_globals
        )


#: Importing this module registers the backends (see compile.interpreter_for).
BACKENDS["source"] = SourceInterpreter
BACKENDS["hybrid"] = HybridInterpreter
