"""Token definitions for the mini-C lexer.

As with the Devil tokens, exact source spans matter: the C mutation
operators (`repro.mutation.c_ops`) rewrite driver source textually, one
token at a time, inside the tagged hardware-operating regions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.diagnostics import SourceLocation


class CTokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT = "integer"
    CHAR = "character"
    STRING = "string"
    PUNCT = "punctuation"
    EOF = "end of input"


KEYWORDS = frozenset(
    {
        "void",
        "char",
        "int",
        "long",
        "short",
        "unsigned",
        "signed",
        "struct",
        "union",
        "enum",
        "typedef",
        "static",
        "extern",
        "const",
        "volatile",
        "inline",
        "if",
        "else",
        "while",
        "do",
        "for",
        "switch",
        "case",
        "default",
        "break",
        "continue",
        "return",
        "goto",
        "sizeof",
    }
)

#: Longest first, so the lexer is greedy ("<<=" before "<<" before "<").
PUNCTUATION = (
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    ".",
    "?",
    ":",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "&",
    "|",
    "^",
    "!",
    "~",
)


@dataclass(frozen=True)
class CToken:
    kind: CTokenKind
    text: str
    line: int
    column: int
    filename: str = "<c>"
    #: Line of the macro definition this token was expanded from, if any —
    #: used by dead-code classification for mutations in ``#define`` bodies.
    macro_line: int | None = None
    macro_file: str | None = None

    @property
    def location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def is_punct(self, text: str) -> bool:
        return self.kind is CTokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is CTokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        return self.text


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


def parse_c_int(text: str) -> int:
    """Value of a C integer literal (dec/hex/octal, u/l suffixes)."""
    body = text.rstrip("uUlL")
    lowered = body.lower()
    if lowered.startswith("0x"):
        return int(lowered[2:], 16)
    if len(body) > 1 and body.startswith("0"):
        return int(body, 8)
    return int(body, 10)


def is_unsigned_literal(text: str) -> bool:
    suffix = text[len(text.rstrip("uUlL")) :]
    return "u" in suffix.lower() or parse_c_int(text) > 0x7FFFFFFF


def parse_c_char(text: str) -> int:
    """Value of a character literal including simple escapes."""
    body = text[1:-1]
    if body.startswith("\\"):
        escape = body[1:]
        if escape in _ESCAPES:
            return ord(_ESCAPES[escape])
        if escape.startswith("x"):
            return int(escape[1:], 16)
        return int(escape, 8)
    return ord(body)


def parse_c_string(text: str) -> str:
    """Payload of a string literal with escapes decoded."""
    body = text[1:-1]
    result: list[str] = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\" and index + 1 < len(body):
            escape = body[index + 1]
            result.append(_ESCAPES.get(escape, escape))
            index += 2
        else:
            result.append(char)
            index += 1
    return "".join(result)
