"""Closure-compilation backend for mini-C.

The tree-walking interpreter (`repro.minic.interp`) re-dispatches on AST
node types at every step — an ``isinstance`` chain per statement and per
expression.  Mutation campaigns boot thousands of kernels, most of which
spend their time in driver polling loops, so that dispatch dominates the
whole experiment.  This module removes it: each checked function body is
*lowered once* into nested Python closures, with all node-type dispatch,
integer-type wrap functions and operator selection resolved at lowering
time.  What remains at run time is straight-line closure calls over the
shared interpreter state, with a fast path for the all-integer case and
the reference semantics as the fallback.

Semantics are bit-for-bit those of the tree walker — including step
accounting, coverage sets, fault messages and classification — which the
backend-equivalence tests assert on whole driver boots.  The tree walker
stays as the reference backend; select with ``Interpreter`` vs
:class:`ClosureInterpreter` (or ``backend=`` on `repro.kernel.boot`).

Lowering conventions:

* a compiled expression is a callable ``(rt) -> value`` whose first
  action mirrors ``Interpreter._eval``'s ``consume_steps(1)``;
* a compiled statement is a callable ``(rt) -> None`` that opens with the
  ``Interpreter._exec`` prologue (step + coverage) fused in;
* ``rt`` is the :class:`ClosureInterpreter` instance, so all mutable
  machine state (scopes, globals, steps, coverage, bus) lives exactly
  where the reference backend keeps it;
* closures never raise at lowering time: semantically invalid nodes that
  sema cannot produce are lowered to closures that raise *when executed*,
  as the walker would.

Two lowering-time transformations are observably neutral and load-bearing
for speed: blocks with no *direct* local declaration skip the scope
push/pop (nothing could ever be stored in that scope), and the
integer-only fast path of each operator short-circuits the pointer/string
checks the walker performs structurally (non-``int`` operands fall back
to the reference logic).
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.minic import ast
from repro.minic.builtins import BUILTIN_IMPLS
from repro.minic.sema import BUILTIN_SIGNATURES
from repro.minic.ctypes import (
    ArrayType,
    CType,
    IntCType,
    PointerType,
    S32,
    StructType,
    VOID,
    usual_arithmetic,
)
from repro.minic.errors import InterpreterBug, MachineFault, StepBudgetExceeded
from repro.minic.interp import (
    Interpreter,
    _BreakSignal,
    _ContinueSignal,
    _ReturnSignal,
    _c_div,
    _element_int_type,
)
from repro.minic.program import CompiledProgram
from repro.minic.values import CArray, CPointer, CStructValue

ExprFn = Callable[["ClosureInterpreter"], object]
StmtFn = Callable[["ClosureInterpreter"], None]

_VOID_TYPE = type(VOID)


def _wrap_fn(ctype: IntCType) -> Callable[[int], int]:
    """A free-function equivalent of ``ctype.wrap`` (no method dispatch)."""
    mask = (1 << ctype.width) - 1
    if not ctype.signed:
        return lambda value: value & mask
    half = 1 << (ctype.width - 1)
    full = 1 << ctype.width

    def wrap(value: int) -> int:
        value &= mask
        return value - full if value >= half else value

    return wrap


def _coerce_fn(ctype: CType | None) -> Callable[["ClosureInterpreter", object], object]:
    """A coercion closure with a fast path for plain-int into int types."""
    if isinstance(ctype, IntCType):
        wrap = _wrap_fn(ctype)

        def coerce_int(rt, value):
            if type(value) is int:
                return wrap(value)
            return rt._coerce(value, ctype)

        return coerce_int

    def coerce(rt, value):
        return rt._coerce(value, ctype)

    return coerce


def _const_of(expr: ast.Expr):
    """(is_constant, runtime value) for literal expressions.

    A literal's evaluation has no side effect beyond consuming one step,
    and any budget-crossing step leaves ``steps == budget + 1`` (every
    consume is +1), so a literal's step may be folded into an adjacent
    batched add — with the crossing fixed up — without any observable
    difference.  Non-literals are never folded: their side effects (and
    the step count any fault of theirs reports) must stay in order.
    """
    if isinstance(expr, ast.IntLit):
        return True, (expr.value if expr.unsigned else S32.wrap(expr.value))
    if isinstance(expr, ast.CharLit):
        return True, expr.value
    if isinstance(expr, ast.StrLit):
        return True, expr.value
    return False, None


def _static_coerce(param: CType | None, value):
    """(ok, coerced) — lowering-time version of ``Interpreter._coerce``.

    Only coercions that read no interpreter state are performed here;
    anything else reports ``ok=False`` and stays a run-time coercion.
    """
    if param is None:
        return True, value
    if isinstance(param, IntCType):
        if type(value) is int:
            return True, param.wrap(value)
        return False, None
    if isinstance(param, PointerType):
        if isinstance(value, str):
            return True, value
        if type(value) is int:
            return True, (None if value == 0 else value)
        return False, None
    return False, None


#: Port I/O builtins fusable to a direct bus access.
_PORT_READS = {"inb": 8, "inw": 16, "inl": 32}
_PORT_WRITES = {
    "outb": (8, 0xFF),
    "outw": (16, 0xFFFF),
    "outl": (32, 0xFFFFFFFF),
}


class _Lowerer:
    """Lower one translation unit's function bodies into closures."""

    def __init__(self, program: CompiledProgram):
        self.program = program
        self.function_decls = {
            decl.name: decl
            for decl in program.unit.decls
            if isinstance(decl, ast.FuncDecl) and decl.body is not None
        }
        #: name -> compiled body; populated before any closure runs, so
        #: call sites may close over the dict and late-bind by name.
        self.compiled: dict[str, Callable] = {}

    def lower_unit(self) -> dict[str, Callable]:
        for name, decl in self.function_decls.items():
            self.compiled[name] = self._lower_function(decl)
        return self.compiled

    # -- functions ---------------------------------------------------------

    def _lower_function(self, decl: ast.FuncDecl):
        body_stmts = tuple(
            self._lower_stmt(stmt) for stmt in decl.body.statements
        )
        params = tuple(
            (param.name, _coerce_fn(param.ctype)) for param in decl.params
        )
        return_type = decl.return_type
        assert return_type is not None
        returns_void = isinstance(return_type, _VOID_TYPE)
        coerce_return = _coerce_fn(return_type)

        def call_function(rt, args):
            # Mirrors Interpreter._call_function, including the kernel
            # stack-depth clamp and the one step per call.
            scopes = rt._scopes
            if len(scopes) > 48:
                raise MachineFault("kernel stack overflow (runaway recursion)")
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            frame: dict[str, object] = {}
            for (name, coerce), arg in zip(params, args):
                frame[name] = coerce(rt, arg)
            scopes.append([frame])
            try:
                for stmt_fn in body_stmts:
                    stmt_fn(rt)
                result = None
            except _ReturnSignal as signal:
                result = signal.value
            finally:
                scopes.pop()
            if returns_void:
                return None
            return coerce_return(rt, result if result is not None else 0)

        return call_function

    # -- statements --------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> StmtFn:
        """One statement closure, ``Interpreter._exec`` prologue fused in."""
        origins = stmt.origins

        if isinstance(stmt, ast.Block):
            return self._lower_block(stmt, origins)

        if isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            expr = self._lower_expr(stmt.expr)

            if origins:

                def run_expr(rt):
                    rt.steps = steps = rt.steps + 1
                    if steps > rt.step_budget:
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                    rt.coverage.update(origins)
                    expr(rt)

                return run_expr

            def run_expr_bare(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                expr(rt)

            return run_expr_bare

        if isinstance(stmt, ast.EmptyStmt):

            def run_empty(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                rt.coverage.update(origins)

            return run_empty

        if isinstance(stmt, ast.LocalDecl):
            name = stmt.name
            initial = self._lower_initial_value(stmt.var_type, stmt.init)

            def run_local(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                rt.coverage.update(origins)
                rt._scopes[-1][-1][name] = initial(rt)

            return run_local

        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, origins)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, origins)
        if isinstance(stmt, ast.DoWhile):
            return self._lower_do_while(stmt, origins)
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt, origins)
        if isinstance(stmt, ast.Switch):
            return self._lower_switch(stmt, origins)

        if isinstance(stmt, ast.Break):

            def run_break(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                rt.coverage.update(origins)
                raise _BreakSignal()

            return run_break

        if isinstance(stmt, ast.Continue):

            def run_continue(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                rt.coverage.update(origins)
                raise _ContinueSignal()

            return run_continue

        if isinstance(stmt, ast.Return):
            value = (
                self._lower_expr(stmt.value) if stmt.value is not None else None
            )

            if value is None:

                def run_return_void(rt):
                    rt.steps = steps = rt.steps + 1
                    if steps > rt.step_budget:
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                    rt.coverage.update(origins)
                    raise _ReturnSignal(None)

                return run_return_void

            def run_return(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                rt.coverage.update(origins)
                raise _ReturnSignal(value(rt))

            return run_return

        return _raising(InterpreterBug(f"unhandled statement {stmt!r}"))

    def _lower_block(self, stmt: ast.Block, origins) -> StmtFn:
        if all(isinstance(inner, ast.EmptyStmt) for inner in stmt.statements):
            # `{ ; }` — the classic spin-loop body.  Steps and coverage
            # are the only effects, so one closure suffices — but the
            # walker interleaves them (consume, update, consume, update,
            # ...), and a budget crossing must leave exactly the already
            # visited origins in the coverage set, so the adds are not
            # batched across the update points.
            parts = tuple(
                [frozenset(origins)]
                + [inner.origins for inner in stmt.statements]
            )

            def run_empty_block(rt):
                coverage = rt.coverage
                budget = rt.step_budget
                for part in parts:
                    rt.steps = steps = rt.steps + 1
                    if steps > budget:
                        raise StepBudgetExceeded(
                            f"step budget of {budget} exhausted"
                        )
                    coverage.update(part)

            return run_empty_block

        body = tuple(self._lower_stmt(inner) for inner in stmt.statements)
        # A new scope is observable only through direct LocalDecls (they
        # store into the innermost scope); without any, elide the push.
        needs_scope = any(
            isinstance(inner, ast.LocalDecl) for inner in stmt.statements
        )

        if needs_scope:

            def run_block(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                rt.coverage.update(origins)
                frames = rt._scopes[-1]
                frames.append({})
                try:
                    for stmt_fn in body:
                        stmt_fn(rt)
                finally:
                    frames.pop()

            return run_block

        def run_block_flat(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            rt.coverage.update(origins)
            for stmt_fn in body:
                stmt_fn(rt)

        return run_block_flat

    def _lower_if(self, stmt: ast.If, origins) -> StmtFn:
        assert stmt.cond is not None and stmt.then is not None
        cond = self._lower_expr(stmt.cond)
        then = self._lower_stmt(stmt.then)
        otherwise = (
            self._lower_stmt(stmt.otherwise)
            if stmt.otherwise is not None
            else None
        )

        if otherwise is None:

            def run_if(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                rt.coverage.update(origins)
                value = cond(rt)
                if (value != 0 if type(value) is int else _truthy(value)):
                    then(rt)

            return run_if

        def run_if_else(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            rt.coverage.update(origins)
            value = cond(rt)
            if (value != 0 if type(value) is int else _truthy(value)):
                then(rt)
            else:
                otherwise(rt)

        return run_if_else

    def _lower_while(self, stmt: ast.While, origins) -> StmtFn:
        assert stmt.cond is not None and stmt.body is not None
        cond = self._lower_expr(stmt.cond)
        body = self._lower_stmt(stmt.body)

        def run_while(rt):
            # Entry step/coverage for the While statement itself (the
            # walker's _exec), then one more per iteration (_exec_while).
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            coverage = rt.coverage
            coverage.update(origins)
            budget = rt.step_budget
            while True:
                rt.steps = steps = rt.steps + 1
                if steps > budget:
                    raise StepBudgetExceeded(
                        f"step budget of {budget} exhausted"
                    )
                coverage.update(origins)
                value = cond(rt)
                if not (value != 0 if type(value) is int else _truthy(value)):
                    return
                try:
                    body(rt)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    continue

        return run_while

    def _lower_do_while(self, stmt: ast.DoWhile, origins) -> StmtFn:
        assert stmt.cond is not None and stmt.body is not None
        cond = self._lower_expr(stmt.cond)
        body = self._lower_stmt(stmt.body)

        def run_do_while(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            coverage = rt.coverage
            coverage.update(origins)
            budget = rt.step_budget
            while True:
                rt.steps = steps = rt.steps + 1
                if steps > budget:
                    raise StepBudgetExceeded(
                        f"step budget of {budget} exhausted"
                    )
                coverage.update(origins)
                try:
                    body(rt)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    pass
                value = cond(rt)
                if not (value != 0 if type(value) is int else _truthy(value)):
                    return

        return run_do_while

    def _lower_for(self, stmt: ast.For, origins) -> StmtFn:
        assert stmt.body is not None
        init = self._lower_stmt(stmt.init) if stmt.init is not None else None
        cond = self._lower_expr(stmt.cond) if stmt.cond is not None else None
        step = self._lower_expr(stmt.step) if stmt.step is not None else None
        body = self._lower_stmt(stmt.body)

        def run_for(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            rt.coverage.update(origins)
            frames = rt._scopes[-1]
            frames.append({})
            try:
                if init is not None:
                    init(rt)
                coverage = rt.coverage
                budget = rt.step_budget
                while True:
                    rt.steps = steps = rt.steps + 1
                    if steps > budget:
                        raise StepBudgetExceeded(
                            f"step budget of {budget} exhausted"
                        )
                    coverage.update(origins)
                    if cond is not None:
                        value = cond(rt)
                        if not (
                            value != 0 if type(value) is int else _truthy(value)
                        ):
                            return
                    try:
                        body(rt)
                    except _BreakSignal:
                        return
                    except _ContinueSignal:
                        pass
                    if step is not None:
                        step(rt)
            finally:
                frames.pop()

        return run_for

    def _lower_switch(self, stmt: ast.Switch, origins) -> StmtFn:
        assert stmt.expr is not None
        selector_fn = self._lower_expr(stmt.expr)
        groups = tuple(
            (
                tuple(group.values),
                group.origins,
                tuple(self._lower_stmt(inner) for inner in group.body),
            )
            for group in stmt.groups
        )

        def run_switch(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            rt.coverage.update(origins)
            selector = int(selector_fn(rt))
            start = None
            default = None
            for index, (values, _, _) in enumerate(groups):
                if any(value == selector for value in values if value is not None):
                    start = index
                    break
                if default is None and any(value is None for value in values):
                    default = index
            if start is None:
                start = default
            if start is None:
                return
            frames = rt._scopes[-1]
            frames.append({})
            try:
                coverage = rt.coverage
                for _, group_origins, body in groups[start:]:
                    coverage.update(group_origins)
                    for stmt_fn in body:
                        stmt_fn(rt)
            except _BreakSignal:
                pass
            finally:
                frames.pop()

        return run_switch

    # -- initial values -----------------------------------------------------

    def _lower_initial_value(self, ctype: CType | None, init) -> ExprFn:
        """Mirror ``Interpreter._initial_value`` for a known declaration."""
        assert ctype is not None
        if init is None:
            return lambda rt: rt._zero_value(ctype)

        if isinstance(init, ast.InitList):
            items = tuple(self._lower_expr(item) for item in init.items)
            if isinstance(ctype, StructType):
                struct_type = ctype

                def make_struct(rt):
                    value = CStructValue(struct_type.name)
                    zero = rt._zero_value
                    for field in struct_type.fields:
                        value.fields[field.name] = zero(field.ctype)
                    coerce = rt._coerce
                    for field, item in zip(struct_type.fields, items):
                        value.fields[field.name] = coerce(item(rt), field.ctype)
                    return value

                return make_struct
            if isinstance(ctype, ArrayType):
                array_type = ctype

                def make_array(rt):
                    length = (
                        array_type.length
                        if array_type.length is not None
                        else len(items)
                    )
                    array = CArray.zeroed(_element_int_type(array_type), length)
                    coerce = rt._coerce
                    for index, item in enumerate(items):
                        array.store(index, coerce(item(rt), array_type.element))
                    return array

                return make_array
            return _raising(
                InterpreterBug("brace initializer for scalar survived sema")
            )

        value = self._lower_expr(init)
        coerce = _coerce_fn(ctype)
        return lambda rt: coerce(rt, value(rt))

    # -- expressions --------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> ExprFn:
        if isinstance(expr, ast.IntLit):
            constant = expr.value if expr.unsigned else S32.wrap(expr.value)

            def int_lit(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return constant

            return int_lit

        if isinstance(expr, ast.CharLit):
            char = expr.value

            def char_lit(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return char

            return char_lit

        if isinstance(expr, ast.StrLit):
            text = expr.value

            def str_lit(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return text

            return str_lit

        if isinstance(expr, ast.Ident):
            return self._lower_ident(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.Index):
            return self._lower_index(expr)
        if isinstance(expr, ast.Member):
            return self._lower_member(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._lower_postfix(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary_expr(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)

        if isinstance(expr, ast.Ternary):
            assert expr.cond is not None and expr.then is not None
            assert expr.other is not None
            cond = self._lower_expr(expr.cond)
            then = self._lower_expr(expr.then)
            other = self._lower_expr(expr.other)

            def ternary(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                value = cond(rt)
                if (value != 0 if type(value) is int else _truthy(value)):
                    return then(rt)
                return other(rt)

            return ternary

        if isinstance(expr, ast.Cast):
            assert expr.operand is not None and expr.target_type is not None
            operand = self._lower_expr(expr.operand)
            coerce = _coerce_fn(expr.target_type)

            def cast(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return coerce(rt, operand(rt))

            return cast

        if isinstance(expr, ast.Comma):
            assert expr.left is not None and expr.right is not None
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)

            def comma(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                left(rt)
                return right(rt)

            return comma

        return _raising(InterpreterBug(f"unhandled expression {expr!r}"))

    def _lower_ident(self, expr: ast.Ident) -> ExprFn:
        name = expr.name
        is_function = name in self.function_decls or name in BUILTIN_IMPLS

        def load_ident(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            scopes = rt._scopes
            if scopes:
                frames = scopes[-1]
                index = len(frames) - 1
                while index >= 0:
                    scope = frames[index]
                    if name in scope:
                        value = scope[name]
                        if value.__class__ is CArray:
                            return CPointer(value, 0)
                        return value
                    index -= 1
            globals_ = rt.globals
            if name in globals_:
                value = globals_[name]
                if value.__class__ is CArray:
                    return CPointer(value, 0)
                return value
            if is_function:
                return rt.function_address(name)
            raise InterpreterBug(f"unbound identifier {name!r}")

        return load_ident

    def _lower_call(self, expr: ast.Call) -> ExprFn:
        if not isinstance(expr.callee, ast.Ident):
            return _raising(
                AssertionError("call of a non-identifier callee survived sema")
            )
        name = expr.callee.name
        arg_fns = tuple(self._lower_expr(arg) for arg in expr.args)

        builtin = BUILTIN_IMPLS.get(name)
        if builtin is not None and name not in self.function_decls:
            signature = BUILTIN_SIGNATURES.get(name)
            params = signature.params if signature is not None else ()

            # Port I/O fusion: a polling loop's `inb(CONST)` collapses to
            # one closure — batched step add plus the raw bus access (the
            # builtin's own plumbing is constant-folded away).
            if name in _PORT_READS:
                matched = self._match_port_read(expr)
                if matched is not None:
                    port, size = matched

                    def fused_port_read(rt):
                        # entry + argument + builtin + bus_read steps
                        rt.steps = steps = rt.steps + 4
                        if steps > rt.step_budget:
                            rt.steps = rt.step_budget + 1
                            raise StepBudgetExceeded(
                                f"step budget of {rt.step_budget} "
                                "exhausted"
                            )
                        return rt.bus.read_port(port, size)

                    return fused_port_read

            if (
                name in _PORT_WRITES
                and len(expr.args) == 2
                and len(params) == 2
            ):
                port_const, port_literal = _const_of(expr.args[1])
                if port_const and type(port_literal) is int:
                    ok, port_value = _static_coerce(params[1], port_literal)
                    if ok:
                        port = int(port_value)
                        size, value_mask = _PORT_WRITES[name]
                        coerce_value = _coerce_fn(params[0])
                        value_fn = self._lower_expr(expr.args[0])

                        def fused_port_write(rt):
                            rt.steps = steps = rt.steps + 1
                            if steps > rt.step_budget:
                                raise StepBudgetExceeded(
                                    f"step budget of {rt.step_budget} "
                                    "exhausted"
                                )
                            wire = value_fn(rt)
                            # port argument + builtin + bus_write steps
                            rt.steps = steps = rt.steps + 3
                            if steps > rt.step_budget:
                                rt.steps = rt.step_budget + 1
                                raise StepBudgetExceeded(
                                    f"step budget of {rt.step_budget} "
                                    "exhausted"
                                )
                            wire = coerce_value(rt, wire)
                            rt.bus.write_port(
                                port, int(wire) & value_mask, size
                            )

                        return fused_port_write
            coerces = (
                tuple(_coerce_fn(param) for param in signature.params)
                if signature is not None
                else None
            )

            consts = [_const_of(arg) for arg in expr.args]
            static = []
            all_static = True
            for index, (is_const, value) in enumerate(consts):
                if not is_const:
                    all_static = False
                    break
                ok, coerced = _static_coerce(
                    params[index] if index < len(params) else None, value
                )
                if not ok:
                    all_static = False
                    break
                static.append(coerced)

            if all_static:
                # Every argument is a literal with a state-free coercion:
                # the whole call prologue (entry step, one step per
                # argument, the builtin's own step) collapses into one
                # batched add, and the coerced argument list is built at
                # lowering time.
                args_template = tuple(static)
                total = len(args_template) + 2

                def call_builtin_const(rt):
                    rt.steps = steps = rt.steps + total
                    if steps > rt.step_budget:
                        rt.steps = rt.step_budget + 1
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                    return builtin(rt, list(args_template))

                return call_builtin_const

            #: Per-argument plan: a literal's value, or its closure.
            plan = tuple(
                (True, value, None) if is_const else (False, None, fn)
                for (is_const, value), fn in zip(consts, arg_fns)
            )

            def call_builtin(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                args = []
                for is_const, value, fn in plan:
                    if is_const:
                        rt.steps = steps = rt.steps + 1
                        if steps > rt.step_budget:
                            raise StepBudgetExceeded(
                                f"step budget of {rt.step_budget} exhausted"
                            )
                        args.append(value)
                    else:
                        args.append(fn(rt))
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                if coerces is not None:
                    args = [
                        coerce(rt, value)
                        for value, coerce in zip(args, coerces)
                    ] + args[len(coerces) :]
                return builtin(rt, args)

            return call_builtin

        if name not in self.function_decls:
            error = InterpreterBug(f"call of undefined function {name!r}")

            def call_undefined(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                for fn in arg_fns:
                    fn(rt)
                raise error

            return call_undefined

        compiled = self.compiled  # late-bound: filled before execution

        def call_function(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            prepared = [
                value.copy() if value.__class__ is CStructValue else value
                for value in [fn(rt) for fn in arg_fns]
            ]
            return compiled[name](rt, prepared)

        return call_function

    def _match_port_read(self, expr: ast.Expr) -> tuple[int, int] | None:
        """(port, size) when ``expr`` is ``inb/inw/inl(<int literal>)``."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.callee, ast.Ident)
            and expr.callee.name in _PORT_READS
            and expr.callee.name not in self.function_decls
            and len(expr.args) == 1
        ):
            return None
        signature = BUILTIN_SIGNATURES.get(expr.callee.name)
        if signature is None or len(signature.params) != 1:
            return None
        is_const, value = _const_of(expr.args[0])
        if not is_const or type(value) is not int:
            return None
        ok, port_value = _static_coerce(signature.params[0], value)
        if not ok:
            return None
        return int(port_value), _PORT_READS[expr.callee.name]

    def _match_masked_port_read(self, expr: ast.Expr):
        """(steps, port, size, transform) for port-read-shaped operands.

        Recognises ``inb(PORT)`` (4 walker steps) and
        ``inb(PORT) <arith-op> LITERAL`` in either operand order (6 walker
        steps: the inner Binary's entry, the read's 4, the literal's 1).
        ``transform`` maps the raw bus value to the expression's value
        using wrap functions resolved here.
        """
        matched = self._match_port_read(expr)
        if matched is not None:
            port, size = matched
            return 4, port, size, None
        if not (
            isinstance(expr, ast.Binary)
            and expr.op in _ARITH_OPS
            and expr.left is not None
            and expr.right is not None
        ):
            return None
        arithmetic = _ARITH_OPS[expr.op]
        for read_side, const_side, read_left in (
            (expr.left, expr.right, True),
            (expr.right, expr.left, False),
        ):
            matched = self._match_port_read(read_side)
            if matched is None:
                continue
            is_const, literal = _const_of(const_side)
            if not is_const or type(literal) is not int:
                return None
            port, size = matched
            left_ctype = expr.left.ctype
            right_ctype = expr.right.ctype
            left_t = left_ctype if isinstance(left_ctype, IntCType) else S32
            right_t = right_ctype if isinstance(right_ctype, IntCType) else S32
            common_wrap = _wrap_fn(usual_arithmetic(left_t, right_t))
            result_type = (
                expr.ctype if isinstance(expr.ctype, IntCType) else S32
            )
            result_wrap = _wrap_fn(result_type)
            wrapped_literal = common_wrap(literal)
            if read_left:

                def transform(raw):
                    return result_wrap(
                        arithmetic(common_wrap(raw), wrapped_literal)
                    )

            else:

                def transform(raw):
                    return result_wrap(
                        arithmetic(wrapped_literal, common_wrap(raw))
                    )

            return 6, port, size, transform
        return None

    def _lower_index(self, expr: ast.Index) -> ExprFn:
        assert expr.base is not None and expr.index is not None
        base = self._lower_expr(expr.base)
        index = self._lower_expr(expr.index)

        def load_index(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            base_value = base(rt)
            index_value = int(index(rt))
            if base_value.__class__ is CPointer:
                return base_value.load(index_value)
            if isinstance(base_value, str):
                if not 0 <= index_value <= len(base_value):
                    raise MachineFault("string index out of bounds")
                return (
                    ord(base_value[index_value])
                    if index_value < len(base_value)
                    else 0
                )
            raise MachineFault("subscript of non-array value")

        return load_index

    def _lower_member(self, expr: ast.Member) -> ExprFn:
        assert expr.base is not None
        base = self._lower_expr(expr.base)
        name = expr.name
        arrow = expr.arrow

        def load_member(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            value = base(rt)
            if value.__class__ is CPointer and arrow:
                value = value.load(0)
            if not isinstance(value, CStructValue):
                raise MachineFault("member access on non-struct value")
            if name not in value.fields:
                raise InterpreterBug(f"missing struct field {name!r}")
            return value.fields[name]

        return load_member

    def _lower_unary(self, expr: ast.Unary) -> ExprFn:
        assert expr.operand is not None
        op = expr.op

        if op in ("++", "--"):
            delta = 1 if op == "++" else -1

            if isinstance(expr.operand, ast.Ident):
                return self._lower_ident_bump(expr.operand, delta, postfix=False)

            apply_delta = self._lower_apply_delta(expr.operand, delta)

            def prefix_op(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return apply_delta(rt)

            return prefix_op

        result_type = expr.ctype if isinstance(expr.ctype, IntCType) else S32
        wrap = _wrap_fn(result_type)

        operand_const, operand_val = _const_of(expr.operand)
        if operand_const and type(operand_val) is int and op in ("-", "~", "!"):
            if op == "-":
                folded = wrap(-operand_val)
            elif op == "~":
                folded = wrap(~operand_val)
            else:
                folded = 0 if operand_val != 0 else 1

            def constant_unary(rt):
                rt.steps = steps = rt.steps + 2
                if steps > rt.step_budget:
                    rt.steps = rt.step_budget + 1
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return folded

            return constant_unary

        operand = self._lower_expr(expr.operand)

        if op == "-":

            def negate(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return wrap(-int(operand(rt)))

            return negate

        if op == "~":

            def complement(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                return wrap(~int(operand(rt)))

            return complement

        if op == "!":

            def logical_not(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                value = operand(rt)
                if type(value) is int:
                    return 0 if value != 0 else 1
                return 0 if _truthy(value) else 1

            return logical_not

        if op == "*":

            def deref(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                value = operand(rt)
                if value.__class__ is CPointer:
                    return value.load(0)
                raise MachineFault("dereference of non-pointer value")

            return deref

        return _raising(InterpreterBug(f"unhandled unary {op!r}"))

    def _lower_postfix(self, expr: ast.Postfix) -> ExprFn:
        assert expr.operand is not None
        delta = 1 if expr.op == "++" else -1

        if isinstance(expr.operand, ast.Ident):
            return self._lower_ident_bump(expr.operand, delta, postfix=True)

        load = self._lower_expr(expr.operand)
        apply_delta = self._lower_apply_delta(expr.operand, delta)

        def postfix_op(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            old_value = load(rt)
            apply_delta(rt)
            return old_value

        return postfix_op

    def _lower_ident_bump(
        self, target: ast.Ident, delta: int, postfix: bool
    ) -> ExprFn:
        """Fused ``i++``/``--i`` on a plain identifier.

        The walker's sequence is entry step, lvalue load (one step),
        re-load inside ``_apply_delta`` (one more step for postfix), then
        the store — all side-effect free between steps, so the adds batch
        and the scope scan runs once.
        """
        name = target.name
        ctype = target.ctype if isinstance(target.ctype, IntCType) else S32
        wrap = _wrap_fn(ctype)
        total = 3 if postfix else 2

        def ident_bump(rt):
            rt.steps = steps = rt.steps + total
            if steps > rt.step_budget:
                rt.steps = rt.step_budget + 1
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            container = None
            scopes = rt._scopes
            if scopes:
                frames = scopes[-1]
                index = len(frames) - 1
                while index >= 0:
                    scope = frames[index]
                    if name in scope:
                        container = scope
                        break
                    index -= 1
            if container is None:
                globals_ = rt.globals
                if name in globals_:
                    container = globals_
            if container is None:
                # Mirrors the walker: even a function name (whose load
                # yields an address) faults at the store.
                raise InterpreterBug(f"unbound identifier {name!r}")
            value = container[name]
            if value.__class__ is CArray:  # decay, as a value load would
                value = CPointer(value, 0)
            if value.__class__ is CPointer:
                new_value: object = value.advanced(delta)
            else:
                new_value = wrap(int(value) + delta)
            container[name] = new_value
            return value if postfix else new_value

        return ident_bump

    def _lower_apply_delta(self, target: ast.Expr, delta: int) -> ExprFn:
        """Mirror ``Interpreter._apply_delta`` (load, bump, store)."""
        load = self._lower_expr(target)
        store = self._lower_store(target)
        ctype = target.ctype if isinstance(target.ctype, IntCType) else S32
        wrap = _wrap_fn(ctype)

        def apply_delta(rt):
            value = load(rt)
            if value.__class__ is CPointer:
                new_value: object = value.advanced(delta)
            else:
                new_value = wrap(int(value) + delta)
            store(rt, new_value)
            return new_value

        return apply_delta

    # -- binary operators --------------------------------------------------

    def _lower_binary_expr(self, expr: ast.Binary) -> ExprFn:
        assert expr.left is not None and expr.right is not None
        op = expr.op

        if op == "&&":
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)

            def logical_and(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                value = left(rt)
                if not (value != 0 if type(value) is int else _truthy(value)):
                    return 0
                value = right(rt)
                return (
                    1
                    if (value != 0 if type(value) is int else _truthy(value))
                    else 0
                )

            return logical_and

        if op == "||":
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)

            def logical_or(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                value = left(rt)
                if value != 0 if type(value) is int else _truthy(value):
                    return 1
                value = right(rt)
                return (
                    1
                    if (value != 0 if type(value) is int else _truthy(value))
                    else 0
                )

            return logical_or

        operate = self._lower_binary_op(
            op,
            expr.left,
            expr.right,
            expr.ctype,
            consume_entry_step=True,
        )
        return operate

    def _lower_binary_op(
        self,
        op: str,
        left_expr: ast.Expr,
        right_expr: ast.Expr,
        result_ctype: CType | None,
        consume_entry_step: bool,
    ) -> ExprFn:
        """Non-shortcut binary operation.

        ``consume_entry_step`` mirrors the walker: an :class:`ast.Binary`
        node consumes one step on entry (``_eval``); the Binary a compound
        assignment synthesises is evaluated via ``_eval_binary`` directly
        and does not.

        Literal int operands are folded: their steps are batched into the
        entry add (see ``_const_of``), and an all-literal operation is
        computed once at lowering time.
        """
        left_ctype = left_expr.ctype
        right_ctype = right_expr.ctype
        left_t = left_ctype if isinstance(left_ctype, IntCType) else S32
        right_t = right_ctype if isinstance(right_ctype, IntCType) else S32
        common = usual_arithmetic(left_t, right_t)
        common_wrap = _wrap_fn(common)
        result_type = result_ctype if isinstance(result_ctype, IntCType) else S32
        result_wrap = _wrap_fn(result_type)

        left_const, left_val = _const_of(left_expr)
        right_const, right_val = _const_of(right_expr)
        left_const = left_const and type(left_val) is int
        right_const = right_const and type(right_val) is int

        if left_const and right_const:
            total = (1 if consume_entry_step else 0) + 2
            folded, fold_error = _fold_binary(
                op, left_val, right_val, common_wrap, result_wrap,
                result_type,
            )

            def constant_op(rt):
                rt.steps = steps = rt.steps + total
                if steps > rt.step_budget:
                    rt.steps = rt.step_budget + 1
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                if fold_error is not None:
                    raise fold_error
                return folded

            return constant_op

        if right_const and not left_const and (
            op in _COMPARE_OPS or op in _ARITH_OPS
        ):
            fused = self._match_masked_port_read(left_expr)
            if fused is not None:
                # The whole `(inb(PORT) [& MASK]) <op> LITERAL` polling
                # pattern becomes one closure.  Every folded step either
                # precedes the bus read or follows it with no intervening
                # side effect; a budget crossing always reports
                # ``budget + 1`` steps, and whether the final read still
                # happened is invisible post-mortem (reads never reach
                # the disk), so batching them all is observably neutral.
                inner_steps, port, size, transform = fused
                total = (1 if consume_entry_step else 0) + inner_steps + 1
                if op in _COMPARE_OPS:
                    compare = _COMPARE_OPS[op]
                    wrapped_right = common_wrap(right_val)

                    def fused_read_compare(rt):
                        rt.steps = steps = rt.steps + total
                        if steps > rt.step_budget:
                            rt.steps = rt.step_budget + 1
                            raise StepBudgetExceeded(
                                f"step budget of {rt.step_budget} exhausted"
                            )
                        raw = rt.bus.read_port(port, size)
                        value = raw if transform is None else transform(raw)
                        return (
                            1
                            if compare(common_wrap(value), wrapped_right)
                            else 0
                        )

                    return fused_read_compare

                arithmetic = _ARITH_OPS[op]
                wrapped_right = common_wrap(right_val)

                def fused_read_arith(rt):
                    rt.steps = steps = rt.steps + total
                    if steps > rt.step_budget:
                        rt.steps = rt.step_budget + 1
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                    raw = rt.bus.read_port(port, size)
                    value = raw if transform is None else transform(raw)
                    return result_wrap(
                        arithmetic(common_wrap(value), wrapped_right)
                    )

                return fused_read_arith

        left = None if left_const else self._lower_expr(left_expr)
        right = None if right_const else self._lower_expr(right_expr)
        # Steps batched into the entry add: the entry itself plus a
        # leading literal operand; a trailing literal after a non-literal
        # left keeps its own position (mid_add) so a fault inside the
        # left operand reports the walker's exact step count.
        pre_add = (1 if consume_entry_step else 0) + (1 if left_const else 0)
        mid_add = 1 if (right_const and not left_const) else 0

        if op in ("==", "!=", "<", ">", "<=", ">="):
            compare = _COMPARE_OPS[op]

            def relational(rt):
                if pre_add:
                    rt.steps = steps = rt.steps + pre_add
                    if steps > rt.step_budget:
                        rt.steps = rt.step_budget + 1
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                left_v = left_val if left_const else left(rt)
                if mid_add:
                    rt.steps = steps = rt.steps + 1
                    if steps > rt.step_budget:
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                right_v = right_val if right_const else right(rt)
                if type(left_v) is int and type(right_v) is int:
                    return (
                        1
                        if compare(common_wrap(left_v), common_wrap(right_v))
                        else 0
                    )
                if isinstance(left_v, CPointer) or isinstance(right_v, CPointer):
                    return _pointer_binary(rt, op, left_v, right_v)
                if (
                    left_v is None
                    or right_v is None
                    or isinstance(left_v, str)
                    or isinstance(right_v, str)
                ):
                    return _pointerish_compare(rt, op, left_v, right_v)
                return int(
                    compare(common_wrap(int(left_v)), common_wrap(int(right_v)))
                )

            return relational

        if op in ("<<", ">>"):
            left_shift = op == "<<"
            signed = result_type.signed
            width_mask = (1 << result_type.width) - 1

            def shift(rt):
                if pre_add:
                    rt.steps = steps = rt.steps + pre_add
                    if steps > rt.step_budget:
                        rt.steps = rt.step_budget + 1
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                left_v = left_val if left_const else left(rt)
                if mid_add:
                    rt.steps = steps = rt.steps + 1
                    if steps > rt.step_budget:
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                right_v = right_val if right_const else right(rt)
                if type(left_v) is not int or type(right_v) is not int:
                    if isinstance(left_v, CPointer) or isinstance(
                        right_v, CPointer
                    ):
                        return _pointer_binary(rt, op, left_v, right_v)
                    if (
                        left_v is None
                        or right_v is None
                        or isinstance(left_v, str)
                        or isinstance(right_v, str)
                    ):
                        return _pointerish_compare(rt, op, left_v, right_v)
                    left_v, right_v = int(left_v), int(right_v)
                amount = right_v & 31
                base_v = result_wrap(left_v)
                if left_shift:
                    return result_wrap(base_v << amount)
                if signed:
                    return base_v >> amount  # arithmetic shift
                return result_wrap((base_v & width_mask) >> amount)

            return shift

        arithmetic = _ARITH_OPS.get(op)
        if arithmetic is None:
            error = InterpreterBug(f"unhandled binary {op!r}")

            def unhandled(rt):
                if pre_add:
                    rt.steps = steps = rt.steps + pre_add
                    if steps > rt.step_budget:
                        rt.steps = rt.step_budget + 1
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                if not left_const:
                    left(rt)
                if mid_add:
                    rt.steps = steps = rt.steps + 1
                    if steps > rt.step_budget:
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                if not right_const:
                    right(rt)
                raise error

            return unhandled

        def binary_arith(rt):
            if pre_add:
                rt.steps = steps = rt.steps + pre_add
                if steps > rt.step_budget:
                    rt.steps = rt.step_budget + 1
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
            left_v = left_val if left_const else left(rt)
            if mid_add:
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
            right_v = right_val if right_const else right(rt)
            if type(left_v) is int and type(right_v) is int:
                return result_wrap(
                    arithmetic(common_wrap(left_v), common_wrap(right_v))
                )
            if isinstance(left_v, CPointer) or isinstance(right_v, CPointer):
                return _pointer_binary(rt, op, left_v, right_v)
            if (
                left_v is None
                or right_v is None
                or isinstance(left_v, str)
                or isinstance(right_v, str)
            ):
                return _pointerish_compare(rt, op, left_v, right_v)
            return result_wrap(
                arithmetic(common_wrap(int(left_v)), common_wrap(int(right_v)))
            )

        return binary_arith

    def _lower_assign(self, expr: ast.Assign) -> ExprFn:
        assert expr.target is not None and expr.value is not None
        target_type = expr.target.ctype
        store = self._lower_store(expr.target)

        if expr.op == "=":
            value = self._lower_expr(expr.value)

            if target_type is None:

                def assign_untyped(rt):
                    rt.steps = steps = rt.steps + 1
                    if steps > rt.step_budget:
                        raise StepBudgetExceeded(
                            f"step budget of {rt.step_budget} exhausted"
                        )
                    result = value(rt)
                    store(rt, result)
                    return result

                return assign_untyped

            coerce = _coerce_fn(target_type)

            def assign(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                result = coerce(rt, value(rt))
                store(rt, result)
                return result

            return assign

        # Compound assignment: the walker synthesises a Binary over the
        # target and value and evaluates it via _eval_binary directly,
        # without an extra entry step for the Binary itself.
        result_ctype = target_type if isinstance(target_type, IntCType) else S32
        operate = self._lower_binary_op(
            expr.op[:-1],
            expr.target,
            expr.value,
            result_ctype,
            consume_entry_step=False,
        )

        if target_type is None:

            def compound_untyped(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt.step_budget:
                    raise StepBudgetExceeded(
                        f"step budget of {rt.step_budget} exhausted"
                    )
                result = operate(rt)
                store(rt, result)
                return result

            return compound_untyped

        coerce = _coerce_fn(target_type)

        def compound(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt.step_budget:
                raise StepBudgetExceeded(
                    f"step budget of {rt.step_budget} exhausted"
                )
            result = coerce(rt, operate(rt))
            store(rt, result)
            return result

        return compound

    # -- lvalue stores -----------------------------------------------------

    def _lower_store(
        self, expr: ast.Expr
    ) -> Callable[["ClosureInterpreter", object], None]:
        """Mirror ``Interpreter._store_lvalue`` for a known target shape."""
        if isinstance(expr, ast.Ident):
            name = expr.name

            def store_ident(rt, value):
                scopes = rt._scopes
                if scopes:
                    frames = scopes[-1]
                    index = len(frames) - 1
                    while index >= 0:
                        scope = frames[index]
                        if name in scope:
                            if value.__class__ is CStructValue:
                                value = value.copy()
                            scope[name] = value
                            return
                        index -= 1
                globals_ = rt.globals
                if name in globals_:
                    if value.__class__ is CStructValue:
                        value = value.copy()
                    globals_[name] = value
                    return
                raise InterpreterBug(f"unbound identifier {name!r}")

            return store_ident

        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            base = self._lower_expr(expr.base)
            index = self._lower_expr(expr.index)

            def store_index(rt, value):
                base_value = base(rt)
                index_value = int(index(rt))
                if base_value.__class__ is CPointer:
                    base_value.store(value, index_value)
                    return
                raise MachineFault("store into non-array value")

            return store_index

        if isinstance(expr, ast.Member):
            assert expr.base is not None
            name = expr.name
            member_base = self._lower_member_base(expr)

            def store_member(rt, value):
                base_value = member_base(rt)
                base_value.fields[name] = (
                    value.copy() if value.__class__ is CStructValue else value
                )

            return store_member

        if isinstance(expr, ast.Unary) and expr.op == "*":
            assert expr.operand is not None
            operand = self._lower_expr(expr.operand)

            def store_deref(rt, value):
                pointer = operand(rt)
                if pointer.__class__ is CPointer:
                    pointer.store(value, 0)
                    return
                raise MachineFault("store through non-pointer value")

            return store_deref

        error = InterpreterBug(f"store to non-lvalue {expr!r}")

        def store_invalid(rt, value):
            raise error

        return store_invalid

    def _lower_member_base(self, expr: ast.Member) -> ExprFn:
        """Mirror ``Interpreter._eval_member_base`` (reference, not copy)."""
        base_expr = expr.base
        assert base_expr is not None
        arrow = expr.arrow

        if isinstance(base_expr, ast.Ident):
            name = base_expr.name

            def reference_ident(rt):
                cell = rt._find_cell(name)
                if cell is None:
                    raise InterpreterBug(f"unbound identifier {name!r}")
                container, key = cell
                value = container[key]
                if value.__class__ is CPointer and arrow:
                    value = value.load(0)
                if not isinstance(value, CStructValue):
                    raise MachineFault("member store on non-struct value")
                return value

            return reference_ident

        base = self._lower_expr(base_expr)

        def reference(rt):
            value = base(rt)
            if value.__class__ is CPointer and arrow:
                value = value.load(0)
            if not isinstance(value, CStructValue):
                raise MachineFault("member store on non-struct value")
            return value

        return reference


# -- shared runtime helpers ----------------------------------------------------


def _truthy(value) -> bool:
    """Inline of ``Interpreter._truthy``."""
    if value is None:
        return False
    if isinstance(value, (CPointer, str)):
        return True
    return int(value) != 0


def _fold_binary(op, left, right, common_wrap, result_wrap, result_type):
    """Lowering-time evaluation of a binary op over two int literals.

    Returns ``(value, None)`` or ``(None, error)`` where ``error`` is the
    exception the walker would raise every time it evaluated the node.
    """
    if op in _COMPARE_OPS:
        return (
            1 if _COMPARE_OPS[op](common_wrap(left), common_wrap(right)) else 0,
            None,
        )
    if op in ("<<", ">>"):
        amount = right & 31
        base = result_wrap(left)
        if op == "<<":
            return result_wrap(base << amount), None
        if result_type.signed:
            return base >> amount, None
        width_mask = (1 << result_type.width) - 1
        return result_wrap((base & width_mask) >> amount), None
    arithmetic = _ARITH_OPS.get(op)
    if arithmetic is None:
        return None, InterpreterBug(f"unhandled binary {op!r}")
    try:
        return result_wrap(arithmetic(common_wrap(left), common_wrap(right))), None
    except MachineFault as fault:
        return None, fault


def _pointer_binary(rt, op: str, left, right):
    if op in ("==", "!=", "<", ">", "<=", ">="):
        return _pointerish_compare(rt, op, left, right)
    if op == "+":
        if isinstance(left, CPointer) and not isinstance(right, CPointer):
            return left.advanced(int(right))
        if isinstance(right, CPointer) and not isinstance(left, CPointer):
            return right.advanced(int(left))
    if op == "-" and isinstance(left, CPointer) and not isinstance(right, CPointer):
        return left.advanced(-int(right))
    raise MachineFault(f"invalid pointer arithmetic {op!r}")


def _pointerish_compare(rt, op: str, left, right):
    """Inline of ``Interpreter._pointerish_compare`` over runtime state."""

    def normalise(value):
        if value is None:
            return ("null",)
        if isinstance(value, str):
            return ("str", value)
        if isinstance(value, CPointer):
            return ("ptr", id(value.array), value.offset)
        return ("int", int(value))

    left_n, right_n = normalise(left), normalise(right)
    if left_n[0] == "int" and left_n[1] == 0:
        left_n = ("null",)
    if right_n[0] == "int" and right_n[1] == 0:
        right_n = ("null",)
    equal = left_n == right_n
    if op == "==":
        return int(equal)
    if op == "!=":
        return int(not equal)
    if left_n[0] == "ptr" and right_n[0] == "ptr" and left_n[1] == right_n[1]:
        left_v, right_v = left_n[2], right_n[2]
    else:
        left_v, right_v = rt._numeric_view(left), rt._numeric_view(right)
    return int(_COMPARE_OPS[op](left_v, right_v))


def _mod(left: int, right: int) -> int:
    if right == 0:
        raise MachineFault("division by zero")
    return left - _c_div(left, right) * right


def _div(left: int, right: int) -> int:
    if right == 0:
        raise MachineFault("division by zero")
    return _c_div(left, right)


_COMPARE_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "%": _mod,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def _raising(error: Exception):
    """A closure that raises ``error`` when executed (never at lowering)."""

    def raise_it(rt, *args):
        raise error

    return raise_it


# -- the backend ---------------------------------------------------------------


def compiled_functions(program: CompiledProgram) -> dict[str, Callable]:
    """Lowered function bodies for ``program``, cached on the program."""
    cached = getattr(program, "_closure_functions", None)
    if cached is None:
        cached = _Lowerer(program).lower_unit()
        program._closure_functions = cached
    return cached


class _LateBoundCalls(dict):
    """Function table whose entries dispatch through the *executing*
    interpreter's own compiled table.

    Resume-lowered statements (``_exec_resumed``) are cached on shared
    AST nodes, so their call sites cannot close over any one program's
    or backend's table; these dispatchers look it up per call instead.
    """

    def __missing__(self, name):
        def dispatch(rt, args):
            return rt._compiled[name](rt, args)

        self[name] = dispatch
        return dispatch


#: The shared table resume-lowered call sites bind against.
_RESUME_CALLS = _LateBoundCalls()


class ClosureInterpreter(Interpreter):
    """Drop-in :class:`Interpreter` executing closure-compiled bodies.

    Globals are still initialised by the inherited (tree-walking) logic —
    initialisers run once and their step accounting must match the
    reference backend exactly — but every function call dispatches into
    the lowered closures.
    """

    def __init__(
        self,
        program,
        bus=None,
        step_budget: int = 2_000_000,
        defer_globals: bool = False,
    ):
        # Before super().__init__: global initialisers may run there and
        # can call functions, which dispatch through ``_call_function``
        # into this table.
        self._compiled = compiled_functions(program)
        super().__init__(
            program, bus, step_budget=step_budget, defer_globals=defer_globals
        )

    def call(self, name: str, *args):
        compiled = self._compiled.get(name)
        if compiled is None:
            raise InterpreterBug(f"no function {name!r} in program")
        return compiled(self, list(args))

    def _call_function(self, decl, args):
        # Tree-walked statements (global initialisers, resumed in-flight
        # calls) dispatch nested calls into the lowered bodies; the
        # lowered call prologue is step-for-step the walker's.
        return self._compiled[decl.name](self, args)

    #: Lazy per-interpreter lowerer for resumed statements (class
    #: sentinel; instances build their own on first resume).
    _resume_lowerer = None

    def _exec_resumed(self, stmt):
        # Fresh statements in a resumed in-flight call run lowered, so a
        # mutant's budget-burning loop reached through a sub-call
        # checkpoint stays at backend speed.  The lowering is cached on
        # the AST node: compile-cache splices share unmutated
        # declarations' nodes across a whole campaign, and the lowered
        # call sites dispatch through ``rt._compiled`` (see
        # ``_RESUME_CALLS``), so one lowering serves every mutant and
        # every compiled backend.
        fn = getattr(stmt, "_resume_lowered", None)
        if fn is None:
            lowerer = self._resume_lowerer
            if lowerer is None:
                lowerer = _Lowerer(self.program)
                lowerer.compiled = _RESUME_CALLS
                self._resume_lowerer = lowerer
            fn = lowerer._lower_stmt(stmt)
            stmt._resume_lowered = fn
        fn(self)


#: Named backends, for harness-level selection.
BACKENDS = {
    "tree": Interpreter,
    "closure": ClosureInterpreter,
}

#: Backends registered on first use — importing the module adds the
#: class to ``BACKENDS`` (keeps this module import-light).
_LAZY_BACKENDS = {
    "source": "repro.minic.codegen",
    "hybrid": "repro.minic.codegen",
}


def interpreter_for(backend: str):
    """The interpreter class implementing ``backend``."""
    cls = BACKENDS.get(backend)
    if cls is None and backend in _LAZY_BACKENDS:
        importlib.import_module(_LAZY_BACKENDS[backend])
        cls = BACKENDS.get(backend)
    if cls is None:
        available = sorted(set(BACKENDS) | set(_LAZY_BACKENDS))
        raise ValueError(
            f"unknown mini-C backend {backend!r}; "
            f"available: {', '.join(available)}"
        )
    return cls
