"""Abstract syntax tree for mini-C.

Nodes are plain mutable dataclasses; `repro.minic.sema` annotates
expressions with their computed type (``ctype``) and statements keep an
``origins`` set — every ``(file, line)`` a statement's tokens came from,
including macro definition sites.  The interpreter unions ``origins`` of
executed statements to produce the coverage set used by the paper's
dead-code classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import SourceLocation
from repro.minic.ctypes import CType

Origins = frozenset[tuple[str, int]]

EMPTY_ORIGINS: Origins = frozenset()


@dataclass
class Node:
    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)


# -- expressions -------------------------------------------------------------


@dataclass
class Expr(Node):
    ctype: CType | None = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0
    unsigned: bool = False


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Call(Expr):
    callee: Expr | None = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Member(Expr):
    base: Expr | None = None
    name: str = ""
    arrow: bool = False


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class Postfix(Expr):
    op: str = ""  # "++" or "--"
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Assign(Expr):
    op: str = "="  # "=", "+=", "&=", ...
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Ternary(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    other: Expr | None = None


@dataclass
class Cast(Expr):
    target_type: CType | None = None
    operand: Expr | None = None


@dataclass
class Comma(Expr):
    left: Expr | None = None
    right: Expr | None = None


# -- statements -------------------------------------------------------------


@dataclass
class Stmt(Node):
    origins: Origins = field(default=EMPTY_ORIGINS, kw_only=True)


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class LocalDecl(Stmt):
    """One local variable declaration (possibly one of several per line)."""

    name: str = ""
    var_type: CType | None = None
    init: "Expr | InitList | None" = None
    const: bool = False


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None  # LocalDecl / ExprStmt / EmptyStmt
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class CaseGroup(Node):
    """One run of labels and the statements under them (fallthrough kept)."""

    values: list[int | None] = field(default_factory=list)  # None = default
    body: list[Stmt] = field(default_factory=list)
    origins: Origins = EMPTY_ORIGINS


@dataclass
class Switch(Stmt):
    expr: Expr | None = None
    groups: list[CaseGroup] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


# -- top-level declarations ---------------------------------------------------


@dataclass
class InitList(Node):
    """Brace initializer ``{ a, b, c }`` for structs and arrays."""

    items: list[Expr] = field(default_factory=list)


@dataclass
class TopDecl(Node):
    origins: Origins = field(default=EMPTY_ORIGINS, kw_only=True)


@dataclass
class StructDef(TopDecl):
    name: str = ""
    # fields resolved into the StructType registry by the parser


@dataclass
class TypedefDecl(TopDecl):
    name: str = ""
    target: CType | None = None


@dataclass
class GlobalDecl(TopDecl):
    name: str = ""
    var_type: CType | None = None
    init: Expr | InitList | None = None
    const: bool = False
    static: bool = False
    extern: bool = False


@dataclass
class Param(Node):
    name: str = ""
    ctype: CType | None = None


@dataclass
class FuncDecl(TopDecl):
    name: str = ""
    return_type: CType | None = None
    params: list[Param] = field(default_factory=list)
    variadic: bool = False
    body: Block | None = None  # None = prototype
    static: bool = False
    inline: bool = False


@dataclass
class TranslationUnit(Node):
    decls: list[TopDecl] = field(default_factory=list)
