"""Line-based C preprocessor for mini-C.

Supports exactly what Linux-era driver code and the generated Devil stubs
need: object- and function-like ``#define`` (with multi-line continuation),
``#undef``, ``#include "name"`` resolved from a virtual registry,
``#ifdef``/``#ifndef``/``#else``/``#endif`` (header guards), ``__FILE__``
and ``__LINE__``.

Two properties matter to the evaluation harness:

* substituted tokens keep the *use-site* line (so statement coverage and
  ``__LINE__`` behave), while carrying the macro definition's file/line in
  ``macro_file``/``macro_line`` — that is how a mutation inside a
  ``#define`` body is traced to executed code for dead-code classification;
* expansion is purely textual/token-level with a hide-set, like a real
  cpp, so mutants that alter macro bodies behave exactly as they would
  under gcc.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diagnostics import CompileError, Diagnostic, Severity, SourceLocation
from repro.minic.lexer import lex_line, strip_comments
from repro.minic.tokens import CToken, CTokenKind


class CPreprocessorError(CompileError):
    """A malformed directive or macro invocation."""


def _error(message: str, location: SourceLocation) -> CPreprocessorError:
    return CPreprocessorError([Diagnostic(Severity.ERROR, "c-cpp", message, location)])


@dataclass(frozen=True)
class MacroDef:
    name: str
    params: tuple[str, ...] | None  # None = object-like
    body: tuple[CToken, ...]
    filename: str
    line: int

    @property
    def function_like(self) -> bool:
        return self.params is not None


class Preprocessor:
    """Stateful preprocessor; one instance per compilation."""

    def __init__(self, include_registry: dict[str, str] | None = None):
        self.includes = dict(include_registry or {})
        self.macros: dict[str, MacroDef] = {}
        self._include_stack: list[str] = []

    # -- public API --------------------------------------------------------

    def process(self, text: str, filename: str) -> list[CToken]:
        """Preprocess ``text`` into an expanded token stream (no EOF)."""
        output: list[CToken] = []
        self._process_file(text, filename, output)
        return output

    # -- file / line walking ----------------------------------------------

    def _process_file(self, text: str, filename: str, output: list[CToken]) -> None:
        if filename in self._include_stack:
            raise _error(
                f"circular include of {filename!r}",
                SourceLocation(1, 1, filename),
            )
        self._include_stack.append(filename)
        try:
            lines = self._strip(text).split("\n")
            buffer: list[CToken] = []
            condition_stack: list[bool] = []
            index = 0
            while index < len(lines):
                line = lines[index]
                line_number = index + 1
                # Logical-line continuation for directives and long lines.
                while line.rstrip().endswith("\\") and index + 1 < len(lines):
                    line = line.rstrip()[:-1] + " " + lines[index + 1]
                    index += 1
                index += 1

                stripped = line.strip()
                active = all(condition_stack)
                if stripped.startswith("#"):
                    self._flush(buffer, output)
                    self._directive(
                        stripped[1:].strip(),
                        line_number,
                        filename,
                        condition_stack,
                        active,
                        output,
                    )
                    continue
                if not active:
                    continue
                buffer.extend(self._lex_line(line, line_number, filename))
            self._flush(buffer, output)
            if condition_stack:
                raise _error(
                    "unterminated #ifdef", SourceLocation(len(lines), 1, filename)
                )
        finally:
            self._include_stack.pop()

    def _lex_line(self, line: str, line_number: int, filename: str) -> list[CToken]:
        """Lex one logical line; subclass hook for campaign-level caching."""
        return lex_line(line, line_number, filename)

    def _strip(self, text: str) -> str:
        """Comment removal; subclass hook for campaign-level reuse."""
        return strip_comments(text)

    def _include(self, target: str, output: list[CToken]) -> None:
        """Process one resolved include; subclass hook for memoisation."""
        self._process_file(self.includes[target], target, output)

    def _flush(self, buffer: list[CToken], output: list[CToken]) -> None:
        if buffer:
            output.extend(self._expand(buffer, frozenset()))
            buffer.clear()

    # -- directives -----------------------------------------------------------

    def _directive(
        self,
        body: str,
        line: int,
        filename: str,
        condition_stack: list[bool],
        active: bool,
        output: list[CToken],
    ) -> None:
        location = SourceLocation(line, 1, filename)
        parts = body.split(None, 1)
        if not parts:
            return
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""

        if name == "ifdef":
            condition_stack.append(active and rest.split()[0] in self.macros)
            return
        if name == "ifndef":
            condition_stack.append(active and rest.split()[0] not in self.macros)
            return
        if name == "else":
            if not condition_stack:
                raise _error("#else without #ifdef", location)
            condition_stack[-1] = not condition_stack[-1] and all(condition_stack[:-1])
            return
        if name == "endif":
            if not condition_stack:
                raise _error("#endif without #ifdef", location)
            condition_stack.pop()
            return
        if not active:
            return

        if name == "define":
            self._define(rest, line, filename)
            return
        if name == "undef":
            self.macros.pop(rest.split()[0], None)
            return
        if name == "include":
            target = rest.strip().strip('"<>')
            if target not in self.includes:
                raise _error(f"cannot find include file {target!r}", location)
            self._include(target, output)
            return
        if name in ("pragma", "error", "warning"):
            return
        raise _error(f"unknown directive #{name}", location)

    def _define(self, rest: str, line: int, filename: str) -> None:
        location = SourceLocation(line, 1, filename)
        tokens = self._lex_line(rest, line, filename)
        if not tokens or tokens[0].kind is not CTokenKind.IDENT:
            raise _error("#define needs a macro name", location)
        name_token = tokens[0]
        params: tuple[str, ...] | None = None
        body_start = 1
        # Function-like iff '(' immediately follows the name (no space).
        name_end_column = name_token.column + len(name_token.text)
        if (
            len(tokens) > 1
            and tokens[1].is_punct("(")
            and tokens[1].column == name_end_column
        ):
            names: list[str] = []
            index = 2
            while index < len(tokens) and not tokens[index].is_punct(")"):
                if tokens[index].kind is CTokenKind.IDENT:
                    names.append(tokens[index].text)
                elif not tokens[index].is_punct(","):
                    raise _error("malformed macro parameter list", location)
                index += 1
            if index >= len(tokens):
                raise _error("unterminated macro parameter list", location)
            params = tuple(names)
            body_start = index + 1
        self.macros[name_token.text] = MacroDef(
            name=name_token.text,
            params=params,
            body=tuple(tokens[body_start:]),
            filename=filename,
            line=line,
        )

    # -- expansion ---------------------------------------------------------------

    def _expand(
        self, tokens: list[CToken], hidden: frozenset[str]
    ) -> list[CToken]:
        output: list[CToken] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            index += 1
            if token.kind is not CTokenKind.IDENT:
                output.append(token)
                continue
            if token.text == "__FILE__":
                output.append(
                    CToken(
                        CTokenKind.STRING,
                        f'"{token.filename}"',
                        token.line,
                        token.column,
                        token.filename,
                        token.macro_line,
                        token.macro_file,
                    )
                )
                continue
            if token.text == "__LINE__":
                output.append(
                    CToken(
                        CTokenKind.INT,
                        str(token.line),
                        token.line,
                        token.column,
                        token.filename,
                        token.macro_line,
                        token.macro_file,
                    )
                )
                continue
            macro = self.macros.get(token.text)
            if macro is None or token.text in hidden:
                output.append(token)
                continue
            if macro.function_like:
                if index >= len(tokens) or not tokens[index].is_punct("("):
                    output.append(token)  # name without call: leave alone
                    continue
                arguments, index = self._collect_arguments(tokens, index, token)
                expanded_args = [
                    self._expand(argument, hidden) for argument in arguments
                ]
                substituted = self._substitute(macro, expanded_args, token)
            else:
                substituted = [
                    _stamp(body_token, token, macro) for body_token in macro.body
                ]
            output.extend(self._expand(substituted, hidden | {macro.name}))
        return output

    def _collect_arguments(
        self, tokens: list[CToken], index: int, name_token: CToken
    ) -> tuple[list[list[CToken]], int]:
        """Collect macro call arguments starting at the '(' token."""
        assert tokens[index].is_punct("(")
        index += 1
        depth = 1
        arguments: list[list[CToken]] = [[]]
        while index < len(tokens):
            token = tokens[index]
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    index += 1
                    if arguments == [[]]:
                        arguments = []
                    return arguments, index
            elif token.is_punct(",") and depth == 1:
                arguments.append([])
                index += 1
                continue
            arguments[-1].append(token)
            index += 1
        raise _error(
            f"unterminated call of macro {name_token.text!r}", name_token.location
        )

    def _substitute(
        self, macro: MacroDef, arguments: list[list[CToken]], use: CToken
    ) -> list[CToken]:
        assert macro.params is not None
        if len(arguments) != len(macro.params):
            raise _error(
                f"macro {macro.name!r} expects {len(macro.params)} argument(s), "
                f"got {len(arguments)}",
                use.location,
            )
        by_name = dict(zip(macro.params, arguments))
        result: list[CToken] = []
        for body_token in macro.body:
            if body_token.kind is CTokenKind.IDENT and body_token.text in by_name:
                result.extend(by_name[body_token.text])
            else:
                result.append(_stamp(body_token, use, macro))
        return result


def _stamp(body_token: CToken, use: CToken, macro: MacroDef) -> CToken:
    """Relocate a macro-body token to the use site, keeping its origin."""
    return CToken(
        body_token.kind,
        body_token.text,
        use.line,
        use.column,
        use.filename,
        macro_line=body_token.macro_line or body_token.line,
        macro_file=body_token.macro_file or body_token.filename,
    )
