"""Incremental compilation for mutation campaigns.

``run_driver_campaign`` compiles thousands of *variants* of one driver
file, each differing from the baseline by a single token-sized edit.  The
stock pipeline re-preprocesses, re-parses and re-checks everything per
variant; this module exploits what campaigns share:

* **line-lex memo** — every physical line except the mutated one lexes to
  the same tokens, so logical lines are memoised by text across variants;
* **include memo** — the include registry (e.g. the generated Devil stub
  header) is identical for every variant, so its whole preprocessed token
  expansion (plus the macro definitions it contributes) is cached keyed
  by the macro-table fingerprint at the point of inclusion;
* **declaration splicing** — the variant's token stream is diffed against
  the baseline's; only the top-level declarations covering the changed
  token range are re-parsed, and the untouched declarations' ASTs are
  reused (their token spans, locations and therefore coverage origins are
  unchanged — single-token replacements never move line numbers).

Semantic analysis still runs over the full spliced unit (it is cheap and
its diagnostics order must match a from-scratch compile).  Correctness
falls back to a full compile whenever splicing cannot be proven safe:
multi-file programs, re-parsed ranges containing ``typedef``/``struct``
declarations (their parse mutates shared registries), or a diff that
reaches outside the recorded declaration spans.

The cache-correctness tests assert byte-identical results (diagnostics,
AST-derived outcomes, steps and coverage) between this path and
``compile_program`` over campaign samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

from repro.diagnostics import CompileError, DiagnosticSink
from repro.minic import ast
from repro.minic.lexer import strip_comments
from repro.minic.parser import Parser
from repro.minic.preprocessor import MacroDef, Preprocessor
from repro.minic.program import CompiledProgram, SourceFile, compile_program
from repro.minic.sema import Sema
from repro.minic.tokens import CToken, CTokenKind


class _CampaignPreprocessor(Preprocessor):
    """Preprocessor sharing lex/include caches across campaign variants."""

    def __init__(
        self,
        include_registry: dict[str, str] | None,
        line_cache: dict[tuple[str, int, str], list[CToken]],
        include_memo: dict,
        pre_stripped: tuple[str, str] | None = None,
    ):
        super().__init__(include_registry)
        self._line_cache = line_cache
        self._include_memo = include_memo
        #: (raw text, its comment-stripped form) for the top-level file.
        self._pre_stripped = pre_stripped

    def _strip(self, text: str) -> str:
        if self._pre_stripped is not None and text == self._pre_stripped[0]:
            return self._pre_stripped[1]
        return super()._strip(text)

    def _lex_line(self, line: str, line_number: int, filename: str) -> list[CToken]:
        key = (line, line_number, filename)
        cached = self._line_cache.get(key)
        if cached is None:
            cached = super()._lex_line(line, line_number, filename)
            self._line_cache[key] = cached
        return cached

    def _include(self, target: str, output: list[CToken]) -> None:
        fingerprint = (target, _macro_fingerprint(self.macros))
        cached = self._include_memo.get(fingerprint)
        if cached is None:
            expansion: list[CToken] = []
            super()._include(target, expansion)
            cached = (tuple(expansion), dict(self.macros))
            self._include_memo[fingerprint] = cached
        else:
            self.macros = dict(cached[1])
        output.extend(cached[0])


def _macro_fingerprint(macros: dict[str, MacroDef]) -> tuple:
    """Hashable identity of a macro table (names, params and bodies)."""
    return tuple(
        (name, macro.params, macro.body) for name, macro in sorted(macros.items())
    )


@dataclass
class _DeclGroup:
    """Top-level declarations parsed from one contiguous token span."""

    decls: list[ast.TopDecl]
    start: int  # token index of the first token of the group
    end: int  # token index one past the group's last token
    typedef_count: int  # typedef-table size *before* this group
    struct_count: int  # struct-registry size *before* this group
    #: True when parsing the group changed shared parser state (typedef
    #: table or struct registry — including struct bodies defined inline
    #: in a combined declaration like ``struct X { ... } var;``, which
    #: leave no StructDef in ``decls``).
    mutates_type_state: bool = False

    def reparse_safe(self) -> bool:
        """Whether re-parsing this group cannot disturb shared state."""
        if self.mutates_type_state:
            return False
        return not any(
            isinstance(decl, (ast.TypedefDecl, ast.StructDef))
            for decl in self.decls
        )


class CampaignCompiler:
    """Compile many single-edit variants of one driver file, fast.

    The baseline source is compiled once with full bookkeeping; each call
    to :meth:`compile_variant` then pays only for the mutated line's lex,
    the token diff, the re-parse of the touched declaration(s) and a full
    (cheap) semantic pass.  Results — including raised ``CompileError``
    diagnostics — are identical to ``compile_program([SourceFile(name,
    text)], registry)``.
    """

    def __init__(
        self,
        driver_filename: str,
        baseline_text: str,
        include_registry: dict[str, str] | None = None,
    ):
        self.driver_filename = driver_filename
        self.include_registry = dict(include_registry or {})
        self._line_cache: dict[tuple[str, int, str], list[CToken]] = {}
        self._include_memo: dict = {}
        self._stripped_baseline = None

        baseline_pp = _CampaignPreprocessor(
            self.include_registry, self._line_cache, self._include_memo
        )
        self._baseline_tokens = baseline_pp.process(
            baseline_text, driver_filename
        )
        #: Preprocessor frozen at the baseline's *final* macro table, for
        #: single-line re-expansion (valid for any line after the last
        #: directive — see ``_line_spliced_tokens``).
        self._splice_pp = baseline_pp
        self._groups, self._typedefs, self._structs = self._parse_groups(
            self._baseline_tokens
        )
        unit = ast.TranslationUnit(
            decls=[decl for group in self._groups for decl in group.decls]
        )
        if self._baseline_tokens:
            unit.location = self._baseline_tokens[0].location
        #: id(decl) -> that declaration's baseline check-pass diagnostics
        #: (the groups keep every baseline declaration alive, so ids are
        #: stable for the compiler's lifetime).
        self._decl_diags: dict[int, tuple] = {}
        self._sema_env: tuple | None = None
        #: True when a variant's full check pass overwrote the shared
        #: declarations' sema annotations under a non-baseline
        #: environment (see ``_ensure_baseline_annotations``).
        self._annotations_dirty = False
        self.baseline_program = self._sema_baseline(unit)
        self.baseline_text = baseline_text
        self._stripped_baseline = strip_comments(baseline_text)
        self._baseline_lines = baseline_text.split("\n")
        self._stripped_lines = self._stripped_baseline.split("\n")
        self._init_line_splicing()
        #: Cache-effectiveness counters (for benchmarks and tests).
        self.stats = {
            "incremental": 0,
            "full": 0,
            "identical": 0,
            "sema_reused": 0,
            "sema_full": 0,
        }

    # -- pipeline pieces ---------------------------------------------------

    #: Characters that may open/close a comment or string, or continue a
    #: line; an edit containing (or replacing) none of these cannot change
    #: the comment structure around it, so the baseline's comment-stripped
    #: text can be spliced instead of re-stripped.
    _STRIP_SENSITIVE = frozenset("/*\"'\\")

    def _preprocess(self, text: str) -> list[CToken]:
        preprocessor = _CampaignPreprocessor(
            self.include_registry,
            self._line_cache,
            self._include_memo,
            pre_stripped=self._spliced_strip(text),
        )
        return preprocessor.process(text, self.driver_filename)

    def _spliced_strip(self, text: str) -> tuple[str, str] | None:
        """(text, stripped) via splicing the baseline's stripped form."""
        stripped = self._stripped_baseline
        if stripped is None:
            return None
        base = self.baseline_text
        limit = min(len(base), len(text))
        prefix = 0
        chunk = 4096
        while chunk:
            while prefix + chunk <= limit and base[
                prefix : prefix + chunk
            ] == text[prefix : prefix + chunk]:
                prefix += chunk
            chunk //= 2
        suffix = 0
        limit -= prefix
        chunk = 4096
        while chunk:
            while (
                suffix + chunk <= limit
                and base[len(base) - suffix - chunk : len(base) - suffix]
                == text[len(text) - suffix - chunk : len(text) - suffix]
            ):
                suffix += chunk
            chunk //= 2
        new_segment = text[prefix : len(text) - suffix]
        old_segment = base[prefix : len(base) - suffix]
        if self._STRIP_SENSITIVE.intersection(new_segment) or (
            self._STRIP_SENSITIVE.intersection(old_segment)
        ):
            return None
        if stripped[prefix : len(base) - suffix] != old_segment:
            # The edited span is not plain code in the baseline (it sits
            # inside a comment): strip from scratch.
            return None
        return (
            text,
            stripped[:prefix] + new_segment + stripped[len(base) - suffix :],
        )

    # -- single-line token splicing ----------------------------------------

    def _init_line_splicing(self) -> None:
        """Precompute what single-line re-expansion needs.

        Expanding just the edited line and splicing its tokens into the
        baseline stream skips re-walking the whole file per variant.  It
        is exact when nothing can couple the line to its neighbours or
        to preprocessor state: no function-like macros (an object-like
        expansion can never consume tokens across lines), the line sits
        after every directive (the macro table there is the final one)
        and after every line continuation, and neither version of the
        line can alter comment/string structure.
        """
        spans: dict[int, tuple[int, int]] = {}
        bad_lines: set[int] = set()
        for index, token in enumerate(self._baseline_tokens):
            if token.filename != self.driver_filename:
                continue
            span = spans.get(token.line)
            if span is None:
                spans[token.line] = (index, index + 1)
            elif span[1] == index:
                spans[token.line] = (span[0], index + 1)
            else:  # interleaved with include expansion: not spliceable
                bad_lines.add(token.line)
        for line in bad_lines:
            spans.pop(line, None)
        self._line_spans = spans

        last_directive = 0
        lines = self._stripped_lines
        index = 0
        while index < len(lines):
            if lines[index].strip().startswith("#"):
                end = index
                while end + 1 < len(lines) and lines[end].rstrip().endswith("\\"):
                    end += 1
                last_directive = end + 1  # 1-based line of the directive's end
                index = end + 1
            else:
                index += 1
        self._last_directive_line = last_directive
        self._splice_disabled = any(
            macro.function_like for macro in self._splice_pp.macros.values()
        ) or any(
            line.rstrip().endswith("\\")
            for line in self._baseline_lines[last_directive:]
        )

    def _variant_tokens(
        self, text: str
    ) -> tuple[list[CToken], int | None, int | None]:
        """Variant token stream plus its changed span in baseline indices.

        ``(tokens, None, None)`` means the span is unknown (full
        preprocess ran) and the caller must diff; otherwise the tokens
        outside ``[changed_start, changed_end)`` (baseline indices) are
        the baseline's own token objects.
        """
        spliced = self._line_spliced_tokens(text)
        if spliced is not None:
            return spliced
        return self._preprocess(text), None, None

    def _line_spliced_tokens(self, text):
        if self._splice_disabled:
            return None
        base_lines = self._baseline_lines
        lines = text.split("\n")
        if len(lines) != len(base_lines):
            return None
        changed = -1
        for index, (old, new) in enumerate(zip(base_lines, lines)):
            if old != new:
                if changed >= 0:
                    return None  # multi-line edit
                changed = index
        if changed < 0:
            return None  # identical text: the caller's fast path covers it
        line_number = changed + 1
        if line_number <= self._last_directive_line:
            return None
        old, new = base_lines[changed], lines[changed]
        if old.lstrip().startswith("#") or new.lstrip().startswith("#"):
            return None  # defensive: directives never take this path
        if self._STRIP_SENSITIVE.intersection(old) or (
            self._STRIP_SENSITIVE.intersection(new)
        ):
            return None
        if self._stripped_lines[changed] != old:
            return None  # the line sits inside a comment
        span = self._line_spans.get(line_number)
        if span is None:
            return None
        start, end = span
        lexed = self._splice_pp._lex_line(
            new, line_number, self.driver_filename
        )
        expanded = self._splice_pp._expand(list(lexed), frozenset())
        tokens = list(self._baseline_tokens)
        tokens[start:end] = expanded
        return tokens, start, end

    def _parse_groups(
        self, tokens: list[CToken]
    ) -> tuple[list[_DeclGroup], dict, dict]:
        stream = list(tokens)
        last_file = self.driver_filename
        last_line = stream[-1].line if stream else 1
        stream.append(CToken(CTokenKind.EOF, "", last_line, 1, last_file))
        parser = Parser(stream)
        groups: list[_DeclGroup] = []
        while parser.current.kind is not CTokenKind.EOF:
            typedef_count = len(parser.typedefs)
            struct_count = len(parser.structs)
            defined_before = {
                name
                for name, struct in parser.structs.items()
                if struct.defined
            }
            start = parser.index
            decls = parser._parse_top_decl()
            defined_after = {
                name
                for name, struct in parser.structs.items()
                if struct.defined
            }
            groups.append(
                _DeclGroup(
                    decls=list(decls),
                    start=start,
                    end=parser.index,
                    typedef_count=typedef_count,
                    struct_count=struct_count,
                    mutates_type_state=(
                        len(parser.typedefs) != typedef_count
                        or len(parser.structs) != struct_count
                        or defined_after != defined_before
                    ),
                )
            )
        return groups, dict(parser.typedefs), dict(parser.structs)

    # -- variant compilation -----------------------------------------------

    def compile_variant(self, text: str) -> CompiledProgram:
        """Compile a variant of the baseline driver text.

        Raises ``CompileError`` exactly as ``compile_program`` would.
        """
        if text == self.baseline_text:
            self.stats["identical"] += 1
            self._ensure_baseline_annotations()
            return self.baseline_program

        tokens, changed_start, changed_end = self._variant_tokens(text)
        span = self._changed_span(tokens, changed_start, changed_end)
        if span is None:
            # The edit vanished in preprocessing (e.g. an unused macro
            # body): the program is the baseline program.
            self.stats["identical"] += 1
            self._ensure_baseline_annotations()
            return self.baseline_program

        located = self._incremental_slice(tokens, *span)
        if located is None:
            # Change outside the safely re-parsable declaration spans —
            # take the safe path.
            self.stats["full"] += 1
            return self._full_compile(text)
        first, last, slice_start, slice_end = located

        new_decls = self._parse_slice(
            tokens[slice_start:slice_end], self._groups[first]
        )
        decls: list[ast.TopDecl] = []
        for group in self._groups[:first]:
            decls.extend(group.decls)
        decls.extend(new_decls)
        for group in self._groups[last + 1 :]:
            decls.extend(group.decls)
        unit = ast.TranslationUnit(
            decls=decls, location=self.baseline_program.unit.location
        )
        self.stats["incremental"] += 1
        return self._variant_sema(unit, {id(decl) for decl in new_decls})

    def _changed_span(
        self, tokens: list[CToken], changed_start, changed_end
    ) -> tuple[int, int] | None:
        """Changed token span in baseline indices; None when unchanged.

        ``changed_start``/``changed_end`` come from ``_variant_tokens``
        (known exactly on the line-splice path, ``None`` after a full
        preprocess, where the span is recovered by a prefix/suffix diff).
        """
        base = self._baseline_tokens
        if changed_start is None:
            if tokens == base:
                return None
            prefix = _common_prefix(base, tokens)
            suffix = _common_suffix(base, tokens, prefix)
            return prefix, len(base) - suffix  # end exclusive
        new_end = changed_end + len(tokens) - len(base)
        if tokens[changed_start:new_end] == base[changed_start:changed_end]:
            return None
        return changed_start, changed_end

    def _incremental_slice(
        self, tokens: list[CToken], changed_start: int, changed_end: int
    ) -> tuple[int, int, int, int] | None:
        """Locate the declarations covering a changed token span.

        Returns ``(first_group, last_group, slice_start, slice_end)``
        with the slice bounds in variant-token indices, or ``None``
        whenever re-parsing just those declarations is not provably
        equivalent to a from-scratch parse (change outside every
        recorded span, type-state-mutating declarations affected, or
        inconsistent slice bounds).
        """
        base = self._baseline_tokens
        first = last = None
        for index, group in enumerate(self._groups):
            if group.end > changed_start and group.start < changed_end:
                if first is None:
                    first = index
                last = index
        if first is None or last is None:
            return None
        affected = self._groups[first : last + 1]
        if not all(group.reparse_safe() for group in affected):
            return None
        slice_start = affected[0].start
        slice_end = len(tokens) - (len(base) - affected[-1].end)
        if slice_start > changed_start or slice_end < 0 or slice_start > slice_end:
            return None
        return first, last, slice_start, slice_end

    def variant_parses(self, text: str) -> bool:
        """Whether ``text`` preprocesses and parses — no semantic pass.

        The mutant generator's syntactic gate: behaves exactly like
        preprocessing and parsing the variant from scratch (operator
        mutants that break the grammar are rejected identically), but
        re-parses only the declarations covering the edit, sharing the
        campaign's lex/include caches.
        """
        if text == self.baseline_text:
            return True
        try:
            tokens, changed_start, changed_end = self._variant_tokens(text)
        except CompileError:
            return False
        span = self._changed_span(tokens, changed_start, changed_end)
        if span is None:
            return True
        try:
            located = self._incremental_slice(tokens, *span)
            if located is None:
                return self._full_parses(tokens)
            first, _, slice_start, slice_end = located
            self._parse_slice(
                tokens[slice_start:slice_end], self._groups[first]
            )
        except CompileError:
            return False
        return True

    def _full_parses(self, tokens: list[CToken]) -> bool:
        stream = list(tokens)
        last_line = stream[-1].line if stream else 1
        stream.append(
            CToken(CTokenKind.EOF, "", last_line, 1, self.driver_filename)
        )
        Parser(stream).parse_translation_unit()
        return True

    def _parse_slice(
        self, tokens: list[CToken], first_group: _DeclGroup
    ) -> list[ast.TopDecl]:
        stream = list(tokens)
        last_line = stream[-1].line if stream else 1
        stream.append(
            CToken(CTokenKind.EOF, "", last_line, 1, self.driver_filename)
        )
        parser = Parser(stream)
        # Rewind the shared type environment to its state just before the
        # first re-parsed declaration (both tables only ever grow).
        parser.typedefs = dict(
            islice(self._typedefs.items(), first_group.typedef_count)
        )
        parser.structs = dict(
            islice(self._structs.items(), first_group.struct_count)
        )
        decls: list[ast.TopDecl] = []
        while parser.current.kind is not CTokenKind.EOF:
            decls.extend(parser._parse_top_decl())
        return decls

    def _full_compile(self, text: str) -> CompiledProgram:
        return compile_program(
            [SourceFile(self.driver_filename, text)], self.include_registry
        )

    # -- incremental semantic analysis ------------------------------------

    def _sema_baseline(self, unit: ast.TranslationUnit) -> CompiledProgram:
        """Full baseline sema, caching per-declaration diagnostics."""
        sink = DiagnosticSink()
        sema = Sema(unit, sink)
        sema.declare_all()
        for decl in unit.decls:
            decl_sink = DiagnosticSink()
            sema.sink = decl_sink
            sema.check_decl(decl)
            diagnostics = list(decl_sink)
            self._decl_diags[id(decl)] = tuple(diagnostics)
            sink.extend(diagnostics)
        sema.sink = sink
        sink.raise_if_errors()
        self._sema_env = sema.environment_summary()
        return CompiledProgram(
            unit=unit,
            warnings=[d for d in sink.diagnostics if not d.is_error],
        )

    def _variant_sema(
        self, unit: ast.TranslationUnit, fresh_ids: set[int]
    ) -> CompiledProgram:
        """Semantic pass re-checking only the re-parsed declarations.

        Sound because sema annotations and diagnostics of a declaration
        are a function of (its AST, the post-declare global environment):
        the declare pass runs for real on the variant unit, and when its
        environment equals the baseline's, untouched declarations keep
        their baseline annotations and replay their cached diagnostics.
        An environment change (e.g. a mutated signature) re-checks every
        declaration, exactly like ``compile_program``.  Diagnostics are
        location-sorted by the sink, so replay order cannot reorder them.
        """
        sink = DiagnosticSink()
        sema = Sema(unit, sink)
        sema.declare_all()
        if sema.environment_summary() != self._sema_env:
            self.stats["sema_full"] += 1
            for decl in unit.decls:
                sema.check_decl(decl)
            # Shared declarations now carry this variant's annotations.
            self._annotations_dirty = True
        else:
            self.stats["sema_reused"] += 1
            # Reusing baseline annotations requires them to actually be
            # the baseline's (an environment-changing variant may have
            # overwritten them since).
            self._ensure_baseline_annotations()
            for decl in unit.decls:
                cached = (
                    None
                    if id(decl) in fresh_ids
                    else self._decl_diags.get(id(decl))
                )
                if cached is None:
                    sema.check_decl(decl)
                else:
                    sink.extend(list(cached))
        sink.raise_if_errors()
        return CompiledProgram(
            unit=unit,
            warnings=[d for d in sink.diagnostics if not d.is_error],
        )

    def _ensure_baseline_annotations(self) -> None:
        """Re-anchor shared declarations after an environment-changing variant.

        This also closes a latent reuse hazard predating the incremental
        sema: returning ``baseline_program`` for a byte-identical variant
        right after a variant whose environment differed would have
        served baseline declarations carrying the other variant's
        annotations.
        """
        if self._annotations_dirty:
            _run_sema(self.baseline_program.unit)
            self._annotations_dirty = False


def _run_sema(unit: ast.TranslationUnit) -> CompiledProgram:
    sink = DiagnosticSink()
    Sema(unit, sink).run()
    sink.raise_if_errors()
    return CompiledProgram(
        unit=unit,
        warnings=[d for d in sink.diagnostics if not d.is_error],
    )


def _common_prefix(left: list[CToken], right: list[CToken]) -> int:
    limit = min(len(left), len(right))
    index = 0
    while index < limit and left[index] == right[index]:
        index += 1
    return index


def _common_suffix(left: list[CToken], right: list[CToken], prefix: int) -> int:
    limit = min(len(left), len(right)) - prefix
    count = 0
    while count < limit and left[len(left) - 1 - count] == right[len(right) - 1 - count]:
        count += 1
    return count
