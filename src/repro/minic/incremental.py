"""Incremental compilation for mutation campaigns.

``run_driver_campaign`` compiles thousands of *variants* of one driver
file, each differing from the baseline by a single token-sized edit.  The
stock pipeline re-preprocesses, re-parses and re-checks everything per
variant; this module exploits what campaigns share:

* **line-lex memo** — every physical line except the mutated one lexes to
  the same tokens, so logical lines are memoised by text across variants;
* **include memo** — the include registry (e.g. the generated Devil stub
  header) is identical for every variant, so its whole preprocessed token
  expansion (plus the macro definitions it contributes) is cached keyed
  by the macro-table fingerprint at the point of inclusion;
* **declaration splicing** — the variant's token stream is diffed against
  the baseline's; only the top-level declarations covering the changed
  token range are re-parsed, and the untouched declarations' ASTs are
  reused (their token spans, locations and therefore coverage origins are
  unchanged — single-token replacements never move line numbers).

Semantic analysis still runs over the full spliced unit (it is cheap and
its diagnostics order must match a from-scratch compile).  Correctness
falls back to a full compile whenever splicing cannot be proven safe:
multi-file programs, re-parsed ranges containing ``typedef``/``struct``
declarations (their parse mutates shared registries), or a diff that
reaches outside the recorded declaration spans.

The cache-correctness tests assert byte-identical results (diagnostics,
AST-derived outcomes, steps and coverage) between this path and
``compile_program`` over campaign samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

from repro.diagnostics import DiagnosticSink
from repro.minic import ast
from repro.minic.lexer import strip_comments
from repro.minic.parser import Parser
from repro.minic.preprocessor import MacroDef, Preprocessor
from repro.minic.program import CompiledProgram, SourceFile, compile_program
from repro.minic.sema import Sema
from repro.minic.tokens import CToken, CTokenKind


class _CampaignPreprocessor(Preprocessor):
    """Preprocessor sharing lex/include caches across campaign variants."""

    def __init__(
        self,
        include_registry: dict[str, str] | None,
        line_cache: dict[tuple[str, int, str], list[CToken]],
        include_memo: dict,
        pre_stripped: tuple[str, str] | None = None,
    ):
        super().__init__(include_registry)
        self._line_cache = line_cache
        self._include_memo = include_memo
        #: (raw text, its comment-stripped form) for the top-level file.
        self._pre_stripped = pre_stripped

    def _strip(self, text: str) -> str:
        if self._pre_stripped is not None and text == self._pre_stripped[0]:
            return self._pre_stripped[1]
        return super()._strip(text)

    def _lex_line(self, line: str, line_number: int, filename: str) -> list[CToken]:
        key = (line, line_number, filename)
        cached = self._line_cache.get(key)
        if cached is None:
            cached = super()._lex_line(line, line_number, filename)
            self._line_cache[key] = cached
        return cached

    def _include(self, target: str, output: list[CToken]) -> None:
        fingerprint = (target, _macro_fingerprint(self.macros))
        cached = self._include_memo.get(fingerprint)
        if cached is None:
            expansion: list[CToken] = []
            super()._include(target, expansion)
            cached = (tuple(expansion), dict(self.macros))
            self._include_memo[fingerprint] = cached
        else:
            self.macros = dict(cached[1])
        output.extend(cached[0])


def _macro_fingerprint(macros: dict[str, MacroDef]) -> tuple:
    """Hashable identity of a macro table (names, params and bodies)."""
    return tuple(
        (name, macro.params, macro.body) for name, macro in sorted(macros.items())
    )


@dataclass
class _DeclGroup:
    """Top-level declarations parsed from one contiguous token span."""

    decls: list[ast.TopDecl]
    start: int  # token index of the first token of the group
    end: int  # token index one past the group's last token
    typedef_count: int  # typedef-table size *before* this group
    struct_count: int  # struct-registry size *before* this group
    #: True when parsing the group changed shared parser state (typedef
    #: table or struct registry — including struct bodies defined inline
    #: in a combined declaration like ``struct X { ... } var;``, which
    #: leave no StructDef in ``decls``).
    mutates_type_state: bool = False

    def reparse_safe(self) -> bool:
        """Whether re-parsing this group cannot disturb shared state."""
        if self.mutates_type_state:
            return False
        return not any(
            isinstance(decl, (ast.TypedefDecl, ast.StructDef))
            for decl in self.decls
        )


class CampaignCompiler:
    """Compile many single-edit variants of one driver file, fast.

    The baseline source is compiled once with full bookkeeping; each call
    to :meth:`compile_variant` then pays only for the mutated line's lex,
    the token diff, the re-parse of the touched declaration(s) and a full
    (cheap) semantic pass.  Results — including raised ``CompileError``
    diagnostics — are identical to ``compile_program([SourceFile(name,
    text)], registry)``.
    """

    def __init__(
        self,
        driver_filename: str,
        baseline_text: str,
        include_registry: dict[str, str] | None = None,
    ):
        self.driver_filename = driver_filename
        self.include_registry = dict(include_registry or {})
        self._line_cache: dict[tuple[str, int, str], list[CToken]] = {}
        self._include_memo: dict = {}
        self._stripped_baseline = None

        self._baseline_tokens = self._preprocess(baseline_text)
        self._groups, self._typedefs, self._structs = self._parse_groups(
            self._baseline_tokens
        )
        unit = ast.TranslationUnit(
            decls=[decl for group in self._groups for decl in group.decls]
        )
        if self._baseline_tokens:
            unit.location = self._baseline_tokens[0].location
        self.baseline_program = _run_sema(unit)
        self.baseline_text = baseline_text
        self._stripped_baseline = strip_comments(baseline_text)
        #: Cache-effectiveness counters (for benchmarks and tests).
        self.stats = {"incremental": 0, "full": 0, "identical": 0}

    # -- pipeline pieces ---------------------------------------------------

    #: Characters that may open/close a comment or string, or continue a
    #: line; an edit containing (or replacing) none of these cannot change
    #: the comment structure around it, so the baseline's comment-stripped
    #: text can be spliced instead of re-stripped.
    _STRIP_SENSITIVE = frozenset("/*\"'\\")

    def _preprocess(self, text: str) -> list[CToken]:
        preprocessor = _CampaignPreprocessor(
            self.include_registry,
            self._line_cache,
            self._include_memo,
            pre_stripped=self._spliced_strip(text),
        )
        return preprocessor.process(text, self.driver_filename)

    def _spliced_strip(self, text: str) -> tuple[str, str] | None:
        """(text, stripped) via splicing the baseline's stripped form."""
        stripped = self._stripped_baseline
        if stripped is None:
            return None
        base = self.baseline_text
        limit = min(len(base), len(text))
        prefix = 0
        chunk = 4096
        while chunk:
            while prefix + chunk <= limit and base[
                prefix : prefix + chunk
            ] == text[prefix : prefix + chunk]:
                prefix += chunk
            chunk //= 2
        suffix = 0
        limit -= prefix
        chunk = 4096
        while chunk:
            while (
                suffix + chunk <= limit
                and base[len(base) - suffix - chunk : len(base) - suffix]
                == text[len(text) - suffix - chunk : len(text) - suffix]
            ):
                suffix += chunk
            chunk //= 2
        new_segment = text[prefix : len(text) - suffix]
        old_segment = base[prefix : len(base) - suffix]
        if self._STRIP_SENSITIVE.intersection(new_segment) or (
            self._STRIP_SENSITIVE.intersection(old_segment)
        ):
            return None
        if stripped[prefix : len(base) - suffix] != old_segment:
            # The edited span is not plain code in the baseline (it sits
            # inside a comment): strip from scratch.
            return None
        return (
            text,
            stripped[:prefix] + new_segment + stripped[len(base) - suffix :],
        )

    def _parse_groups(
        self, tokens: list[CToken]
    ) -> tuple[list[_DeclGroup], dict, dict]:
        stream = list(tokens)
        last_file = self.driver_filename
        last_line = stream[-1].line if stream else 1
        stream.append(CToken(CTokenKind.EOF, "", last_line, 1, last_file))
        parser = Parser(stream)
        groups: list[_DeclGroup] = []
        while parser.current.kind is not CTokenKind.EOF:
            typedef_count = len(parser.typedefs)
            struct_count = len(parser.structs)
            defined_before = {
                name
                for name, struct in parser.structs.items()
                if struct.defined
            }
            start = parser.index
            decls = parser._parse_top_decl()
            defined_after = {
                name
                for name, struct in parser.structs.items()
                if struct.defined
            }
            groups.append(
                _DeclGroup(
                    decls=list(decls),
                    start=start,
                    end=parser.index,
                    typedef_count=typedef_count,
                    struct_count=struct_count,
                    mutates_type_state=(
                        len(parser.typedefs) != typedef_count
                        or len(parser.structs) != struct_count
                        or defined_after != defined_before
                    ),
                )
            )
        return groups, dict(parser.typedefs), dict(parser.structs)

    # -- variant compilation -----------------------------------------------

    def compile_variant(self, text: str) -> CompiledProgram:
        """Compile a variant of the baseline driver text.

        Raises ``CompileError`` exactly as ``compile_program`` would.
        """
        if text == self.baseline_text:
            self.stats["identical"] += 1
            return self.baseline_program

        tokens = self._preprocess(text)
        base = self._baseline_tokens

        if tokens == base:
            # The edit vanished in preprocessing (e.g. an unused macro
            # body): the program is the baseline program.
            self.stats["identical"] += 1
            return self.baseline_program

        prefix = _common_prefix(base, tokens)
        suffix = _common_suffix(base, tokens, prefix)
        changed_start = prefix
        changed_end = len(base) - suffix  # exclusive, in baseline indices

        first = last = None
        for index, group in enumerate(self._groups):
            if group.end > changed_start and group.start < changed_end:
                if first is None:
                    first = index
                last = index

        if first is None or last is None:
            # Change outside every recorded declaration span (e.g. at the
            # very edge of the stream) — take the safe path.
            self.stats["full"] += 1
            return self._full_compile(text)

        affected = self._groups[first : last + 1]
        if not all(group.reparse_safe() for group in affected):
            self.stats["full"] += 1
            return self._full_compile(text)

        slice_start = affected[0].start
        slice_end = len(tokens) - (len(base) - affected[-1].end)
        if slice_start > prefix or slice_end < 0 or slice_start > slice_end:
            self.stats["full"] += 1
            return self._full_compile(text)

        new_decls = self._parse_slice(
            tokens[slice_start:slice_end], affected[0]
        )
        decls: list[ast.TopDecl] = []
        for group in self._groups[:first]:
            decls.extend(group.decls)
        decls.extend(new_decls)
        for group in self._groups[last + 1 :]:
            decls.extend(group.decls)
        unit = ast.TranslationUnit(
            decls=decls, location=self.baseline_program.unit.location
        )
        self.stats["incremental"] += 1
        return _run_sema(unit)

    def _parse_slice(
        self, tokens: list[CToken], first_group: _DeclGroup
    ) -> list[ast.TopDecl]:
        stream = list(tokens)
        last_line = stream[-1].line if stream else 1
        stream.append(
            CToken(CTokenKind.EOF, "", last_line, 1, self.driver_filename)
        )
        parser = Parser(stream)
        # Rewind the shared type environment to its state just before the
        # first re-parsed declaration (both tables only ever grow).
        parser.typedefs = dict(
            islice(self._typedefs.items(), first_group.typedef_count)
        )
        parser.structs = dict(
            islice(self._structs.items(), first_group.struct_count)
        )
        decls: list[ast.TopDecl] = []
        while parser.current.kind is not CTokenKind.EOF:
            decls.extend(parser._parse_top_decl())
        return decls

    def _full_compile(self, text: str) -> CompiledProgram:
        return compile_program(
            [SourceFile(self.driver_filename, text)], self.include_registry
        )


def _run_sema(unit: ast.TranslationUnit) -> CompiledProgram:
    sink = DiagnosticSink()
    Sema(unit, sink).run()
    sink.raise_if_errors()
    return CompiledProgram(
        unit=unit,
        warnings=[d for d in sink.diagnostics if not d.is_error],
    )


def _common_prefix(left: list[CToken], right: list[CToken]) -> int:
    limit = min(len(left), len(right))
    index = 0
    while index < limit and left[index] == right[index]:
        index += 1
    return index


def _common_suffix(left: list[CToken], right: list[CToken], prefix: int) -> int:
    limit = min(len(left), len(right)) - prefix
    count = 0
    while count < limit and left[len(left) - 1 - count] == right[len(right) - 1 - count]:
        count += 1
    return count
