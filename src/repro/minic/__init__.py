"""mini-C: the C substrate of the reproduction.

The paper compiles driver mutants with gcc and boots them inside Linux;
this package is the equivalent gate in pure Python:

* a line-based preprocessor (`preprocessor`) with object- and function-like
  macros, ``#include`` from a virtual file registry, ``__FILE__`` and
  ``__LINE__``;
* a lexer and recursive-descent parser (`lexer`, `parser`) for the C subset
  used by Linux-style hardware operating code *and* by the stubs the Devil
  compiler generates (structs, typedefs, ternary and comma operators,
  ``switch``, arrays, ``static inline`` functions);
* a semantic analyser (`sema`) implementing the C type rules that produce
  the paper's "Compile-time check" row: struct type mismatches, lvalue
  violations, arity/argument errors, const violations, int/pointer
  confusion;
* a tree-walking interpreter (`interp`) with C integer semantics, a step
  budget (the "Infinite loop" watchdog), statement coverage (the "Dead
  code" classifier) and port-I/O builtins wired to simulated hardware.
"""

from repro.minic.program import CompiledProgram, SourceFile, compile_program
from repro.minic.errors import (
    DevilAssertion,
    KernelPanic,
    MachineFault,
    StepBudgetExceeded,
)
from repro.minic.interp import Interpreter

__all__ = [
    "CompiledProgram",
    "DevilAssertion",
    "Interpreter",
    "KernelPanic",
    "MachineFault",
    "SourceFile",
    "StepBudgetExceeded",
    "compile_program",
]
