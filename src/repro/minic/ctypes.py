"""The mini-C type model.

Nominal struct typing is the load-bearing part: the Devil debug stubs
represent each enum type as a distinct ``struct`` precisely because the C
compiler only raises type errors for incorrectly-used structures
(paper §2.3).  ``repro.minic.sema`` enforces the same rule here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CType:
    """Base class for mini-C types."""

    def describe(self) -> str:
        raise NotImplementedError

    def __deepcopy__(self, memo) -> "CType":
        # Types are immutable interning-style objects: runtime values
        # (e.g. ``CArray.element``) reference them, and deep-copying a
        # value graph — as interpreter snapshot/restore does — must keep
        # pointing at the same type objects.
        return self

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntCType, PointerType))

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class IntCType(CType):
    name: str
    width: int
    signed: bool

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce a Python int to this type's value range (C wraparound)."""
        value &= (1 << self.width) - 1
        if self.signed and value >= (1 << (self.width - 1)):
            value -= 1 << self.width
        return value

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class VoidType(CType):
    def describe(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType
    const_pointee: bool = False

    def describe(self) -> str:
        const = "const " if self.const_pointee else ""
        return f"{const}{self.pointee.describe()} *"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int | None = None

    def describe(self) -> str:
        size = "" if self.length is None else str(self.length)
        return f"{self.element.describe()}[{size}]"


@dataclass(frozen=True)
class StructField:
    name: str
    ctype: CType


@dataclass
class StructType(CType):
    """Nominal struct type; fields may be filled in after first reference."""

    name: str
    fields: list[StructField] = field(default_factory=list)
    defined: bool = False

    def field_named(self, name: str) -> StructField | None:
        for entry in self.fields:
            if entry.name == name:
                return entry
        return None

    def describe(self) -> str:
        return f"struct {self.name}"

    def __eq__(self, other: object) -> bool:  # nominal identity
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType
    params: tuple[CType, ...]
    variadic: bool = False

    def describe(self) -> str:
        params = ", ".join(p.describe() for p in self.params)
        if self.variadic:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type.describe()} (*)({params})"


# -- canonical instances -------------------------------------------------------

VOID = VoidType()
CHAR = IntCType("char", 8, signed=True)
S8 = IntCType("s8", 8, signed=True)
U8 = IntCType("u8", 8, signed=False)
S16 = IntCType("s16", 16, signed=True)
U16 = IntCType("u16", 16, signed=False)
S32 = IntCType("int", 32, signed=True)
U32 = IntCType("u32", 32, signed=False)

#: Typedefs every program starts with (the kernel environment's integer
#: vocabulary — in real Linux these come from <linux/types.h>).
BUILTIN_TYPEDEFS: dict[str, CType] = {
    "u8": U8,
    "u16": U16,
    "u32": U32,
    "s8": S8,
    "s16": S16,
    "s32": IntCType("s32", 32, signed=True),
    "size_t": U32,
}

CONST_CHAR_PTR = PointerType(CHAR, const_pointee=True)


def promote(ctype: IntCType) -> IntCType:
    """C integer promotion: anything narrower than int becomes int."""
    if ctype.width < 32:
        return S32
    return ctype


def usual_arithmetic(left: IntCType, right: IntCType) -> IntCType:
    """Usual arithmetic conversions for 32-bit-int mini-C."""
    left_p, right_p = promote(left), promote(right)
    if not left_p.signed or not right_p.signed:
        return U32
    return S32


def is_integer(ctype: CType) -> bool:
    return isinstance(ctype, IntCType)


def is_pointerish(ctype: CType) -> bool:
    return isinstance(ctype, (PointerType, ArrayType))


def decay(ctype: CType) -> CType:
    """Array-to-pointer decay in value contexts."""
    if isinstance(ctype, ArrayType):
        return PointerType(ctype.element)
    return ctype
