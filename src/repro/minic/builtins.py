"""Kernel-environment builtins of the mini-C machine.

These are the primitives a Linux driver of the paper's era leans on:
port I/O (``inb``/``outb`` families, including the 16-bit string forms the
IDE driver uses for sector transfers), ``panic``/``printk``, ``strcmp``,
delays — plus ``dil_panic``, the distinguished assertion sink the Devil
debug stubs call so the harness can tell a "Run-time check" (Devil
assertion) from a "Halt" (ordinary kernel panic).

Argument order matches Linux: ``outb(value, port)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.minic.errors import DevilAssertion, KernelPanic, MachineFault
from repro.minic.values import CPointer

if TYPE_CHECKING:  # pragma: no cover
    from repro.minic.interp import Interpreter


def c_format(fmt: str, args: list) -> str:
    """Minimal printk-style formatting: %s %d %u %x %c %%."""
    result: list[str] = []
    arg_index = 0
    index = 0
    while index < len(fmt):
        char = fmt[index]
        if char != "%" or index + 1 >= len(fmt):
            result.append(char)
            index += 1
            continue
        spec = fmt[index + 1]
        index += 2
        if spec == "%":
            result.append("%")
            continue
        if arg_index >= len(args):
            result.append(f"%{spec}")
            continue
        value = args[arg_index]
        arg_index += 1
        if spec == "s":
            result.append(str(value) if value is not None else "(null)")
        elif spec in ("d", "u"):
            result.append(str(_formattable_int(value)))
        elif spec == "x":
            result.append(f"{_formattable_int(value) & 0xFFFFFFFF:x}")
        elif spec == "c":
            result.append(chr(_formattable_int(value) & 0xFF))
        else:
            result.append(f"%{spec}")
    return "".join(result)


def _formattable_int(value) -> int:
    """Garbage in, garbage out — like printk with a mismatched format."""
    if isinstance(value, int):
        return value
    return 0xDEADBEEF


def _as_pointer(value, name: str) -> CPointer:
    if isinstance(value, CPointer):
        return value
    raise MachineFault(f"{name}: bad buffer argument")


def builtin_inb(interp: "Interpreter", args: list) -> int:
    return interp.bus_read(int(args[0]), 8)


def builtin_inw(interp: "Interpreter", args: list) -> int:
    return interp.bus_read(int(args[0]), 16)


def builtin_inl(interp: "Interpreter", args: list) -> int:
    return interp.bus_read(int(args[0]), 32)


def builtin_outb(interp: "Interpreter", args: list) -> None:
    interp.bus_write(int(args[1]), int(args[0]) & 0xFF, 8)


def builtin_outw(interp: "Interpreter", args: list) -> None:
    interp.bus_write(int(args[1]), int(args[0]) & 0xFFFF, 16)


def builtin_outl(interp: "Interpreter", args: list) -> None:
    interp.bus_write(int(args[1]), int(args[0]) & 0xFFFFFFFF, 32)


def _string_in(interp: "Interpreter", args: list, name: str, size: int) -> None:
    """Shared fast path of ``insw``/``insl``.

    Loop bodies mirror ``interp.bus_read`` + ``CPointer.store`` +
    ``consume_steps`` exactly (same step positions relative to each bus
    access, same fault messages) with the per-word attribute traffic
    hoisted out of the loop — these transfers move every disk sector of
    a boot, so they are among the hottest lines of a campaign.

    When the whole transfer provably behaves like the loop — every index
    in bounds (no fault), enough budget for all ``2 * count`` steps (no
    mid-transfer watchdog), and the bus offering a bulk read with
    identical device side effects — one bulk call replaces the loop.
    """
    port, buffer, count = int(args[0]), _as_pointer(args[1], name), int(args[2])
    values = buffer.array.values
    length = len(values)
    base = buffer.offset
    if (
        count > 0
        and 0 <= base
        and base + count <= length
        and interp.steps + 2 * count <= interp.step_budget
    ):
        bulk = getattr(interp.bus, "bulk_read_port", None)
        if bulk is not None:
            data = bulk(port, size, count)
            if data is not None:
                values[base : base + count] = data
                interp.steps += 2 * count
                return
    consume = interp.consume_steps
    read = interp.bus.read_port
    for index in range(base, base + count):
        consume(1)
        value = read(port, size)
        if not 0 <= index < length:
            raise MachineFault(
                f"array index {index} out of bounds (size {length})"
            )
        values[index] = value
        consume(1)


def _string_out(interp: "Interpreter", args: list, name: str, size: int) -> None:
    """Shared fast path of ``outsw``/``outsl`` (see ``_string_in``)."""
    port, buffer, count = int(args[0]), _as_pointer(args[1], name), int(args[2])
    mask = (1 << size) - 1
    values = buffer.array.values
    length = len(values)
    base = buffer.offset
    if (
        count > 0
        and 0 <= base
        and base + count <= length
        and interp.steps + 2 * count <= interp.step_budget
    ):
        bulk = getattr(interp.bus, "bulk_write_port", None)
        # The bus masks each value (raising on non-ints exactly as the
        # loop's int() would), so a plain slice suffices — and is all
        # that is wasted when the bus declines.
        if bulk is not None and bulk(port, values[base : base + count], size):
            interp.steps += 2 * count
            return
    consume = interp.consume_steps
    write = interp.bus.write_port
    for index in range(base, base + count):
        if not 0 <= index < length:
            raise MachineFault(
                f"array index {index} out of bounds (size {length})"
            )
        value = int(values[index]) & mask
        consume(1)
        write(port, value, size)
        consume(1)


def builtin_insw(interp: "Interpreter", args: list) -> None:
    _string_in(interp, args, "insw", 16)


def builtin_outsw(interp: "Interpreter", args: list) -> None:
    _string_out(interp, args, "outsw", 16)


def builtin_insl(interp: "Interpreter", args: list) -> None:
    _string_in(interp, args, "insl", 32)


def builtin_outsl(interp: "Interpreter", args: list) -> None:
    _string_out(interp, args, "outsl", 32)


def builtin_panic(interp: "Interpreter", args: list) -> int:
    message = c_format(str(args[0]), args[1:])
    raise KernelPanic(message)


def builtin_dil_panic(interp: "Interpreter", args: list) -> int:
    message = c_format(str(args[0]), args[1:])
    raise DevilAssertion(message)


def builtin_printk(interp: "Interpreter", args: list) -> int:
    message = c_format(str(args[0]), args[1:])
    interp.log.append(message)
    return len(message)


def builtin_strcmp(interp: "Interpreter", args: list) -> int:
    left, right = args[0], args[1]
    if not isinstance(left, str) or not isinstance(right, str):
        raise MachineFault("strcmp: wild or null pointer")
    left_s, right_s = str(left), str(right)
    if left_s == right_s:
        return 0
    return -1 if left_s < right_s else 1


def builtin_udelay(interp: "Interpreter", args: list) -> None:
    interp.time_us += int(args[0])
    interp.consume_steps(2)


def builtin_mdelay(interp: "Interpreter", args: list) -> None:
    interp.time_us += int(args[0]) * 1000
    interp.consume_steps(2)


BUILTIN_IMPLS = {
    "inb": builtin_inb,
    "inw": builtin_inw,
    "inl": builtin_inl,
    "outb": builtin_outb,
    "outw": builtin_outw,
    "outl": builtin_outl,
    "insw": builtin_insw,
    "outsw": builtin_outsw,
    "insl": builtin_insl,
    "outsl": builtin_outsl,
    "panic": builtin_panic,
    "dil_panic": builtin_dil_panic,
    "printk": builtin_printk,
    "strcmp": builtin_strcmp,
    "udelay": builtin_udelay,
    "mdelay": builtin_mdelay,
}
