"""Semantic analysis for mini-C — the compile-time gate of the evaluation.

The paper's "Compile-time check" rows (26.7 % for the C driver, 58.0 % for
the CDevil driver) are produced by the C type system.  This module
implements the rules a 2001-era kernel build would enforce:

* undeclared / redeclared identifiers;
* **nominal struct typing** — passing or assigning ``struct A`` where
  ``struct B`` (or an integer) is expected is an error: this is the
  mechanism the Devil debug stubs exploit (paper §2.3);
* lvalue discipline — ``(inb(p) = 5)`` and friends, which is how many
  ``&``→``=`` and ``==``→``=`` operator mutants die at compile time;
* const discipline;
* call arity and argument compatibility;
* operand categories (no arithmetic on structs, no struct conditions,
  no struct arguments to variadics);
* int/pointer confusion (an error here, as in kernel builds where these
  warnings are fatal — recorded as a substitution in DESIGN.md).

Pure "no effect" statements (e.g. ``x == y;`` left behind by an ``=``→
``==`` mutant) are *warnings*, as with gcc without ``-Werror`` — such
mutants proceed to the boot stage exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diagnostics import DiagnosticSink, SourceLocation
from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CType,
    CONST_CHAR_PTR,
    FunctionType,
    IntCType,
    PointerType,
    S32,
    StructType,
    U16,
    U32,
    U8,
    VOID,
    decay,
    is_integer,
    usual_arithmetic,
)

#: Builtin functions provided by the kernel environment (see
#: `repro.minic.builtins` for their run-time behaviour).
BUILTIN_SIGNATURES: dict[str, FunctionType] = {
    "inb": FunctionType(U8, (U32,)),
    "inw": FunctionType(U16, (U32,)),
    "inl": FunctionType(U32, (U32,)),
    "outb": FunctionType(VOID, (U8, U32)),
    "outw": FunctionType(VOID, (U16, U32)),
    "outl": FunctionType(VOID, (U32, U32)),
    "insw": FunctionType(VOID, (U32, PointerType(U16), U32)),
    "outsw": FunctionType(VOID, (U32, PointerType(U16), U32)),
    "insl": FunctionType(VOID, (U32, PointerType(U32), U32)),
    "outsl": FunctionType(VOID, (U32, PointerType(U32), U32)),
    "panic": FunctionType(S32, (CONST_CHAR_PTR,), variadic=True),
    "printk": FunctionType(S32, (CONST_CHAR_PTR,), variadic=True),
    "dil_panic": FunctionType(S32, (CONST_CHAR_PTR,), variadic=True),
    "strcmp": FunctionType(S32, (CONST_CHAR_PTR, CONST_CHAR_PTR)),
    "udelay": FunctionType(VOID, (U32,)),
    "mdelay": FunctionType(VOID, (U32,)),
}


@dataclass
class VarSymbol:
    name: str
    ctype: CType
    const: bool = False
    is_global: bool = False


@dataclass
class FuncSymbol:
    name: str
    ftype: FunctionType
    defined: bool = False
    builtin: bool = False
    decl: ast.FuncDecl | None = None


class Sema:
    def __init__(self, unit: ast.TranslationUnit, sink: DiagnosticSink):
        self.unit = unit
        self.sink = sink
        self.globals: dict[str, VarSymbol] = {}
        self.functions: dict[str, FuncSymbol] = {
            name: FuncSymbol(name, ftype, defined=True, builtin=True)
            for name, ftype in BUILTIN_SIGNATURES.items()
        }
        self.scopes: list[dict[str, VarSymbol]] = []
        self.current_return: CType = VOID
        self._loop_depth = 0
        self._switch_depth = 0

    # -- helpers ------------------------------------------------------------

    def _error(self, code: str, message: str, location: SourceLocation) -> None:
        self.sink.error(code, message, location)

    def _warn(self, code: str, message: str, location: SourceLocation) -> None:
        self.sink.warning(code, message, location)

    def _lookup(self, name: str) -> VarSymbol | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.globals.get(name)

    def _declare_local(self, symbol: VarSymbol, location: SourceLocation) -> None:
        scope = self.scopes[-1]
        if symbol.name in scope:
            self._error(
                "c-redefined", f"{symbol.name!r} redeclared in this scope", location
            )
        scope[symbol.name] = symbol

    # -- entry point ----------------------------------------------------------

    def run(self) -> None:
        self.declare_all()
        for decl in self.unit.decls:
            self.check_decl(decl)

    def declare_all(self) -> None:
        """The declaration pass: build the global symbol environment."""
        for decl in self.unit.decls:
            if isinstance(decl, ast.GlobalDecl):
                self._declare_global(decl)
            elif isinstance(decl, ast.FuncDecl):
                self._declare_function(decl)

    def check_decl(self, decl: ast.TopDecl) -> None:
        """The checking pass for one declaration (after ``declare_all``).

        Exposed separately so the campaign compiler can re-check only a
        variant's re-parsed declarations, replaying cached diagnostics
        for the untouched ones.
        """
        if isinstance(decl, ast.GlobalDecl) and decl.init is not None:
            self._check_init(decl.var_type, decl.init, decl.location, global_init=True)
        elif isinstance(decl, ast.FuncDecl) and decl.body is not None:
            self._check_function(decl)

    def environment_summary(self) -> tuple:
        """Comparable snapshot of the post-declare global environment.

        Two units with equal summaries assign identical types to any
        shared declaration's body, so its annotations (and diagnostics)
        carry over verbatim.
        """
        return (
            {
                name: (symbol.ctype, symbol.const)
                for name, symbol in self.globals.items()
            },
            {
                name: (symbol.ftype, symbol.defined, symbol.builtin)
                for name, symbol in self.functions.items()
            },
        )

    # -- declarations ------------------------------------------------------------

    def _declare_global(self, decl: ast.GlobalDecl) -> None:
        assert decl.var_type is not None
        if decl.name in self.functions:
            self._error(
                "c-redefined",
                f"{decl.name!r} already declared as a function",
                decl.location,
            )
            return
        existing = self.globals.get(decl.name)
        if existing is not None:
            same = _compatible(existing.ctype, decl.var_type)
            if not same or (decl.init is not None and not existing.ctype == decl.var_type):
                self._error(
                    "c-redefined", f"global {decl.name!r} redeclared", decl.location
                )
                return
            if decl.init is None:
                return
        if isinstance(decl.var_type, StructType) and not decl.var_type.defined:
            self._error(
                "c-undeclared",
                f"variable {decl.name!r} has incomplete type "
                f"struct {decl.var_type.name}",
                decl.location,
            )
            return
        self.globals[decl.name] = VarSymbol(
            decl.name, decl.var_type, const=decl.const, is_global=True
        )

    def _declare_function(self, decl: ast.FuncDecl) -> None:
        assert decl.return_type is not None
        ftype = FunctionType(
            decl.return_type,
            tuple(p.ctype for p in decl.params if p.ctype is not None),
            decl.variadic,
        )
        existing = self.functions.get(decl.name)
        if existing is not None:
            if existing.builtin:
                # Re-declaring a builtin prototype is fine (the prelude does
                # it); a *body* for a builtin name is not.
                if decl.body is not None:
                    self._error(
                        "c-redefined",
                        f"cannot redefine builtin {decl.name!r}",
                        decl.location,
                    )
                return
            if existing.defined and decl.body is not None:
                self._error(
                    "c-redefined", f"function {decl.name!r} redefined", decl.location
                )
                return
            if not _signatures_match(existing.ftype, ftype):
                self._error(
                    "c-redefined",
                    f"conflicting declarations of {decl.name!r}",
                    decl.location,
                )
                return
            if decl.body is not None:
                existing.defined = True
                existing.decl = decl
            return
        if decl.name in self.globals:
            self._error(
                "c-redefined",
                f"{decl.name!r} already declared as a variable",
                decl.location,
            )
            return
        self.functions[decl.name] = FuncSymbol(
            decl.name, ftype, defined=decl.body is not None, decl=decl
        )

    def _check_function(self, decl: ast.FuncDecl) -> None:
        assert decl.return_type is not None and decl.body is not None
        self.current_return = decl.return_type
        self.scopes.append({})
        for param in decl.params:
            if param.ctype is None:
                continue
            if not param.name:
                self._error(
                    "c-redefined",
                    f"parameter of {decl.name!r} lacks a name",
                    param.location,
                )
                continue
            self._declare_local(VarSymbol(param.name, param.ctype), param.location)
        self._check_block(decl.body, new_scope=False)
        self.scopes.pop()

    # -- statements ---------------------------------------------------------------

    def _check_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for stmt in block.statements:
            self._check_stmt(stmt)
        if new_scope:
            self.scopes.pop()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._check_expr(stmt.expr)
            if not _has_effect(stmt.expr):
                self._warn(
                    "c-noeffect", "statement with no effect", stmt.location
                )
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        elif isinstance(stmt, ast.LocalDecl):
            self._check_local_decl(stmt)
        elif isinstance(stmt, ast.If):
            assert stmt.cond is not None and stmt.then is not None
            self._check_condition(stmt.cond)
            self._check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            assert stmt.cond is not None and stmt.body is not None
            self._check_condition(stmt.cond)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            assert stmt.cond is not None and stmt.body is not None
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._check_condition(stmt.cond)
        elif isinstance(stmt, ast.For):
            self.scopes.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_condition(stmt.cond)
            if stmt.step is not None:
                self._check_expr(stmt.step)
            assert stmt.body is not None
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self.scopes.pop()
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt)
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0 and self._switch_depth == 0:
                self._error("c-operand", "break outside loop or switch", stmt.location)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                self._error("c-operand", "continue outside loop", stmt.location)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        else:
            raise AssertionError(f"unhandled statement {stmt!r}")

    def _check_local_decl(self, stmt: ast.LocalDecl) -> None:
        assert stmt.var_type is not None
        if isinstance(stmt.var_type, StructType) and not stmt.var_type.defined:
            self._error(
                "c-undeclared",
                f"variable {stmt.name!r} has incomplete type "
                f"struct {stmt.var_type.name}",
                stmt.location,
            )
            return
        if stmt.init is not None:
            self._check_init(stmt.var_type, stmt.init, stmt.location)
        self._declare_local(
            VarSymbol(stmt.name, stmt.var_type, const=stmt.const), stmt.location
        )

    def _check_init(
        self,
        target: CType | None,
        init: ast.Expr | ast.InitList,
        location: SourceLocation,
        global_init: bool = False,
    ) -> None:
        assert target is not None
        if isinstance(init, ast.InitList):
            if isinstance(target, StructType):
                if len(init.items) > len(target.fields):
                    self._error(
                        "c-assign-type",
                        f"too many initializers for struct {target.name}",
                        location,
                    )
                for item, field in zip(init.items, target.fields):
                    item_type = self._check_expr(item)
                    self._require_assignable(field.ctype, item_type, item.location)
            elif isinstance(target, ArrayType):
                if target.length is not None and len(init.items) > target.length:
                    self._error(
                        "c-assign-type", "too many array initializers", location
                    )
                for item in init.items:
                    item_type = self._check_expr(item)
                    self._require_assignable(target.element, item_type, item.location)
            else:
                self._error(
                    "c-assign-type",
                    f"brace initializer for scalar {target.describe()}",
                    location,
                )
            return
        value_type = self._check_expr(init)
        self._require_assignable(target, value_type, init.location)

    def _check_switch(self, stmt: ast.Switch) -> None:
        assert stmt.expr is not None
        expr_type = self._check_expr(stmt.expr)
        if not is_integer(decay(expr_type)):
            self._error(
                "c-cond",
                f"switch on non-integer {expr_type.describe()}",
                stmt.location,
            )
        seen: set[int | None] = set()
        for group in stmt.groups:
            for value in group.values:
                if value in seen:
                    label = "default" if value is None else str(value)
                    self._error(
                        "c-case", f"duplicate case label {label}", group.location
                    )
                seen.add(value)
        self._switch_depth += 1
        self.scopes.append({})
        for group in stmt.groups:
            for inner in group.body:
                self._check_stmt(inner)
        self.scopes.pop()
        self._switch_depth -= 1

    def _check_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if not isinstance(self.current_return, type(VOID)):
                self._error(
                    "c-return", "return without a value in non-void function",
                    stmt.location,
                )
            return
        value_type = self._check_expr(stmt.value)
        if isinstance(self.current_return, type(VOID)):
            self._error(
                "c-return", "return with a value in void function", stmt.location
            )
            return
        self._require_assignable(self.current_return, value_type, stmt.location)

    def _check_condition(self, expr: ast.Expr) -> None:
        ctype = decay(self._check_expr(expr))
        if not ctype.is_scalar:
            self._error(
                "c-cond",
                f"condition has non-scalar type {ctype.describe()}",
                expr.location,
            )

    # -- expressions ------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr) -> CType:
        ctype = self._compute_type(expr)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr) -> CType:
        if isinstance(expr, ast.IntLit):
            return U32 if expr.unsigned else S32
        if isinstance(expr, ast.CharLit):
            return S32
        if isinstance(expr, ast.StrLit):
            return CONST_CHAR_PTR
        if isinstance(expr, ast.Ident):
            return self._type_of_ident(expr)
        if isinstance(expr, ast.Call):
            return self._type_of_call(expr)
        if isinstance(expr, ast.Index):
            return self._type_of_index(expr)
        if isinstance(expr, ast.Member):
            return self._type_of_member(expr)
        if isinstance(expr, ast.Unary):
            return self._type_of_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._type_of_incdec(expr.operand, expr.op, expr.location)
        if isinstance(expr, ast.Binary):
            return self._type_of_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._type_of_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._type_of_ternary(expr)
        if isinstance(expr, ast.Cast):
            return self._type_of_cast(expr)
        if isinstance(expr, ast.Comma):
            assert expr.left is not None and expr.right is not None
            self._check_expr(expr.left)
            return self._check_expr(expr.right)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _type_of_ident(self, expr: ast.Ident) -> CType:
        symbol = self._lookup(expr.name)
        if symbol is not None:
            return symbol.ctype
        func = self.functions.get(expr.name)
        if func is not None:
            # Only reached outside call position (calls resolve their
            # callee directly).  A function designator decaying to a
            # pointer that then converts to an integer was a *warning* in
            # 2001 gcc; the mutant proceeds to the boot stage.
            self._warn(
                "c-func-value",
                f"function {expr.name!r} used as a value",
                expr.location,
            )
            return func.ftype
        self._error("c-undeclared", f"{expr.name!r} undeclared", expr.location)
        return S32  # recover

    def _type_of_call(self, expr: ast.Call) -> CType:
        assert expr.callee is not None
        if not isinstance(expr.callee, ast.Ident):
            self._error(
                "c-call", "called object is not a function", expr.location
            )
            for arg in expr.args:
                self._check_expr(arg)
            return S32
        name = expr.callee.name
        func = self.functions.get(name)
        if func is None:
            if self._lookup(name) is not None:
                self._error(
                    "c-call", f"called object {name!r} is not a function", expr.location
                )
            else:
                self._error(
                    "c-undeclared", f"function {name!r} undeclared", expr.location
                )
            for arg in expr.args:
                self._check_expr(arg)
            return S32
        expr.callee.ctype = func.ftype
        ftype = func.ftype
        if len(expr.args) < len(ftype.params) or (
            len(expr.args) > len(ftype.params) and not ftype.variadic
        ):
            self._error(
                "c-arity",
                f"{name!r} expects {len(ftype.params)} argument(s), got "
                f"{len(expr.args)}",
                expr.location,
            )
        for index, arg in enumerate(expr.args):
            arg_type = self._check_expr(arg)
            if index < len(ftype.params):
                self._require_assignable(
                    ftype.params[index], arg_type, arg.location, context="c-arg-type"
                )
            else:  # variadic tail
                if isinstance(decay(arg_type), StructType):
                    # Compiles (and misbehaves) in real C; gcc only warns.
                    self._warn(
                        "c-arg-type",
                        f"struct {decay(arg_type).describe()} passed through "
                        "'...'",
                        arg.location,
                    )
                if isinstance(arg_type, type(VOID)):
                    self._error("c-void", "void value passed through '...'", arg.location)
        return ftype.return_type

    def _type_of_index(self, expr: ast.Index) -> CType:
        assert expr.base is not None and expr.index is not None
        base_type = self._check_expr(expr.base)
        index_type = decay(self._check_expr(expr.index))
        if not is_integer(index_type):
            self._error(
                "c-operand",
                f"array index has type {index_type.describe()}",
                expr.location,
            )
        if isinstance(base_type, ArrayType):
            return base_type.element
        if isinstance(base_type, PointerType):
            return base_type.pointee
        self._error(
            "c-operand",
            f"subscripted value {base_type.describe()} is not an array",
            expr.location,
        )
        return S32

    def _type_of_member(self, expr: ast.Member) -> CType:
        assert expr.base is not None
        base_type = self._check_expr(expr.base)
        if expr.arrow:
            if not isinstance(base_type, PointerType) or not isinstance(
                base_type.pointee, StructType
            ):
                self._error(
                    "c-member",
                    f"'->' on non-pointer-to-struct {base_type.describe()}",
                    expr.location,
                )
                return S32
            struct = base_type.pointee
        else:
            if not isinstance(base_type, StructType):
                self._error(
                    "c-member",
                    f"member access on non-struct {base_type.describe()}",
                    expr.location,
                )
                return S32
            struct = base_type
        field = struct.field_named(expr.name)
        if field is None:
            self._error(
                "c-member",
                f"struct {struct.name} has no member {expr.name!r}",
                expr.location,
            )
            return S32
        return field.ctype

    def _type_of_unary(self, expr: ast.Unary) -> CType:
        assert expr.operand is not None
        if expr.op in ("++", "--"):
            return self._type_of_incdec(expr.operand, expr.op, expr.location)
        operand_type = decay(self._check_expr(expr.operand))
        if expr.op == "&":
            self._error(
                "c-operand", "address-of is not supported in mini-C", expr.location
            )
            return S32
        if expr.op == "*":
            if isinstance(operand_type, PointerType):
                return operand_type.pointee
            self._error(
                "c-operand",
                f"dereference of non-pointer {operand_type.describe()}",
                expr.location,
            )
            return S32
        if expr.op == "!":
            if not operand_type.is_scalar:
                self._error(
                    "c-operand",
                    f"'!' on non-scalar {operand_type.describe()}",
                    expr.location,
                )
            return S32
        # "-", "~"
        if not is_integer(operand_type):
            self._error(
                "c-operand",
                f"{expr.op!r} on non-integer {operand_type.describe()}",
                expr.location,
            )
            return S32
        assert isinstance(operand_type, IntCType)
        from repro.minic.ctypes import promote

        return promote(operand_type)

    def _type_of_incdec(
        self, operand: ast.Expr | None, op: str, location: SourceLocation
    ) -> CType:
        assert operand is not None
        operand_type = self._check_expr(operand)
        self._require_lvalue(operand, location)
        if not is_integer(operand_type) and not isinstance(operand_type, PointerType):
            self._error(
                "c-operand",
                f"{op!r} on {operand_type.describe()}",
                location,
            )
            return S32
        return operand_type

    def _type_of_binary(self, expr: ast.Binary) -> CType:
        assert expr.left is not None and expr.right is not None
        left = decay(self._check_expr(expr.left))
        right = decay(self._check_expr(expr.right))
        op = expr.op

        if op in ("&&", "||"):
            for side, stype in ((expr.left, left), (expr.right, right)):
                if not stype.is_scalar:
                    self._error(
                        "c-operand",
                        f"{op!r} operand has type {stype.describe()}",
                        side.location,
                    )
            return S32

        if op in ("==", "!=", "<", ">", "<=", ">="):
            if is_integer(left) and is_integer(right):
                return S32
            if isinstance(left, PointerType) and isinstance(right, PointerType):
                return S32
            if isinstance(left, PointerType) and _is_zero(expr.right):
                return S32
            if isinstance(right, PointerType) and _is_zero(expr.left):
                return S32
            # Pointer/integer comparison: a 2001 warning, not an error.
            if (isinstance(left, (PointerType, FunctionType)) and is_integer(right)) or (
                isinstance(right, (PointerType, FunctionType)) and is_integer(left)
            ):
                self._warn(
                    "c-ptr-int",
                    f"comparison between pointer and integer ({op!r})",
                    expr.location,
                )
                return S32
            self._error(
                "c-operand",
                f"invalid operands to {op!r} ({left.describe()} and "
                f"{right.describe()})",
                expr.location,
            )
            return S32

        if op in ("+", "-"):
            if isinstance(left, PointerType) and is_integer(right):
                return left
            if op == "+" and is_integer(left) and isinstance(right, PointerType):
                return right
        if is_integer(left) and is_integer(right):
            assert isinstance(left, IntCType) and isinstance(right, IntCType)
            if op in ("<<", ">>"):
                from repro.minic.ctypes import promote

                return promote(left)
            return usual_arithmetic(left, right)
        self._error(
            "c-operand",
            f"invalid operands to {op!r} ({left.describe()} and "
            f"{right.describe()})",
            expr.location,
        )
        return S32

    def _type_of_assign(self, expr: ast.Assign) -> CType:
        assert expr.target is not None and expr.value is not None
        target_type = self._check_expr(expr.target)
        value_type = self._check_expr(expr.value)
        self._require_lvalue(expr.target, expr.location)
        self._require_not_const(expr.target, expr.location)
        if isinstance(target_type, ArrayType):
            self._error("c-lvalue", "assignment to array", expr.location)
            return S32
        if expr.op == "=":
            self._require_assignable(target_type, value_type, expr.location)
            return target_type
        # Compound assignment needs integer (or pointer +=/-= int) operands.
        if isinstance(target_type, PointerType) and expr.op in ("+=", "-="):
            if not is_integer(decay(value_type)):
                self._error(
                    "c-operand",
                    f"pointer {expr.op} with {value_type.describe()}",
                    expr.location,
                )
            return target_type
        if not is_integer(target_type) or not is_integer(decay(value_type)):
            self._error(
                "c-operand",
                f"invalid operands to {expr.op!r} ({target_type.describe()} and "
                f"{value_type.describe()})",
                expr.location,
            )
        return target_type

    def _type_of_ternary(self, expr: ast.Ternary) -> CType:
        assert expr.cond is not None and expr.then is not None and expr.other is not None
        self._check_condition(expr.cond)
        then_type = decay(self._check_expr(expr.then))
        other_type = decay(self._check_expr(expr.other))
        if is_integer(then_type) and is_integer(other_type):
            assert isinstance(then_type, IntCType) and isinstance(other_type, IntCType)
            return usual_arithmetic(then_type, other_type)
        if then_type == other_type:
            return then_type
        if isinstance(then_type, PointerType) and _is_zero(expr.other):
            return then_type
        if isinstance(other_type, PointerType) and _is_zero(expr.then):
            return other_type
        if (isinstance(then_type, PointerType) and is_integer(other_type)) or (
            isinstance(other_type, PointerType) and is_integer(then_type)
        ):
            self._warn(
                "c-ptr-int", "pointer/integer type mismatch in ?:", expr.location
            )
            return then_type if isinstance(then_type, PointerType) else other_type
        self._error(
            "c-operand",
            f"mismatched ?: branches ({then_type.describe()} and "
            f"{other_type.describe()})",
            expr.location,
        )
        return then_type

    def _type_of_cast(self, expr: ast.Cast) -> CType:
        assert expr.target_type is not None and expr.operand is not None
        source = decay(self._check_expr(expr.operand))
        target = expr.target_type
        if isinstance(target, StructType) or isinstance(source, StructType):
            if not (isinstance(target, StructType) and target == source):
                self._error(
                    "c-cast",
                    f"cannot cast {source.describe()} to {target.describe()}",
                    expr.location,
                )
            return target
        # Explicit pointer/integer casts are legal C; no diagnostic.
        if isinstance(target, PointerType) and is_integer(source):
            return target
        if is_integer(target) and isinstance(source, (PointerType, FunctionType)):
            return target
        if isinstance(source, type(VOID)):
            self._error("c-void", "cast of void value", expr.location)
        return target

    # -- core judgements --------------------------------------------------------

    def _require_lvalue(self, expr: ast.Expr, location: SourceLocation) -> None:
        if not _is_lvalue(expr):
            self._error("c-lvalue", "lvalue required", location)

    def _require_not_const(self, expr: ast.Expr, location: SourceLocation) -> None:
        if self._is_const_lvalue(expr):
            self._error("c-const", "assignment of read-only value", location)

    def _is_const_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Ident):
            symbol = self._lookup(expr.name)
            return symbol is not None and symbol.const
        if isinstance(expr, ast.Member):
            assert expr.base is not None
            if expr.arrow:
                base = expr.base.ctype
                return isinstance(base, PointerType) and base.const_pointee
            return self._is_const_lvalue(expr.base)
        if isinstance(expr, ast.Index):
            assert expr.base is not None
            base = expr.base.ctype
            if isinstance(base, PointerType) and base.const_pointee:
                return True
            return self._is_const_lvalue(expr.base)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            assert expr.operand is not None
            base = expr.operand.ctype
            return isinstance(base, PointerType) and base.const_pointee
        return False

    def _require_assignable(
        self,
        target: CType,
        value: CType,
        location: SourceLocation,
        context: str = "c-assign-type",
    ) -> None:
        value = decay(value)
        if isinstance(target, type(VOID)) or isinstance(value, type(VOID)):
            self._error("c-void", "void value used", location)
            return
        if is_integer(target) and is_integer(value):
            return
        if isinstance(target, StructType) or isinstance(value, StructType):
            if isinstance(target, StructType) and target == value:
                return
            self._error(
                context,
                f"incompatible types: expected {target.describe()}, got "
                f"{value.describe()}",
                location,
            )
            return
        # Pointer/integer conversions: warnings in the paper's era (kernel
        # builds did not use -Werror); the mutant boots with a wild value.
        if isinstance(target, PointerType):
            if isinstance(value, PointerType):
                if _pointee_compatible(target.pointee, value.pointee):
                    return
                self._warn(
                    "c-ptr-int",
                    f"incompatible pointer types: expected {target.describe()}, "
                    f"got {value.describe()}",
                    location,
                )
                return
            if isinstance(value, FunctionType):
                self._warn(
                    "c-ptr-int",
                    "function pointer converted to object pointer",
                    location,
                )
                return
            self._warn(
                "c-ptr-int",
                f"makes pointer from integer without a cast "
                f"({value.describe()} -> {target.describe()})",
                location,
            )
            return
        if isinstance(value, (PointerType, FunctionType)):
            self._warn(
                "c-ptr-int",
                f"makes integer from pointer without a cast "
                f"({value.describe()} -> {target.describe()})",
                location,
            )
            return
        self._error(
            context,
            f"incompatible types: expected {target.describe()}, got "
            f"{value.describe()}",
            location,
        )


# -- structural helpers -----------------------------------------------------------


def _is_lvalue(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Ident):
        return not isinstance(expr.ctype, FunctionType)
    if isinstance(expr, ast.Index):
        return True
    if isinstance(expr, ast.Member):
        if expr.arrow:
            return True
        assert expr.base is not None
        return _is_lvalue(expr.base)
    if isinstance(expr, ast.Unary) and expr.op == "*":
        return True
    return False


def _is_zero(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.IntLit) and expr.value == 0


def _has_effect(expr: ast.Expr) -> bool:
    """Whether an expression statement plausibly does something."""
    if isinstance(expr, (ast.Assign, ast.Call, ast.Postfix)):
        return True
    if isinstance(expr, ast.Unary):
        if expr.op in ("++", "--"):
            return True
        assert expr.operand is not None
        return _has_effect(expr.operand)
    if isinstance(expr, ast.Binary):
        assert expr.left is not None and expr.right is not None
        return _has_effect(expr.left) or _has_effect(expr.right)
    if isinstance(expr, ast.Ternary):
        assert expr.then is not None and expr.other is not None
        return _has_effect(expr.then) or _has_effect(expr.other)
    if isinstance(expr, ast.Comma):
        assert expr.right is not None
        return _has_effect(expr.right)
    if isinstance(expr, ast.Cast):
        assert expr.operand is not None
        return _has_effect(expr.operand)
    if isinstance(expr, (ast.Index, ast.Member)):
        return False
    return False


def _compatible(first: CType, second: CType) -> bool:
    return first == second


def _signatures_match(first: FunctionType, second: FunctionType) -> bool:
    return (
        first.return_type == second.return_type
        and first.params == second.params
        and first.variadic == second.variadic
    )


def _pointee_compatible(target: CType, value: CType) -> bool:
    if target == value:
        return True
    # char buffers: allow char/u8/s8 aliasing, as C string functions do.
    if (
        isinstance(target, IntCType)
        and isinstance(value, IntCType)
        and target.width == value.width
    ):
        return True
    return False
