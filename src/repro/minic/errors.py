"""Run-time events of the mini-C machine.

These exceptions are the raw signals the kernel harness maps onto the
paper's §4.2 outcome classes (Run-time check, Crash, Infinite loop, Halt).
"""

from __future__ import annotations


class MiniCRuntimeError(Exception):
    """Base class for events raised while interpreting mini-C."""


class KernelPanic(MiniCRuntimeError):
    """``panic()`` was called — the paper's "Halt" outcome."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class DevilAssertion(MiniCRuntimeError):
    """``dil_panic()`` fired from a generated debug stub — "Run-time check"."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class MachineFault(MiniCRuntimeError):
    """An un-survivable machine-level fault — the paper's "Crash".

    Raised for stray port I/O (bus fault), division by zero, null
    dereference and out-of-bounds array access.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class StepBudgetExceeded(MiniCRuntimeError):
    """The watchdog expired — the paper's "Infinite loop"."""


class InterpreterBug(Exception):
    """An internal invariant of the interpreter failed (never an outcome)."""
