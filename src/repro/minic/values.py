"""Runtime values of the mini-C machine.

Integers are plain Python ints, always stored pre-wrapped to their static
type's range.  Structs have C value semantics (copied on assignment, on
argument passing and on return).  Arrays are reference objects reached
through :class:`CPointer`, which also models the limited pointer
arithmetic mini-C allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic.ctypes import CType, IntCType
from repro.minic.errors import MachineFault


@dataclass
class CStructValue:
    struct_name: str
    fields: dict[str, object] = field(default_factory=dict)

    def copy(self) -> "CStructValue":
        return CStructValue(self.struct_name, dict(self.fields))


@dataclass
class CArray:
    element: CType
    values: list = field(default_factory=list)

    @classmethod
    def zeroed(cls, element: CType, length: int) -> "CArray":
        if isinstance(element, IntCType):
            return cls(element, [0] * length)
        raise MachineFault(f"unsupported array element {element.describe()}")

    def load(self, index: int):
        if not 0 <= index < len(self.values):
            raise MachineFault(
                f"array index {index} out of bounds (size {len(self.values)})"
            )
        return self.values[index]

    def store(self, index: int, value) -> None:
        if not 0 <= index < len(self.values):
            raise MachineFault(
                f"array index {index} out of bounds (size {len(self.values)})"
            )
        self.values[index] = value


@dataclass(frozen=True)
class CPointer:
    """A pointer into a :class:`CArray` (or a decayed array)."""

    array: CArray
    offset: int = 0

    def load(self, index: int = 0):
        return self.array.load(self.offset + index)

    def store(self, value, index: int = 0) -> None:
        self.array.store(self.offset + index, value)

    def advanced(self, delta: int) -> "CPointer":
        return CPointer(self.array, self.offset + delta)
