"""Seeded sampling of mutant populations.

The paper tests a random 25 % of the ~2000 generated C mutants; sampling
here is deterministic under a seed so experiment output is reproducible.
"""

from __future__ import annotations

import random

from repro.mutation.model import Mutant

DEFAULT_SEED = 4136  # the paper's INRIA report number
PAPER_FRACTION = 0.25


def sample_mutants(
    mutants: list[Mutant],
    fraction: float = PAPER_FRACTION,
    seed: int = DEFAULT_SEED,
) -> list[Mutant]:
    """A stable random subset, preserving enumeration order."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside (0, 1]")
    if fraction >= 1.0:
        return list(mutants)
    count = max(1, round(len(mutants) * fraction)) if mutants else 0
    rng = random.Random(seed)
    chosen = set(rng.sample(range(len(mutants)), count))
    return [m for i, m in enumerate(mutants) if i in chosen]
