"""Hardware-operating-code region tagging (paper §3.3).

"In a C driver, we are only interested in testing the hardware operating
code.  Thus, we manually insert tags to mark the corresponding regions."
Regions are delimited with ``/* HW-BEGIN */`` ... ``/* HW-END */`` (or
``CDEVIL-BEGIN``/``CDEVIL-END`` in the re-engineered driver); only tokens
inside a region are mutation sites.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_MARKER = re.compile(r"/\*\s*(HW|CDEVIL)-(BEGIN|END)\s*\*/")


@dataclass(frozen=True)
class Region:
    start: int  # offset just after the BEGIN marker
    end: int  # offset of the END marker

    def covers(self, offset: int) -> bool:
        return self.start <= offset < self.end


def tagged_regions(source: str) -> list[Region]:
    """All tagged regions of a source text, in order."""
    regions: list[Region] = []
    open_at: int | None = None
    for match in _MARKER.finditer(source):
        if match.group(2) == "BEGIN":
            if open_at is not None:
                raise ValueError(f"nested {match.group(0)} at {match.start()}")
            open_at = match.end()
        else:
            if open_at is None:
                raise ValueError(f"unmatched {match.group(0)} at {match.start()}")
            regions.append(Region(open_at, match.start()))
            open_at = None
    if open_at is not None:
        raise ValueError("unterminated mutation region")
    return regions


def in_regions(regions: list[Region], offset: int) -> bool:
    return any(region.covers(offset) for region in regions)


def api_call_regions(source: str, api_names: frozenset[str]) -> list[Region]:
    """Stub-call-expression regions for a CDevil driver.

    Paper §1/§3.3: "For Devil drivers, mutations are applied at the call
    sites of the generated stubs."  A region spans from the stub's name to
    its matching close parenthesis — covering the name, the arguments and
    any nested stub calls, but *not* the surrounding statement.
    """
    from repro.minic.lexer import lex_line, strip_comments
    from repro.minic.tokens import CTokenKind

    regions: list[Region] = []
    stripped = strip_comments(source)
    offset = 0
    for line_number, line in enumerate(stripped.split("\n"), start=1):
        if not line.lstrip().startswith("#"):
            tokens = lex_line(line, line_number, "<cdevil>")
            index = 0
            while index < len(tokens):
                token = tokens[index]
                if (
                    token.kind is CTokenKind.IDENT
                    and token.text in api_names
                    and index + 1 < len(tokens)
                    and tokens[index + 1].is_punct("(")
                ):
                    depth = 0
                    end = index + 1
                    while end < len(tokens):
                        if tokens[end].is_punct("("):
                            depth += 1
                        elif tokens[end].is_punct(")"):
                            depth -= 1
                            if depth == 0:
                                break
                        end += 1
                    if end < len(tokens):
                        start_off = offset + token.column - 1
                        end_off = offset + tokens[end].column  # past ')'
                        regions.append(Region(start_off, end_off))
                        index = end + 1
                        continue
                index += 1
        offset += len(line) + 1
    return _merge(regions)


def _merge(regions: list[Region]) -> list[Region]:
    merged: list[Region] = []
    for region in sorted(regions, key=lambda r: r.start):
        if merged and region.start <= merged[-1].end:
            merged[-1] = Region(merged[-1].start, max(merged[-1].end, region.end))
        else:
            merged.append(region)
    return merged
