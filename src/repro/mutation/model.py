"""Mutant and mutation-site data model.

A :class:`MutationSite` is one token span in the original source text; a
:class:`Mutant` is that span replaced with alternative text.  Exactly one
token differs from the original program — the granularity of the paper's
error model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MutationSite:
    """One mutable token occurrence in a source text."""

    file: str
    line: int
    column: int
    offset: int
    length: int
    original: str
    kind: str  # "literal" | "operator" | "identifier"
    detail: str = ""  # operator class, identifier class, literal base ...

    @property
    def key(self) -> tuple[str, int, int]:
        return (self.file, self.line, self.column)

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.column} {self.kind} {self.original!r}"


@dataclass(frozen=True)
class Mutant:
    """One single-token rewrite of the original source."""

    site: MutationSite
    replacement: str

    @property
    def mutant_id(self) -> str:
        return (
            f"{self.site.file}:{self.site.line}:{self.site.column}:"
            f"{self.site.original}->{self.replacement}"
        )

    def apply(self, source: str) -> str:
        """Splice the replacement into the original text."""
        start = self.site.offset
        end = start + self.site.length
        if source[start:end] != self.site.original:
            raise ValueError(
                f"source drifted under mutant {self.mutant_id}: "
                f"expected {self.site.original!r}, found {source[start:end]!r}"
            )
        return source[:start] + self.replacement + source[end:]

    def __str__(self) -> str:
        return self.mutant_id
