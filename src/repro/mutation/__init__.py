"""Mutation analysis (paper §3).

The error model simulates typographical and inattention errors:

* *literal* mutations — add, remove or replace one character of a numeric
  literal or bit pattern, always within its semantic class (`literals`);
* *operator* mutations — swap an operator for another of the same class
  (`c_ops.OPERATOR_CLASSES` reconstructs the paper's Table 1;
  `devil_ops` covers Devil's range and mapping operators);
* *identifier* mutations — replace an identifier with another defined in
  the same file and semantic class (`c_ops`, `devil_ops`).

`generator` enumerates sites and mutants (validating that every mutant
still parses — the paper's rule that mutants are syntactically correct),
`runner` compiles and boots them, and `sampling` provides the seeded 25 %
subset the paper tests.
"""

from repro.mutation.model import Mutant, MutationSite
from repro.mutation.generator import (
    enumerate_c_mutants,
    enumerate_devil_mutants,
)
from repro.mutation.runner import (
    CampaignResult,
    MutantResult,
    run_devil_campaign,
    run_driver_campaign,
)
from repro.mutation.sampling import sample_mutants

__all__ = [
    "CampaignResult",
    "Mutant",
    "MutantResult",
    "MutationSite",
    "enumerate_c_mutants",
    "enumerate_devil_mutants",
    "run_devil_campaign",
    "run_driver_campaign",
    "sample_mutants",
]
