"""Campaign runner: compile and boot every mutant, classify outcomes.

``run_driver_campaign`` reproduces the paper's §4.2 experiment for either
driver; ``run_devil_campaign`` reproduces §4.1 for a specification.  Both
are deterministic under a seed — including under parallel execution:
``workers=N`` fans mutant evaluation out over a process pool and merges
``MutantResult``s back by mutant index, so any worker count produces the
same `CampaignResult` as the serial fallback (``workers=1``).

Per-mutant cost is kept low by two campaign-scoped optimisations, both
individually defeatable for reference runs:

* ``compile_cache=True`` routes compilation through
  :class:`repro.minic.incremental.CampaignCompiler`, which re-lexes and
  re-parses only the mutated declaration(s) of the driver file;
* ``backend`` selects the mini-C execution backend (default: the
  closure-compiled fast path; ``"source"`` is the still-faster
  source-emitting codegen backend, ``"tree"`` the reference walker).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.devil import ast as devil_ast
from repro.devil.compiler import CheckedSpec, compile_spec, parse_spec, spec_errors
from repro.devil.incremental import SpecCampaignCompiler
from repro.devil.types import EnumType
from repro.diagnostics import CompileError
from repro.drivers import (
    IDE_HEADER_NAME,
    assemble_c_program,
    assemble_cdevil_program,
)
from repro.hw.machine import standard_pc
from repro.kernel.checkpoint import (
    CheckpointPlan,
    changed_lines_of,
    checkpoint_for_mutant,
    checkpointing_enabled_by_env,
    granularity_from_env,
    load_plan,
    pinned_granularity,
    record_plan,
    resume_boot,
)
from repro.kernel.kernel import DEFAULT_STEP_BUDGET, boot
from repro.kernel.outcomes import BootOutcome
from repro.minic import ast as c_ast
from repro.minic.incremental import CampaignCompiler
from repro.minic.program import SourceFile, compile_program
from repro.minic.sema import BUILTIN_SIGNATURES
from repro.mutation.c_ops import IdentifierPools
from repro.mutation.generator import enumerate_c_mutants, enumerate_devil_mutants
from repro.mutation.model import Mutant
from repro.mutation.sampling import DEFAULT_SEED, sample_mutants
from repro.mutation.tagging import api_call_regions
from repro.specs import load_spec_source

ProgressFn = Callable[[int, int], None]


@dataclass
class MutantResult:
    mutant: Mutant
    outcome: BootOutcome
    detail: str = ""


@dataclass
class CampaignResult:
    """Aggregated results of one driver campaign (a Table 3/4 run)."""

    driver: str
    enumerated: int
    results: list[MutantResult] = field(default_factory=list)
    clean_steps: int = 0
    step_budget: int = 0
    #: Boot-checkpointing diagnostics (checkpointed runs, serial or
    #: parallel — per-worker counters merge to the serial totals):
    #: resumed/cold boot counts, the sub-call resume subset, and total
    #: clean-prefix steps skipped.
    checkpoint_stats: dict | None = None
    #: Engine-supervision quarantine records
    #: (`repro.engine.supervision.QuarantineRecord`): mutants whose
    #: evaluation repeatably killed a fresh worker, reported as
    #: ``WORKER_CRASH`` rows in ``results``.  Always ``()`` for serial
    #: and worker-pool runs (the mutant executes in-process there).
    quarantine: tuple = ()

    @property
    def tested(self) -> int:
        return len(self.results)

    def count(self, outcome: BootOutcome) -> int:
        return sum(1 for r in self.results if r.outcome is outcome)

    def sites(self, outcome: BootOutcome) -> int:
        return len(
            {r.mutant.site.key for r in self.results if r.outcome is outcome}
        )

    def fraction(self, outcome: BootOutcome) -> float:
        return self.count(outcome) / self.tested if self.tested else 0.0

    def detected_fraction(self) -> float:
        """Compile-time + run-time checks, the paper's headline metric."""
        detected = self.count(BootOutcome.COMPILE_CHECK) + self.count(
            BootOutcome.RUN_TIME_CHECK
        )
        return detected / self.tested if self.tested else 0.0


@dataclass
class DevilCampaignResult:
    """One row of Table 2."""

    spec_name: str
    lines: int
    sites: int
    enumerated: int
    results: list[MutantResult] = field(default_factory=list)
    #: Engine-supervision quarantine records (see ``CampaignResult``).
    quarantine: tuple = ()

    @property
    def tested(self) -> int:
        return len(self.results)

    @property
    def detected(self) -> int:
        return sum(
            1 for r in self.results if r.outcome is BootOutcome.COMPILE_CHECK
        )

    @property
    def detected_fraction(self) -> float:
        return self.detected / self.tested if self.tested else 0.0


# -- identifier pool construction ---------------------------------------------


def build_c_pools(
    program_files: list[SourceFile],
    include_registry: dict[str, str],
    driver_filename: str,
    api_spec: CheckedSpec | None = None,
    api_prefix: str = "",
) -> IdentifierPools:
    """Same-file identifier classes, per the paper's replacement rule."""
    pools = IdentifierPools()
    program = compile_program(program_files, include_registry)

    for decl in program.unit.decls:
        in_driver = decl.location.filename == driver_filename
        if isinstance(decl, c_ast.FuncDecl):
            if in_driver:
                pools.functions.add(decl.name)
                for param in decl.params:
                    if param.name:
                        pools.variables.add(param.name)
                if decl.body is not None:
                    _collect_locals(decl.body, pools.variables)
        elif isinstance(decl, c_ast.GlobalDecl) and in_driver:
            pools.variables.add(decl.name)

    # Builtins called from the driver join the function pool ("defined"
    # by the kernel environment headers).
    driver_text = next(
        f.text for f in program_files if f.name == driver_filename
    )
    for name in BUILTIN_SIGNATURES:
        if name in ("dil_panic",):
            continue
        if f"{name}(" in driver_text:
            pools.functions.add(name)

    for line in driver_text.splitlines():
        stripped = line.strip()
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) >= 2:
                pools.macros.add(parts[1].split("(")[0])

    if api_spec is not None:
        pools.api_classes.update(cdevil_api_pools(api_spec, api_prefix))
    return pools


def _collect_locals(stmt: c_ast.Stmt, into: set[str]) -> None:
    if isinstance(stmt, c_ast.LocalDecl):
        into.add(stmt.name)
    elif isinstance(stmt, c_ast.Block):
        for inner in stmt.statements:
            _collect_locals(inner, into)
    elif isinstance(stmt, c_ast.If):
        for inner in (stmt.then, stmt.otherwise):
            if inner is not None:
                _collect_locals(inner, into)
    elif isinstance(stmt, (c_ast.While, c_ast.DoWhile)):
        if stmt.body is not None:
            _collect_locals(stmt.body, into)
    elif isinstance(stmt, c_ast.For):
        for inner in (stmt.init, stmt.body):
            if inner is not None:
                _collect_locals(inner, into)
    elif isinstance(stmt, c_ast.Switch):
        for group in stmt.groups:
            for inner in group.body:
                _collect_locals(inner, into)


def stub_call_names(spec: CheckedSpec, prefix: str = "") -> frozenset[str]:
    """Every callable the Devil compiler generates (stub-call anchors)."""

    def named(base: str) -> str:
        return f"{prefix}_{base}" if prefix else base

    names = {named("devil_init"), "dil_eq", "dil_assert"}
    for variable in spec.variables.values():
        if variable.writable:
            names.add(named(f"set_{variable.name}"))
        if variable.readable and not variable.private:
            names.add(named(f"get_{variable.name}"))
        if "write trigger" in variable.decl.attributes:
            names.add(named(f"trigger_{variable.name}"))
        if "read trigger" in variable.decl.attributes:
            names.add(named(f"latch_{variable.name}"))
    return frozenset(names)


def cdevil_api_pools(
    spec: CheckedSpec, prefix: str = ""
) -> dict[str, frozenset[str]]:
    """Generated-interface identifier classes (paper §3.3).

    Set functions form one class, get functions another, and the typed
    interface *values* (enum constants) a third spanning all enum types —
    confusing two constants of different types is exactly the inattention
    error the debug stubs are built to catch.
    """

    def named(base: str) -> str:
        return f"{prefix}_{base}" if prefix else base

    setters = set()
    getters = set()
    constants = set()
    for variable in spec.variables.values():
        if variable.writable:
            setters.add(named(f"set_{variable.name}"))
        if variable.readable and not variable.private:
            getters.add(named(f"get_{variable.name}"))
        if isinstance(variable.devil_type, EnumType):
            for member in variable.devil_type.members:
                constants.add(member.name)
    classes: dict[str, frozenset[str]] = {}
    for pool in (frozenset(setters), frozenset(getters), frozenset(constants)):
        for name in pool:
            classes[name] = pool
    return classes


# -- driver campaigns -------------------------------------------------------------


@dataclass
class _EvalContext:
    """Everything one process needs to evaluate campaign mutants."""

    source: str
    driver_filename: str
    registry: dict[str, str]
    budget: int
    backend: str | None
    compiler: CampaignCompiler | None
    checkpoint: bool = False
    #: Checkpoint granularity ("call" or "subcall"; see
    #: `repro.kernel.checkpoint`).
    granularity: str = "subcall"
    #: Portable checkpoint plan to load instead of recording in-process
    #: (`repro.kernel.checkpoint.save_plan` format) — the distributed
    #: runner's path: the instrumented clean boot runs once and ships to
    #: every shard.
    plan_path: str | None = None
    #: Whether ``granularity`` was requested explicitly (parameter or
    #: environment override) rather than defaulted: a loaded plan's
    #: granularity must then match instead of being adopted.
    granularity_pinned: bool = False
    #: Lazily built per process (deterministic, so every worker records
    #: the identical plan): the instrumented clean boot's checkpoints,
    #: plus one reusable machine and its pristine snapshot.
    _plan: CheckpointPlan | None = None
    _machine: object = None
    _pristine: object = None

    @classmethod
    def build(
        cls,
        source: str,
        driver_filename: str,
        registry: dict[str, str],
        budget: int,
        backend: str | None,
        compile_cache: bool,
        checkpoint: bool = False,
        granularity: str = "subcall",
        compiler: CampaignCompiler | None = None,
        plan_path: str | None = None,
        granularity_pinned: bool = False,
    ) -> "_EvalContext":
        if compile_cache and compiler is None:
            compiler = CampaignCompiler(driver_filename, source, registry)
        if not compile_cache:
            compiler = None
        return cls(
            source=source,
            driver_filename=driver_filename,
            registry=registry,
            budget=budget,
            backend=backend,
            compiler=compiler,
            checkpoint=checkpoint,
            granularity=granularity,
            plan_path=plan_path,
            granularity_pinned=granularity_pinned,
        )

    def ensure_plan(self) -> CheckpointPlan:
        if self._plan is None:
            self._machine = standard_pc(with_busmouse=False)
            self._pristine = self._machine.snapshot()
            if self.plan_path is not None:
                self._plan = load_plan(
                    self.plan_path,
                    source=self.source,
                    driver_filename=self.driver_filename,
                    granularity=(
                        self.granularity if self.granularity_pinned else None
                    ),
                    step_budget=DEFAULT_STEP_BUDGET,
                )
                # Adopt the plan's recorded granularity so the stats and
                # mapping rules match what is actually on disk.
                self.granularity = self._plan.granularity
            else:
                if self.compiler is not None:
                    baseline = self.compiler.baseline_program
                else:
                    baseline = compile_program(
                        [SourceFile(self.driver_filename, self.source)],
                        self.registry,
                    )
                self._plan = record_plan(
                    baseline,
                    self._machine,
                    DEFAULT_STEP_BUDGET,
                    backend=self.backend,
                    granularity=self.granularity,
                )
            if self._plan.report.outcome is not BootOutcome.BOOT:
                raise RuntimeError(
                    "checkpoint recording requires a clean baseline boot: "
                    f"{self._plan.report}"
                )
        return self._plan

    def stats_view(self) -> dict | None:
        """Current checkpoint counters, or ``None`` before any boot."""
        return dict(self._plan.stats) if self._plan is not None else None


@dataclass
class CampaignSetup:
    """The deterministic front half of a driver campaign.

    Everything up to (and including) mutant enumeration, sampling and
    the baseline boot — derived from ``(driver, mode, fraction, seed)``
    alone, so any process that runs :func:`prepare_campaign` with the
    same arguments sees the identical ``tested`` list.  This is what
    makes multi-host sharding coordination-free: a shard derives its own
    mutant slice from the shared parameters (`repro.distributed`).
    """

    driver: str
    mode: str
    fraction: float
    seed: int
    files: list[SourceFile]
    registry: dict[str, str]
    driver_filename: str
    source: str
    mutants: list[Mutant]
    tested: list[Mutant]
    clean_steps: int
    budget: int
    compiler: CampaignCompiler | None = None

    @property
    def enumerated(self) -> int:
        return len(self.mutants)


def assemble_driver(
    driver: str, mode: str = "debug"
) -> tuple[list[SourceFile], dict[str, str], str]:
    """One campaign driver's sources: ``(files, registry, driver_filename)``.

    The shared front door for everything that boots a campaign driver —
    the mutation runner below and the environment-fault campaigns
    (`repro.faults`), which perturb the *hardware* under the unmutated
    driver instead of the source.
    """
    if driver == "c":
        files, registry = assemble_c_program()
    elif driver == "cdevil":
        files, registry = assemble_cdevil_program(mode=mode)
    else:
        raise ValueError(f"unknown driver {driver!r}")
    return files, registry, files[0].name


def prepare_campaign(
    driver: str = "c",
    mode: str = "debug",
    fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    step_budget: int | None = None,
    backend: str | None = None,
    compile_cache: bool = True,
) -> CampaignSetup:
    """Assemble, enumerate, sample and baseline-boot one campaign."""
    regions = None
    files, registry, driver_filename = assemble_driver(driver, mode)
    if driver == "c":
        pools = build_c_pools(files, registry, driver_filename)
    else:
        spec = compile_spec(load_spec_source("ide_piix4"))
        pools = build_c_pools(files, registry, driver_filename, api_spec=spec)
        # Paper §3.3: CDevil mutations target the stub call sites.
        regions = api_call_regions(files[0].text, stub_call_names(spec))

    source = files[0].text
    # One incremental compiler serves both the enumeration gate and the
    # serial evaluation loop (workers build their own per process).
    campaign_compiler = (
        CampaignCompiler(driver_filename, source, registry)
        if compile_cache
        else None
    )
    mutants = enumerate_c_mutants(
        source, driver_filename, pools, include_registry=registry,
        regions=regions, compiler=campaign_compiler,
    )
    tested = sample_mutants(mutants, fraction, seed)

    # Baseline: the unmutated driver must boot cleanly.
    baseline_program = compile_program(files, registry)
    baseline = boot(baseline_program, standard_pc(), backend=backend)
    if baseline.outcome is not BootOutcome.BOOT:
        raise RuntimeError(
            f"baseline {driver} driver does not boot cleanly: {baseline}"
        )
    budget = step_budget or max(1_000_000, baseline.steps * 6 + 200_000)
    return CampaignSetup(
        driver=driver,
        mode=mode,
        fraction=fraction,
        seed=seed,
        files=files,
        registry=registry,
        driver_filename=driver_filename,
        source=source,
        mutants=mutants,
        tested=tested,
        clean_steps=baseline.steps,
        budget=budget,
        compiler=campaign_compiler,
    )


def shard_indices(total: int, shard_index: int, shard_count: int) -> range:
    """The sampled-mutant indices shard ``shard_index`` evaluates.

    The index space ``range(total)`` is partitioned by stride —
    ``range(shard_index, total, shard_count)`` — so the union over all
    shards covers every index exactly once, every shard's share differs
    in size by at most one, and a shard needs nothing but its own
    coordinates to know its slice.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count {shard_count} must be >= 1")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index {shard_index} outside [0, {shard_count})"
        )
    return range(shard_index, total, shard_count)


def evaluate_campaign(
    setup: CampaignSetup,
    indices,
    backend: str | None = None,
    compile_cache: bool = True,
    boot_checkpoint: bool = False,
    checkpoint_granularity: str = "subcall",
    granularity_pinned: bool = False,
    checkpoint_plan: str | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
) -> tuple[list[MutantResult], dict | None]:
    """Evaluate ``setup.tested[i]`` for each ``i`` in ``indices``.

    Results come back ordered by sampled-mutant index (the order the
    serial full campaign would produce them in), with the summed
    checkpoint counters.  This is the campaign loop both the classic
    runner and the shard runner drive — the only difference is which
    index subset they pass.
    """
    indices = list(indices)
    for index in indices:
        if not 0 <= index < len(setup.tested):
            raise ValueError(
                f"mutant index {index} outside sampled range "
                f"[0, {len(setup.tested)})"
            )
    if workers > 1 and len(indices) > 1:
        return _evaluate_parallel(
            setup,
            indices,
            backend,
            compile_cache,
            boot_checkpoint,
            checkpoint_granularity,
            granularity_pinned,
            checkpoint_plan,
            workers,
            progress,
        )
    context = _EvalContext.build(
        setup.source,
        setup.driver_filename,
        setup.registry,
        setup.budget,
        backend,
        compile_cache,
        checkpoint=boot_checkpoint,
        granularity=checkpoint_granularity,
        compiler=setup.compiler,
        plan_path=checkpoint_plan,
        granularity_pinned=granularity_pinned,
    )
    results = []
    for done, index in enumerate(indices):
        if progress is not None:
            progress(done, len(indices))
        results.append(_run_one(setup.tested[index], context))
    return results, context.stats_view()


def resolve_checkpoint_options(
    boot_checkpoint: bool | None,
    checkpoint_granularity: str | None,
    checkpoint_plan: str | None = None,
) -> tuple[bool, str, bool]:
    """Resolve a campaign's checkpoint knobs against the environment.

    Returns ``(boot_checkpoint, granularity, granularity_pinned)``.  The
    environment is consulted lazily — only when the caller left a knob
    unset, and the granularity env value is validated only when
    checkpointing is actually on, so a stale ``REPRO_CHECKPOINT_*``
    value cannot abort (or pin anything on) a non-checkpointed
    campaign.  A ``checkpoint_plan`` path implies checkpointing.  Shared
    by the driver, engine and scenario campaign entry points so every
    seam resolves identically.
    """
    if checkpoint_plan is not None:
        if boot_checkpoint is None:
            boot_checkpoint = True
        elif not boot_checkpoint:
            raise ValueError(
                "checkpoint_plan given but boot_checkpoint=False"
            )
    if boot_checkpoint is None:
        boot_checkpoint = checkpointing_enabled_by_env()
    granularity_pinned = boot_checkpoint and (
        pinned_granularity(checkpoint_granularity) is not None
    )
    if checkpoint_granularity is None:
        checkpoint_granularity = (
            granularity_from_env() if boot_checkpoint else "subcall"
        )
    return boot_checkpoint, checkpoint_granularity, granularity_pinned


def run_driver_campaign(
    driver: str = "c",
    mode: str = "debug",
    fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    step_budget: int | None = None,
    progress: ProgressFn | None = None,
    workers: int = 1,
    backend: str | None = None,
    compile_cache: bool = True,
    boot_checkpoint: bool | None = None,
    checkpoint_granularity: str | None = None,
    shard: tuple[int, int] | None = None,
    checkpoint_plan: str | None = None,
    engine=None,
) -> CampaignResult:
    """Mutation campaign against a driver (Table 3: "c"; Table 4: "cdevil").

    ``workers`` > 1 evaluates mutants on a process pool; results are
    merged by mutant index, so the outcome is identical to a serial run.
    ``backend``/``compile_cache`` select the execution backend and the
    incremental compiler (defaults: fast paths).  ``boot_checkpoint``
    starts each mutant from the deepest boot checkpoint provably before
    its first divergent step instead of from power-on (bit-identical
    outcomes; default: the ``REPRO_BOOT_CHECKPOINT`` environment
    variable).  ``checkpoint_granularity`` selects ``"subcall"`` (the
    default: resume inside driver calls too) or ``"call"`` (PR 3's call
    boundaries only); the ``REPRO_CHECKPOINT_GRANULARITY`` environment
    variable overrides the default.

    ``shard=(shard_index, shard_count)`` restricts evaluation to that
    shard's deterministic slice of the sampled mutants (see
    :func:`shard_indices`); the result then holds only the shard's
    ``results``, in sampled order — `repro.distributed` merges shards
    back into the full campaign.  ``checkpoint_plan`` names a portable
    plan file (`repro.kernel.checkpoint.save_plan`) to load instead of
    recording the instrumented clean boot in-process; it implies
    ``boot_checkpoint=True``.

    ``engine`` routes the whole campaign through a warm
    `repro.engine.Engine` instead of building setup state here —
    identical results, with the fixed setup cost amortised across every
    campaign the engine serves.  ``workers`` is then the engine's
    affair, and ``shard``/``checkpoint_plan`` (per-process seams the
    engine subsumes) are rejected.
    """
    if engine is not None:
        if shard is not None:
            raise ValueError("engine and shard are mutually exclusive")
        if checkpoint_plan is not None:
            raise ValueError(
                "engine and checkpoint_plan are mutually exclusive"
            )
        from repro.engine.state import CampaignRequest

        return engine.run_campaign(
            CampaignRequest(
                driver=driver,
                mode=mode,
                fraction=fraction,
                seed=seed,
                backend=backend,
                compile_cache=compile_cache,
                boot_checkpoint=boot_checkpoint,
                granularity=checkpoint_granularity,
                step_budget=step_budget,
            ),
            progress=progress,
        )
    boot_checkpoint, checkpoint_granularity, granularity_pinned = (
        resolve_checkpoint_options(
            boot_checkpoint, checkpoint_granularity, checkpoint_plan
        )
    )
    setup = prepare_campaign(
        driver,
        mode,
        fraction,
        seed,
        step_budget=step_budget,
        backend=backend,
        compile_cache=compile_cache,
    )
    indices = (
        range(len(setup.tested))
        if shard is None
        else shard_indices(len(setup.tested), *shard)
    )
    campaign = CampaignResult(
        driver=driver,
        enumerated=setup.enumerated,
        clean_steps=setup.clean_steps,
        step_budget=setup.budget,
    )
    campaign.results, campaign.checkpoint_stats = evaluate_campaign(
        setup,
        indices,
        backend=backend,
        compile_cache=compile_cache,
        boot_checkpoint=boot_checkpoint,
        checkpoint_granularity=checkpoint_granularity,
        granularity_pinned=granularity_pinned,
        checkpoint_plan=checkpoint_plan,
        workers=workers,
        progress=progress,
    )
    return campaign


def _run_one(mutant: Mutant, context: _EvalContext) -> MutantResult:
    mutated = mutant.apply(context.source)
    try:
        if context.compiler is not None:
            program = context.compiler.compile_variant(mutated)
        else:
            program = compile_program(
                [SourceFile(context.driver_filename, mutated)], context.registry
            )
    except CompileError as error:
        return MutantResult(
            mutant=mutant,
            outcome=BootOutcome.COMPILE_CHECK,
            detail=error.diagnostics[0].code if error.diagnostics else "error",
        )
    if context.checkpoint:
        report = _checkpointed_boot(program, mutant, context)
    else:
        report = boot(
            program,
            standard_pc(with_busmouse=False),
            step_budget=context.budget,
            backend=context.backend,
        )
    outcome = report.outcome
    if outcome is BootOutcome.BOOT:
        site_line = (mutant.site.file, mutant.site.line)
        if site_line not in report.coverage:
            outcome = BootOutcome.DEAD_CODE
    return MutantResult(mutant=mutant, outcome=outcome, detail=report.detail)


def _checkpointed_boot(program, mutant: Mutant, context: _EvalContext):
    """Boot a mutant from the deepest provably-safe checkpoint.

    Outcome fidelity: both paths below are bit-identical to
    ``boot(program, standard_pc(with_busmouse=False), context.budget,
    context.backend)`` —

    * resumption restores the exact machine/interpreter/kernel state the
      mutant itself would reach at that boundary (see
      ``repro.kernel.checkpoint``), and cold boots reinstate the
      pristine machine snapshot, observably equal to a fresh machine;
    * boots run on the ``hybrid`` backend (bit-identical semantics to
      every other backend, asserted by the differential suite), which
      avoids the per-mutant Python-``compile`` emission for loop-free
      mutated functions while keeping the source backend's loop speed.
    """
    plan = context.ensure_plan()
    machine = context._machine
    checkpoint = None
    lines = changed_lines_of(mutant.site, mutant.replacement)
    if lines is not None:
        checkpoint = checkpoint_for_mutant(plan, lines)
    backend = "hybrid" if context.backend != "tree" else "tree"
    if checkpoint is not None:
        plan.stats["resumed"] += 1
        if checkpoint.subcall:
            plan.stats["resumed_subcall"] += 1
        plan.stats["steps_skipped"] += checkpoint.steps
        return resume_boot(
            program, checkpoint, machine, context.budget, backend=backend
        )
    plan.stats["cold"] += 1
    machine.restore(context._pristine)
    return boot(program, machine, step_budget=context.budget, backend=backend)


# -- parallel evaluation -------------------------------------------------------

#: Per-process evaluation context, built once by the pool initialiser.
_WORKER_CONTEXT: _EvalContext | None = None


def _worker_init(
    source: str,
    driver_filename: str,
    registry: dict[str, str],
    budget: int,
    backend: str | None,
    compile_cache: bool,
    checkpoint: bool = False,
    granularity: str = "subcall",
    plan_path: str | None = None,
    granularity_pinned: bool = False,
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = _EvalContext.build(
        source,
        driver_filename,
        registry,
        budget,
        backend,
        compile_cache,
        checkpoint=checkpoint,
        granularity=granularity,
        plan_path=plan_path,
        granularity_pinned=granularity_pinned,
    )


def _stats_delta(before: dict | None, after: dict | None) -> dict | None:
    """Per-mutant increment of the checkpoint counters (``None`` when the
    mutant never booted, e.g. a compile-time detection)."""
    if after is None:
        return None
    if before is None:
        return dict(after)
    delta = {key: value - before.get(key, 0) for key, value in after.items()}
    return delta if any(delta.values()) else None


def _merge_stats(total: dict | None, delta: dict | None) -> dict | None:
    if delta is None:
        return total
    if total is None:
        total = {}
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value
    return total


def _pool_context(start_method: str | None = None):
    """The multiprocessing context campaign worker pools run under.

    ``start_method`` (or the ``REPRO_MP_START_METHOD`` environment
    variable) forces a start method; otherwise ``fork`` is used where
    the platform provides it, with ``spawn`` as the portable fallback.
    Campaign results are identical under either method: ``spawn``
    re-randomizes each worker's interpreter hash seed, which the
    CRC32-keyed address mapping makes irrelevant to outcomes.
    """
    method = start_method or os.environ.get("REPRO_MP_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


def _worker_eval(
    item: tuple[int, Mutant],
) -> tuple[int, MutantResult, dict | None]:
    index, mutant = item
    context = _WORKER_CONTEXT
    assert context is not None
    before = context.stats_view()
    result = _run_one(mutant, context)
    return index, result, _stats_delta(before, context.stats_view())


def _evaluate_parallel(
    setup: CampaignSetup,
    indices: list[int],
    backend: str | None,
    compile_cache: bool,
    boot_checkpoint: bool,
    checkpoint_granularity: str,
    granularity_pinned: bool,
    checkpoint_plan: str | None,
    workers: int,
    progress: ProgressFn | None,
) -> tuple[list[MutantResult], dict | None]:
    """Evaluate the indexed mutants on a process pool, merging by index.

    Each mutant evaluation is independent and deterministic, so the merge
    is seed-stable: ``workers=N`` equals ``workers=1`` result-for-result,
    and the per-mutant checkpoint-counter deltas sum to the serial
    ``checkpoint_stats`` regardless of how mutants land on workers.
    ``progress`` is invoked in completion order (indices may interleave).
    """
    context = _pool_context()
    worker_count = min(workers, len(indices))
    chunksize = max(1, len(indices) // (worker_count * 8))
    slots = {index: slot for slot, index in enumerate(indices)}
    results: list[MutantResult | None] = [None] * len(indices)
    stats: dict | None = None
    with context.Pool(
        worker_count,
        initializer=_worker_init,
        initargs=(
            setup.source,
            setup.driver_filename,
            setup.registry,
            setup.budget,
            backend,
            compile_cache,
            boot_checkpoint,
            checkpoint_granularity,
            checkpoint_plan,
            granularity_pinned,
        ),
    ) as pool:
        completed = 0
        for index, result, delta in pool.imap_unordered(
            _worker_eval,
            [(index, setup.tested[index]) for index in indices],
            chunksize=chunksize,
        ):
            results[slots[index]] = result
            stats = _merge_stats(stats, delta)
            if progress is not None:
                progress(completed, len(indices))
            completed += 1
    assert all(result is not None for result in results)
    return results, stats  # type: ignore[return-value]


# -- Devil specification campaigns ----------------------------------------------


def run_devil_campaign(
    spec_name: str,
    fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    progress: ProgressFn | None = None,
    compile_cache: bool = True,
) -> DevilCampaignResult:
    """Mutation campaign against a bundled Devil spec (one Table 2 row).

    ``compile_cache`` routes variant checking through
    :class:`repro.devil.incremental.SpecCampaignCompiler`, which
    re-lexes only the mutated line and re-parses only the mutated
    declaration(s); campaign results are identical to the from-scratch
    ``spec_errors`` pipeline (``compile_cache=False``).
    """
    source = load_spec_source(spec_name)
    device = parse_spec(source, spec_name)
    # The unmutated spec must be accepted.
    compile_spec(source, spec_name)

    compiler = (
        SpecCampaignCompiler(source, spec_name) if compile_cache else None
    )
    mutants = enumerate_devil_mutants(
        source, device, spec_name, compiler=compiler
    )
    tested = sample_mutants(mutants, fraction, seed)
    result = DevilCampaignResult(
        spec_name=spec_name,
        lines=count_code_lines(source),
        sites=len({m.site.key for m in mutants}),
        enumerated=len(mutants),
    )
    for index, mutant in enumerate(tested):
        if progress is not None:
            progress(index, len(tested))
        mutated = mutant.apply(source)
        if compiler is not None:
            errors = compiler.errors_for_variant(mutated)
        else:
            errors = spec_errors(mutated, spec_name)
        outcome = (
            BootOutcome.COMPILE_CHECK if errors else BootOutcome.BOOT
        )
        detail = errors[0].code if errors else "accepted"
        result.results.append(
            MutantResult(mutant=mutant, outcome=outcome, detail=detail)
        )
    return result


def count_code_lines(source: str) -> int:
    """Non-blank, non-comment-only lines (the paper's spec line counts)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count
