"""Literal mutation rules (paper §3.1).

"Typographical errors are the result of an additional character, a missing
character or a replaced character in a literal constant."  For an n-digit
base-b number that yields n removals (unless it would empty the literal),
(n+1)·b insertions and n·(b-1) replacements — the paper's example: a
2-digit decimal yields 2 + 30 + 18 = 50 mutants.

Character changes stay within the literal's semantic class (decimal digits
with decimal, hex digits with hex, mask characters with masks), and every
candidate whose *value* equals the original is dropped (mutants must
differ semantically).
"""

from __future__ import annotations

DECIMAL_DIGITS = "0123456789"
HEX_DIGITS = "0123456789abcdef"
OCTAL_DIGITS = "01234567"

#: Character classes of Devil patterns (paper §3.2): bit strings (enum
#: value patterns) use 0/1/*; register masks additionally use '.'.
BIT_STRING_CHARS = "01*"
BIT_PATTERN_CHARS = "01*."


def char_edits(body: str, alphabet: str, allow_empty: bool = False) -> list[str]:
    """All single-character removals, insertions and replacements."""
    results: list[str] = []
    # Removals.
    if len(body) > 1 or allow_empty:
        for index in range(len(body)):
            results.append(body[:index] + body[index + 1 :])
    # Insertions.
    for index in range(len(body) + 1):
        for char in alphabet:
            results.append(body[:index] + char + body[index:])
    # Replacements.
    for index in range(len(body)):
        for char in alphabet:
            if char != body[index]:
                results.append(body[:index] + char + body[index + 1 :])
    return results


def mutate_integer_literal(
    text: str, value_of, max_length: int = 12
) -> list[str]:
    """Mutants of an integer literal, value-filtered.

    ``value_of`` maps literal text to its numeric value in the target
    language (C semantics differ from Devil's for leading zeros), and may
    raise to veto a malformed candidate.
    """
    prefix = ""
    suffix = ""
    body = text
    if body[:2].lower() == "0x":
        prefix, body = body[:2], body[2:]
        alphabet = HEX_DIGITS
    else:
        alphabet = DECIMAL_DIGITS
    while body and body[-1] in "uUlL":
        suffix = body[-1] + suffix
        body = body[:-1]
    if not body:
        return []

    try:
        original_value = value_of(text)
    except (ValueError, OverflowError):
        return []

    seen: set[str] = set()
    results: list[str] = []
    for candidate_body in char_edits(body.lower(), alphabet):
        candidate = prefix + candidate_body + suffix
        if candidate == text or candidate in seen:
            continue
        seen.add(candidate)
        if len(candidate) > max_length:
            continue
        try:
            if value_of(candidate) == original_value:
                continue
        except (ValueError, OverflowError):
            continue
        results.append(candidate)
    return results


def mutate_pattern_literal(pattern: str, alphabet: str) -> list[str]:
    """Mutants of a Devil bit pattern body (without quotes)."""
    seen: set[str] = set()
    results: list[str] = []
    for candidate in char_edits(pattern, alphabet):
        if candidate == pattern or candidate in seen or not candidate:
            continue
        seen.add(candidate)
        results.append(candidate)
    return results
