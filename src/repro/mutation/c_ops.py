"""C mutation operators (paper §3.3).

Sites are enumerated over the raw driver text (tagged regions only):

* integer literals — decimal/hex/octal character edits with C value
  semantics (a leading zero *changes* the value, unlike in Devil);
* operators — swapped within the classes of the paper's Table 1
  (:data:`OPERATOR_CLASSES`; reconstruction documented in DESIGN.md);
* identifiers — replaced by another identifier defined in the same file
  and semantic class.  Plain C collapses macros, variables and functions
  into integers after preprocessing, so those classes are broad; in CDevil
  the generated API adds its own classes (set functions, get functions,
  interface values), per the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.minic.lexer import lex_line, strip_comments
from repro.minic.tokens import CToken, CTokenKind, parse_c_int
from repro.mutation.literals import mutate_integer_literal
from repro.mutation.model import Mutant, MutationSite
from repro.mutation.tagging import Region, in_regions

#: Table 1 (reconstructed): operator confusion classes.  An operator may
#: mutate to any *other* member of any class containing it.
OPERATOR_CLASSES: tuple[frozenset[str], ...] = (
    frozenset({"&", "&&"}),
    frozenset({"|", "||"}),
    frozenset({"&", "|", "^"}),
    frozenset({"<<", ">>"}),
    frozenset({"<<", "<"}),
    frozenset({">>", ">"}),
    frozenset({"==", "="}),
    frozenset({"~", "!"}),
    frozenset({"+", "-"}),
    frozenset({"<", "<=", ">", ">=", "==", "!="}),
)


def operator_mutants(op: str) -> list[str]:
    """All same-class alternatives for an operator, deterministic order."""
    alternatives: list[str] = []
    for cls in OPERATOR_CLASSES:
        if op in cls:
            for candidate in sorted(cls):
                if candidate != op and candidate not in alternatives:
                    alternatives.append(candidate)
    return alternatives


#: Tokens that directly precede a declarator name (used to skip
#: declaration sites, which the paper does not mutate).
_DECL_PRECEDERS = frozenset(
    {
        "void", "char", "int", "long", "short", "unsigned", "signed",
        "struct", "const", "volatile", "inline", "static", "extern",
        "u8", "u16", "u32", "s8", "s16", "s32", "size_t", "*",
    }
)

_DIRECTIVE = re.compile(r"^(\s*#\s*)(\w+)(.*)$", re.DOTALL)


@dataclass
class IdentifierPools:
    """Same-file identifier classes for replacement (paper §3.1/§3.3).

    For plain C the paper is explicit that the pre-processor erases the
    distinctions — "the mutation rules for identifiers replace an
    identifier with any other defined identifier" — so the replacement
    pool is the *union* of macros, variables and functions.  Identifiers
    of the Devil-generated interface (CDevil only) instead stay within
    their semantic class: set functions, get functions, interface values.
    """

    functions: set[str] = field(default_factory=set)
    variables: set[str] = field(default_factory=set)
    macros: set[str] = field(default_factory=set)
    #: CDevil: generated-interface classes, name -> full class pool.
    api_classes: dict[str, frozenset[str]] = field(default_factory=dict)

    def replacements_for(self, name: str) -> list[str]:
        pool = self.api_classes.get(name)
        if pool is None:
            union = self.functions | self.variables | self.macros
            if name not in union:
                return []
            # Generated-interface names never replace plain identifiers.
            pool = frozenset(union)
        return sorted(pool - {name})


def scan_c_sites(
    source: str,
    filename: str,
    regions: list[Region],
    pools: IdentifierPools,
) -> list[tuple[MutationSite, list[str]]]:
    """Enumerate mutation sites and their replacement lists."""
    stripped = strip_comments(source)
    results: list[tuple[MutationSite, list[str]]] = []
    offset = 0
    for line_number, line in enumerate(stripped.split("\n"), start=1):
        directive = _DIRECTIVE.match(line)
        if directive is not None:
            results.extend(
                _scan_directive(
                    directive, line_number, offset, filename, regions, pools,
                    stripped,
                )
            )
        else:
            tokens = lex_line(line, line_number, filename)
            results.extend(
                _scan_tokens(tokens, offset, regions, pools, skip_decls=True)
            )
        offset += len(line) + 1
    return results


def _scan_directive(
    match: re.Match,
    line_number: int,
    line_offset: int,
    filename: str,
    regions: list[Region],
    pools: IdentifierPools,
    whole_source: str,
) -> list[tuple[MutationSite, list[str]]]:
    """Mutate the *body* of ``#define`` lines; skip other directives.

    Bodies of macros that are never used are skipped: a mutant there does
    not change the program's semantics, and the error model only admits
    semantically different mutants (paper §3.1).
    """
    if match.group(2) != "define":
        return []
    body = match.group(3)
    body_offset = match.end(2)
    tokens = lex_line(" " * body_offset + body, line_number, filename)
    # Skip the macro name (and a function-like parameter list).
    index = 0
    if index < len(tokens) and tokens[index].kind is CTokenKind.IDENT:
        name_token = tokens[index]
        uses = re.findall(rf"\b{re.escape(name_token.text)}\b", whole_source)
        if len(uses) < 2:  # the definition itself is the only occurrence
            return []
        index += 1
        if (
            index < len(tokens)
            and tokens[index].is_punct("(")
            and tokens[index].column == name_token.column + len(name_token.text)
        ):
            while index < len(tokens) and not tokens[index].is_punct(")"):
                index += 1
            index += 1
    return _scan_tokens(
        tokens[index:], line_offset, regions, pools, skip_decls=False
    )


def _scan_tokens(
    tokens: list[CToken],
    line_offset: int,
    regions: list[Region],
    pools: IdentifierPools,
    skip_decls: bool,
) -> list[tuple[MutationSite, list[str]]]:
    results: list[tuple[MutationSite, list[str]]] = []
    for position, token in enumerate(tokens):
        offset = line_offset + token.column - 1
        if not in_regions(regions, offset):
            continue
        previous = tokens[position - 1] if position > 0 else None

        if token.kind is CTokenKind.INT:
            replacements = mutate_integer_literal(token.text, parse_c_int)
            if replacements:
                results.append(
                    (
                        _site(token, offset, "literal", "int"),
                        replacements,
                    )
                )
            continue

        if token.kind is CTokenKind.PUNCT:
            replacements = operator_mutants(token.text)
            if replacements:
                results.append(
                    (
                        _site(token, offset, "operator", "table1"),
                        replacements,
                    )
                )
            continue

        if token.kind is CTokenKind.IDENT:
            if skip_decls and previous is not None and (
                previous.text in _DECL_PRECEDERS
                or previous.is_punct(".")
                or previous.is_punct("->")
            ):
                continue
            replacements = pools.replacements_for(token.text)
            if replacements:
                results.append(
                    (
                        _site(token, offset, "identifier", _class_name(token.text, pools)),
                        replacements,
                    )
                )
    return results


def _site(token: CToken, offset: int, kind: str, detail: str) -> MutationSite:
    return MutationSite(
        file=token.filename,
        line=token.line,
        column=token.column,
        offset=offset,
        length=len(token.text),
        original=token.text,
        kind=kind,
        detail=detail,
    )


def _class_name(name: str, pools: IdentifierPools) -> str:
    if name in pools.api_classes:
        return "api"
    if name in pools.functions:
        return "function"
    if name in pools.macros:
        return "macro"
    if name in pools.variables:
        return "variable"
    return "unknown"


def flatten(
    sites: list[tuple[MutationSite, list[str]]]
) -> list[Mutant]:
    return [
        Mutant(site=site, replacement=replacement)
        for site, replacements in sites
        for replacement in replacements
    ]
