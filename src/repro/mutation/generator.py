"""Mutant enumeration with syntactic validation.

The paper's rules guarantee mutants are "syntactically correct, and have a
different semantics than the original program".  Literal and identifier
edits preserve parse structure by construction; operator edits can break
it (``int t = 0`` → ``int t == 0``), so operator mutants are validated by
re-parsing and silently dropped when the result is not a program.
"""

from __future__ import annotations

from repro.devil import ast as devil_ast
from repro.devil.parser import parse as devil_parse
from repro.diagnostics import CompileError
from repro.minic.parser import Parser as CParser
from repro.minic.preprocessor import Preprocessor
from repro.minic.tokens import CToken, CTokenKind
from repro.mutation.c_ops import IdentifierPools, scan_c_sites
from repro.mutation.devil_ops import scan_devil_sites
from repro.mutation.model import Mutant, MutationSite
from repro.mutation.tagging import Region, tagged_regions


def enumerate_devil_mutants(
    source: str, device: devil_ast.DeviceSpec, filename: str = "<spec>"
) -> list[Mutant]:
    """All Devil mutants of a specification source."""
    mutants: list[Mutant] = []
    for site, replacements in scan_devil_sites(source, device, filename):
        for replacement in replacements:
            mutant = Mutant(site=site, replacement=replacement)
            if site.kind == "operator" and not _devil_parses(
                mutant.apply(source), filename
            ):
                continue
            mutants.append(mutant)
    return mutants


def enumerate_c_mutants(
    source: str,
    filename: str,
    pools: IdentifierPools,
    include_registry: dict[str, str] | None = None,
    regions: list[Region] | None = None,
) -> list[Mutant]:
    """All C mutants of a driver source's tagged regions."""
    if regions is None:
        regions = tagged_regions(source)
    mutants: list[Mutant] = []
    for site, replacements in scan_c_sites(source, filename, regions, pools):
        for replacement in replacements:
            mutant = Mutant(site=site, replacement=replacement)
            if site.kind == "operator" and not _c_parses(
                mutant.apply(source), filename, include_registry
            ):
                continue
            mutants.append(mutant)
    return mutants


def sites_of(mutants: list[Mutant]) -> set[tuple[str, int, int]]:
    """Distinct site keys of a mutant collection."""
    return {mutant.site.key for mutant in mutants}


def _devil_parses(source: str, filename: str) -> bool:
    try:
        devil_parse(source, filename)
    except CompileError:
        return False
    return True


def _c_parses(
    source: str, filename: str, include_registry: dict[str, str] | None
) -> bool:
    try:
        preprocessor = Preprocessor(include_registry)
        tokens = preprocessor.process(source, filename)
        tokens.append(CToken(CTokenKind.EOF, "", 1, 1, filename))
        CParser(tokens).parse_translation_unit()
    except CompileError:
        return False
    return True
