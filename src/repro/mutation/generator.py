"""Mutant enumeration with syntactic validation.

The paper's rules guarantee mutants are "syntactically correct, and have a
different semantics than the original program".  Literal and identifier
edits preserve parse structure by construction; operator edits can break
it (``int t = 0`` → ``int t == 0``), so operator mutants are validated by
re-parsing and silently dropped when the result is not a program.
"""

from __future__ import annotations

from repro.devil import ast as devil_ast
from repro.devil.incremental import SpecCampaignCompiler
from repro.devil.parser import parse as devil_parse
from repro.diagnostics import CompileError
from repro.minic.incremental import CampaignCompiler
from repro.minic.parser import Parser as CParser
from repro.minic.preprocessor import Preprocessor
from repro.minic.tokens import CToken, CTokenKind
from repro.mutation.c_ops import IdentifierPools, scan_c_sites
from repro.mutation.devil_ops import scan_devil_sites
from repro.mutation.model import Mutant, MutationSite
from repro.mutation.tagging import Region, tagged_regions


def enumerate_devil_mutants(
    source: str,
    device: devil_ast.DeviceSpec,
    filename: str = "<spec>",
    compiler: SpecCampaignCompiler | None = None,
) -> list[Mutant]:
    """All Devil mutants of a specification source.

    ``compiler`` reuses a campaign's spec compiler for the syntactic
    gate instead of building a second one.
    """
    checker = compiler
    if checker is None:
        try:
            checker = SpecCampaignCompiler(source, filename)
        except CompileError:
            pass  # unparsable baseline: keep the from-scratch gate

    def parses(variant: str) -> bool:
        if checker is not None:
            return checker.variant_parses(variant)
        return _devil_parses(variant, filename)

    mutants: list[Mutant] = []
    for site, replacements in scan_devil_sites(source, device, filename):
        for replacement in replacements:
            mutant = Mutant(site=site, replacement=replacement)
            if site.kind == "operator" and not parses(mutant.apply(source)):
                continue
            mutants.append(mutant)
    return mutants


def enumerate_c_mutants(
    source: str,
    filename: str,
    pools: IdentifierPools,
    include_registry: dict[str, str] | None = None,
    regions: list[Region] | None = None,
    compiler: CampaignCompiler | None = None,
) -> list[Mutant]:
    """All C mutants of a driver source's tagged regions.

    ``compiler`` reuses a campaign's incremental compiler for the
    syntactic gate instead of building a second one.
    """
    if regions is None:
        regions = tagged_regions(source)
    # Operator-mutant validation re-parses a whole variant per candidate;
    # the campaign compiler's splice parser answers the same accept /
    # reject question re-parsing only the mutated declaration.  Sources
    # that do not compile as a campaign baseline (never the case for the
    # bundled drivers) keep the from-scratch gate.
    checker = compiler
    if checker is None:
        try:
            checker = CampaignCompiler(filename, source, include_registry)
        except CompileError:
            pass

    def parses(variant: str) -> bool:
        if checker is not None:
            return checker.variant_parses(variant)
        return _c_parses(variant, filename, include_registry)

    mutants: list[Mutant] = []
    for site, replacements in scan_c_sites(source, filename, regions, pools):
        for replacement in replacements:
            mutant = Mutant(site=site, replacement=replacement)
            if site.kind == "operator" and not parses(mutant.apply(source)):
                continue
            mutants.append(mutant)
    return mutants


def sites_of(mutants: list[Mutant]) -> set[tuple[str, int, int]]:
    """Distinct site keys of a mutant collection."""
    return {mutant.site.key for mutant in mutants}


def _devil_parses(source: str, filename: str) -> bool:
    try:
        devil_parse(source, filename)
    except CompileError:
        return False
    return True


def _c_parses(
    source: str, filename: str, include_registry: dict[str, str] | None
) -> bool:
    try:
        preprocessor = Preprocessor(include_registry)
        tokens = preprocessor.process(source, filename)
        tokens.append(CToken(CTokenKind.EOF, "", 1, 1, filename))
        CParser(tokens).parse_translation_unit()
    except CompileError:
        return False
    return True
