"""Devil mutation operators (paper §3.2).

* literals — decimal/hex constants (Devil value semantics: a leading zero
  does not change the value, so such edits are filtered as semantically
  equal) and quoted bit patterns, mutated within their character class:
  value patterns use ``0 1 *``, register masks additionally ``.``;
* operators — the range/set separators ``,``/``..`` (only where both are
  grammatical, i.e. inside ``{...}`` sets; edits that leave the denoted
  set unchanged, like ``0,1`` → ``0..1``, are dropped) and the mapping
  arrows ``<=``/``=>``/``<=>``;
* identifiers — register, variable, type and port names replaced within
  their class at *use* sites; declaration-site variable names are not
  mutated ("such a mutation would only affect the stub name").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devil import ast
from repro.devil.lexer import tokenize
from repro.devil.tokens import Token, TokenKind, parse_devil_int
from repro.mutation.literals import (
    BIT_PATTERN_CHARS,
    BIT_STRING_CHARS,
    mutate_integer_literal,
    mutate_pattern_literal,
)
from repro.mutation.model import Mutant, MutationSite

_ARROWS = ("<=", "=>", "<=>")


@dataclass
class DevilPools:
    params: set[str] = field(default_factory=set)
    registers: set[str] = field(default_factory=set)
    variables: set[str] = field(default_factory=set)
    types: set[str] = field(default_factory=set)

    @classmethod
    def from_spec(cls, device: ast.DeviceSpec) -> "DevilPools":
        return cls(
            params={p.name for p in device.params},
            registers={r.name for r in device.registers},
            variables={v.name for v in device.variables},
            types={t.name for t in device.types},
        )

    def replacements_for(self, name: str) -> list[str]:
        for pool in (self.params, self.registers, self.variables, self.types):
            if name in pool:
                return sorted(pool - {name})
        return []

    def class_of(self, name: str) -> str:
        if name in self.params:
            return "port"
        if name in self.registers:
            return "register"
        if name in self.variables:
            return "variable"
        if name in self.types:
            return "type"
        return "unknown"


def scan_devil_sites(
    source: str, device: ast.DeviceSpec, filename: str = "<spec>"
) -> list[tuple[MutationSite, list[str]]]:
    """Enumerate Devil mutation sites with their replacements."""
    tokens = tokenize(source, filename)
    pools = DevilPools.from_spec(device)
    results: list[tuple[MutationSite, list[str]]] = []

    in_params = False
    param_depth = 0
    param_brace_depth = 0
    #: Stack of brace kinds: "set" ({..} after '@' or 'int') or "plain".
    braces: list[str] = []

    for index, token in enumerate(tokens):
        previous = tokens[index - 1] if index > 0 else None
        nxt = tokens[index + 1] if index + 1 < len(tokens) else None

        # Track the device parameter list (declaration sites, skipped).
        if token.is_punct("(") and previous is not None and (
            previous.kind is TokenKind.IDENT
            and index >= 2
            and tokens[index - 2].is_keyword("device")
        ):
            in_params = True
            param_depth = 1
            continue
        if in_params:
            if token.is_punct("("):
                param_depth += 1
            elif token.is_punct(")"):
                param_depth -= 1
                if param_depth == 0:
                    in_params = False
            elif token.is_punct("{"):
                param_brace_depth += 1
            elif token.is_punct("}"):
                param_brace_depth -= 1
            # Integer literals inside the parameter list are real sites
            # (port data sizes, offset ranges); so are the range operators
            # inside an offset set; identifiers (declarations) are not.
            if token.kind is TokenKind.INT:
                results.append(_literal_site(token, filename))
            elif (
                param_brace_depth > 0
                and token.text in (",", "..")
                and not _adjacent_set_edit_is_equal(tokens, index)
            ):
                replacement = ".." if token.text == "," else ","
                results.append(
                    (
                        _site(token, filename, "operator", "range"),
                        [replacement],
                    )
                )
            continue

        if token.is_punct("{"):
            kind = "plain"
            if previous is not None and (
                previous.is_punct("@") or previous.is_keyword("int")
            ):
                kind = "set"
            braces.append(kind)
            continue
        if token.is_punct("}"):
            if braces:
                braces.pop()
            continue

        if token.kind is TokenKind.INT:
            results.append(_literal_site(token, filename))
            continue

        if token.kind is TokenKind.BITPATTERN:
            is_mask = previous is not None and previous.is_keyword("mask")
            alphabet = BIT_PATTERN_CHARS if is_mask else BIT_STRING_CHARS
            replacements = [
                f"'{body}'"
                for body in mutate_pattern_literal(token.pattern_value, alphabet)
            ]
            if replacements:
                results.append(
                    (
                        _site(token, filename, "literal", "pattern"),
                        replacements,
                    )
                )
            continue

        if token.kind is TokenKind.PUNCT:
            if token.text in _ARROWS:
                results.append(
                    (
                        _site(token, filename, "operator", "mapping"),
                        [a for a in _ARROWS if a != token.text],
                    )
                )
                continue
            in_set = bool(braces) and braces[-1] == "set"
            if in_set and token.text in (",", ".."):
                if _adjacent_set_edit_is_equal(tokens, index):
                    continue
                replacement = ".." if token.text == "," else ","
                results.append(
                    (
                        _site(token, filename, "operator", "range"),
                        [replacement],
                    )
                )
            continue

        if token.kind is TokenKind.IDENT:
            # Skip declaration sites: names introduced by a keyword, and
            # enum member names (followed by a mapping arrow).
            if previous is not None and (
                previous.is_keyword("register")
                or previous.is_keyword("variable")
                or previous.is_keyword("type")
                or previous.is_keyword("device")
            ):
                continue
            if nxt is not None and nxt.text in _ARROWS:
                continue
            replacements = pools.replacements_for(token.text)
            if replacements:
                results.append(
                    (
                        _site(token, filename, "identifier", pools.class_of(token.text)),
                        replacements,
                    )
                )
    return results


def _adjacent_set_edit_is_equal(tokens: list[Token], index: int) -> bool:
    """Whether swapping ','/'..' here denotes the same integer set.

    ``a, b`` and ``a..b`` coincide exactly when ``b == a + 1`` (and for
    ``a..b`` → ``a, b`` when the range spans two values).
    """
    previous = tokens[index - 1] if index > 0 else None
    nxt = tokens[index + 1] if index + 1 < len(tokens) else None
    if (
        previous is None
        or nxt is None
        or previous.kind is not TokenKind.INT
        or nxt.kind is not TokenKind.INT
    ):
        return False
    return nxt.int_value == previous.int_value + 1


def _literal_site(
    token: Token, filename: str
) -> tuple[MutationSite, list[str]]:
    replacements = mutate_integer_literal(token.text, parse_devil_int)
    return (_site(token, filename, "literal", "int"), replacements)


def _site(token: Token, filename: str, kind: str, detail: str) -> MutationSite:
    return MutationSite(
        file=filename,
        line=token.line,
        column=token.column,
        offset=token.offset,
        length=token.length,
        original=token.text,
        kind=kind,
        detail=detail,
    )
