"""Worker-supervision policy and quarantine records for the engine.

The paper's subject is surviving misbehaving components; the engine
holds itself to the same standard.  :class:`SupervisionPolicy` is the
knob set that controls how `repro.engine.core.Engine` reacts to a
worker that crashes (its pipe EOFs / its sentinel fires), wedges (its
oldest lease outlives ``lease_timeout``), or is repeatably killed by a
single poison mutant:

* **crash** — the lost lease's unfinished indices are re-dispatched and
  the worker is respawned from the resident warm spec (fork workers
  re-inherit the parent's warm state; spawn workers rebuild from the
  portable plan file).  Results merge by sampled index and every
  evaluation is a pure function of the shared warm state, so a replayed
  lease reproduces the serial rows exactly — any crash schedule yields
  a campaign byte-identical to serial;
* **hang** — with ``lease_timeout`` set, a worker whose oldest
  in-flight lease exceeds the deadline is killed and handled as a
  crash.  Off by default: a timeout turns "slow" into "dead", which
  determinism-sensitive benchmarks must opt into;
* **poison** — a crashed multi-index lease is retried in shrinking
  (halved) leases, attributing the kill to a single index; a singleton
  that kills ``retry_budget`` fresh workers in a row is **quarantined**:
  the campaign gets a structured ``worker crash`` outcome row
  (`repro.kernel.outcomes.BootOutcome.WORKER_CRASH`) and the engine
  records a :class:`QuarantineRecord` instead of aborting.

Respawns back off exponentially (``backoff_base`` doubling up to
``backoff_cap``) so a crash loop cannot spin the host, and
``max_respawns`` is the campaign-level safety valve: exceeding it
raises `repro.engine.core.EngineError`, which the daemon degrades into
a typed ``("failed", ...)`` frame rather than a mid-stream disconnect.

Environment variables (read by :meth:`SupervisionPolicy.from_env`,
which `Engine` uses when no explicit policy is passed):

``REPRO_ENGINE_SUPERVISE``
    ``0``/``false``/``no`` disables supervision entirely — a dead
    worker aborts the campaign, the seed behaviour.  Default: on.
``REPRO_ENGINE_LEASE_TIMEOUT``
    Seconds a worker's oldest in-flight lease may run before the worker
    is killed and the lease re-dispatched.  Unset or ``<= 0``: off.
``REPRO_ENGINE_RETRY_BUDGET``
    Fresh workers a singleton lease may kill before its mutant is
    quarantined.  Default: 2 (so the third kill quarantines).
``REPRO_ENGINE_MAX_RESPAWNS``
    Campaign-level respawn budget; exceeding it fails the campaign.
    Unset or ``<= 0``: unbounded (quarantine already guarantees
    termination — each index can only crash a bounded number of
    leases).
``REPRO_ENGINE_RESPAWN_BACKOFF``
    Base respawn delay in seconds, doubling per respawn up to 1 s.
    ``0`` disables the sleep (the chaos tests set this).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


def _env_flag(name: str, default: bool) -> bool:
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    return value.strip().lower() not in ("0", "false", "no", "off")


def _env_float(name: str) -> float | None:
    value = os.environ.get(name)
    if value is None or value == "":
        return None
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {value!r}") from None


def _env_int(name: str) -> int | None:
    value = os.environ.get(name)
    if value is None or value == "":
        return None
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the engine reacts to crashed, wedged and poisonous workers."""

    #: Master switch: ``False`` restores the abort-on-worker-death
    #: behaviour (a dead worker raises ``EngineError``).
    enabled: bool = True
    #: Seconds a worker's *oldest* in-flight lease may run before the
    #: worker is presumed wedged, killed, and its leases re-dispatched.
    #: ``None``: never (the default — timeouts are an opt-in policy).
    lease_timeout: float | None = None
    #: Fresh workers a single index may kill before quarantine: the
    #: index is re-dispatched this many times, so kill ``retry_budget
    #: + 1`` quarantines.
    retry_budget: int = 2
    #: Campaign-level respawn budget (``None``: unbounded).  Exceeding
    #: it raises ``EngineError`` — the daemon's ``("failed", ...)``
    #: degradation path.
    max_respawns: int | None = None
    #: Respawn backoff: ``backoff_base * 2**n`` capped at
    #: ``backoff_cap`` before the (n+1)-th respawn.  Base 0 disables.
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    @classmethod
    def from_env(cls) -> "SupervisionPolicy":
        """The policy the environment variables above describe."""
        timeout = _env_float("REPRO_ENGINE_LEASE_TIMEOUT")
        if timeout is not None and timeout <= 0:
            timeout = None
        retry = _env_int("REPRO_ENGINE_RETRY_BUDGET")
        respawns = _env_int("REPRO_ENGINE_MAX_RESPAWNS")
        if respawns is not None and respawns <= 0:
            respawns = None
        backoff = _env_float("REPRO_ENGINE_RESPAWN_BACKOFF")
        return cls(
            enabled=_env_flag("REPRO_ENGINE_SUPERVISE", True),
            lease_timeout=timeout,
            retry_budget=retry if retry is not None else 2,
            max_respawns=respawns,
            backoff_base=backoff if backoff is not None else 0.05,
        )

    @classmethod
    def disabled(cls) -> "SupervisionPolicy":
        """The seed behaviour: any worker death aborts the campaign."""
        return cls(enabled=False)

    def backoff(self, respawn_count: int) -> float:
        """Seconds to pause before respawn number ``respawn_count + 1``."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** respawn_count))


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined campaign item: the structured engine-level note.

    The campaign's result list carries the matching ``WORKER_CRASH``
    outcome row at :attr:`index`; this record is the supervision-side
    evidence — what was quarantined, why, and how many fresh workers it
    took down first.  Records accumulate on ``Engine.quarantine`` for
    the engine's lifetime and ride each campaign result's
    ``quarantine`` tuple.
    """

    #: ``"crash"`` (the worker died evaluating it) or ``"hang"`` (the
    #: worker blew the lease timeout evaluating it).
    kind: str
    #: The item's sampled index within its campaign.
    index: int
    #: Human identity of the item (mutant id / fault description).
    item: str
    #: Fresh workers this index killed or wedged before quarantine.
    attempts: int
