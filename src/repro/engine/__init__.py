"""Warm campaign engine: persistent workers serving campaign requests.

The batch pipeline (`repro.mutation.runner`, `repro.distributed`) pays
its fixed costs — program assembly, mutant enumeration, baseline boot,
checkpoint-plan recording — once per OS process, which is once per
campaign (or worse, once per shard).  This package moves those costs to
*process-pool lifetime*: an :class:`Engine` forks a worker pool once
with the warm state resident, then evaluates any number of campaign
requests against it, dealing the sampled mutant index space out as
work-stealing leases (`repro.engine.scheduler`).  Results are
byte-identical to the serial runner for any worker count and any steal
schedule, because evaluation reuses the serial code paths and the merge
is keyed by sampled index (`repro.engine.state`).

Front ends, closest-first:

* ``Engine`` / ``run_engine_campaign`` — in-process;
* ``run_driver_campaign(engine=...)`` — the classic entry point,
  engine-backed (likewise ``repro.faults.run_fault_campaign`` and
  ``repro.scenarios.run_scenario_campaign``);
* ``EngineClient`` ↔ ``python -m repro.engine serve`` — a Unix-socket
  daemon (`repro.engine.daemon`) whose warm state outlives submitting
  processes.
"""

from repro.engine.core import Engine, EngineError, run_engine_campaign
from repro.engine.daemon import CampaignFailedError, EngineClient, serve
from repro.engine.scheduler import (
    LeaseEvent,
    StealScheduler,
    default_lease_size,
)
from repro.engine.state import (
    CampaignRequest,
    FaultRequest,
    ScenarioRequest,
    SpecRequest,
    WarmSpec,
    WarmState,
)
from repro.engine.supervision import QuarantineRecord, SupervisionPolicy

__all__ = [
    "CampaignFailedError",
    "CampaignRequest",
    "Engine",
    "EngineClient",
    "EngineError",
    "FaultRequest",
    "LeaseEvent",
    "QuarantineRecord",
    "ScenarioRequest",
    "SpecRequest",
    "StealScheduler",
    "SupervisionPolicy",
    "WarmSpec",
    "WarmState",
    "default_lease_size",
    "run_engine_campaign",
    "serve",
]
