"""Work-stealing lease scheduler over a campaign's mutant index space.

PR 5's static stride shards cannot rebalance: a shard that drew the
budget-burning mutants finishes minutes after its siblings went idle.
The engine instead treats the sampled index space ``range(total)`` as a
pool of **chunked leases** — contiguous index ranges small enough to
rebalance, large enough to amortise per-message cost — dealt out on
demand:

* every worker starts with its own contiguous block of the index space,
  split into lease-sized chunks (good locality: neighbouring mutants
  share incremental-compile state in the worker's warm caches);
* a worker that drains its own block **steals from the most loaded
  peer**, taking the victim's *newest* chunk (classic steal-from-tail:
  the victim keeps working the oldest end of its block undisturbed).

Determinism does not depend on any of this: results merge by sampled
index and every mutant evaluation is independent (the property the
parallel runner already relies on), so *any* steal schedule — including
the adversarial ones the test suite forces through fake schedulers —
reconstructs the serial campaign byte for byte.  The scheduler contract
is a single method, ``next_lease(worker_id) -> range | None``, and the
engine validates that whatever implements it covers every index exactly
once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

#: Target number of leases dealt to each worker's own block; more gives
#: finer rebalancing, fewer gives less messaging.  The engine's
#: round-trip cost per lease is one pipe message pair, so ~8 leases per
#: worker keeps scheduling overhead well under 1 % of campaign time.
LEASES_PER_WORKER = 8

#: Lease-size ceiling: even huge campaigns stay rebalanceable because no
#: single lease pins more than this many mutants to one worker.
MAX_LEASE = 64


def default_lease_size(total: int, worker_count: int) -> int:
    """The default chunk size for ``total`` indices over ``worker_count``."""
    if total <= 0:
        return 1
    target = -(-total // (worker_count * LEASES_PER_WORKER))  # ceil div
    return max(1, min(MAX_LEASE, target))


@dataclass(frozen=True)
class LeaseEvent:
    """One scheduling decision, recorded for inspection and tests."""

    worker_id: int
    #: A ``range`` for first-dispatch leases; reclaimed leases come
    #: back as explicit index tuples.
    lease: range | tuple
    #: The worker the lease was stolen from (``None``: the worker's own
    #: block).
    victim: int | None = None
    #: ``True`` when the lease re-dispatches indices a dead worker lost
    #: (:meth:`StealScheduler.reclaim`).
    reclaimed: bool = False


class StealScheduler:
    """Chunked leases over ``range(total)`` with steal-on-idle.

    The index space is partitioned into per-worker contiguous blocks
    (sizes differing by at most one), each split into ``lease_size``
    chunks.  ``next_lease(worker_id)`` serves the worker's own oldest
    chunk first; once its block is drained, it steals the newest chunk
    of the peer with the most chunks remaining (lowest worker id on
    ties).  Returns ``None`` only when the whole index space has been
    dealt out.

    Scheduling is a deterministic function of the request sequence, so
    replaying the recorded ``history`` reproduces a run's exact lease
    assignment — useful for debugging, never required for correctness.
    """

    def __init__(
        self, total: int, worker_count: int, lease_size: int | None = None
    ):
        if total < 0:
            raise ValueError(f"total {total} must be >= 0")
        if worker_count < 1:
            raise ValueError(f"worker_count {worker_count} must be >= 1")
        if lease_size is None:
            lease_size = default_lease_size(total, worker_count)
        if lease_size < 1:
            raise ValueError(f"lease_size {lease_size} must be >= 1")
        self.total = total
        self.worker_count = worker_count
        self.lease_size = lease_size
        self.history: list[LeaseEvent] = []
        self._queues: list[deque[range]] = []
        base, extra = divmod(total, worker_count)
        start = 0
        for worker in range(worker_count):
            size = base + (1 if worker < extra else 0)
            block = range(start, start + size)
            start += size
            queue: deque[range] = deque()
            for chunk_start in range(block.start, block.stop, lease_size):
                queue.append(
                    range(chunk_start, min(chunk_start + lease_size, block.stop))
                )
            self._queues.append(queue)
        #: Leases a supervised worker died holding, returned through
        #: :meth:`reclaim` — served before any undealt block because
        #: they gate campaign completion.
        self._reclaimed: deque[tuple[int, ...]] = deque()

    def remaining(self) -> int:
        """Indices not yet dealt out (reclaimed leases included)."""
        return sum(
            len(chunk) for queue in self._queues for chunk in queue
        ) + sum(len(chunk) for chunk in self._reclaimed)

    def reclaim(self, indices) -> None:
        """Return a lost lease's unfinished indices to the pool.

        The engine's supervisor calls this when a worker dies (or is
        killed for blowing the lease timeout) with the lease in flight.
        Reclaimed chunks are re-dealt to whichever worker asks first,
        ahead of undealt blocks — the campaign cannot finish until they
        land, so they must not queue behind bulk work.
        """
        chunk = tuple(indices)
        if chunk:
            self._reclaimed.append(chunk)

    def next_lease(self, worker_id: int) -> range | tuple | None:
        if not 0 <= worker_id < self.worker_count:
            raise ValueError(
                f"worker_id {worker_id} outside [0, {self.worker_count})"
            )
        if self._reclaimed:
            lease = self._reclaimed.popleft()
            self.history.append(
                LeaseEvent(worker_id, lease, reclaimed=True)
            )
            return lease
        own = self._queues[worker_id]
        if own:
            lease = own.popleft()
            self.history.append(LeaseEvent(worker_id, lease))
            return lease
        victim = None
        victim_load = 0
        for peer, queue in enumerate(self._queues):
            load = sum(len(chunk) for chunk in queue)
            if load > victim_load:
                victim, victim_load = peer, load
        if victim is None:
            return None
        lease = self._queues[victim].pop()
        self.history.append(LeaseEvent(worker_id, lease, victim=victim))
        return lease
