"""Engine daemon CLI: ``python -m repro.engine <command>``.

Commands::

    serve      warm an engine once, answer campaigns on a Unix socket
    submit     run a driver campaign through a running daemon
    submit-spec  run a Devil spec campaign through a running daemon
    ping       check a daemon is up and warm
    shutdown   stop a running daemon

``serve`` holds the warm state (compiled baseline, enumerated mutants,
checkpoint plan, machine snapshots) resident for its whole lifetime;
every ``submit`` reuses it, so the Nth campaign pays only evaluation
time.  ``submit --wait S`` retries the connect for up to ``S`` seconds,
so a client started in the same breath as the daemon simply blocks
until the engine is warm.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.distributed.sharding import DRIVERS, MODES
from repro.kernel.checkpoint import GRANULARITIES
from repro.mutation.sampling import DEFAULT_SEED
from repro.engine.daemon import EngineClient, serve
from repro.engine.state import CampaignRequest, SpecRequest
from repro.engine.supervision import SupervisionPolicy


def _request_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--driver", choices=DRIVERS, default="c")
    parser.add_argument("--mode", choices=MODES, default="debug")
    parser.add_argument("--fraction", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--backend", default=None)
    parser.add_argument(
        "--no-compile-cache",
        dest="compile_cache",
        action="store_false",
        help="full per-mutant compiles (reference path)",
    )
    parser.add_argument(
        "--boot-checkpoint",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="resume mutants from boot checkpoints "
        "(default: REPRO_BOOT_CHECKPOINT)",
    )
    parser.add_argument(
        "--granularity",
        choices=GRANULARITIES,
        default=None,
        help="checkpoint granularity "
        "(default: REPRO_CHECKPOINT_GRANULARITY, else subcall)",
    )
    parser.add_argument("--step-budget", type=int, default=None)


def _request(args) -> CampaignRequest:
    return CampaignRequest(
        driver=args.driver,
        mode=args.mode,
        fraction=args.fraction,
        seed=args.seed,
        backend=args.backend,
        compile_cache=args.compile_cache,
        boot_checkpoint=args.boot_checkpoint,
        granularity=args.granularity,
        step_budget=args.step_budget,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    server = commands.add_parser(
        "serve", help="warm the engine, answer campaigns on a Unix socket"
    )
    server.add_argument("--socket", required=True, help="Unix socket path")
    server.add_argument("--workers", type=int, default=None)
    server.add_argument(
        "--start-method", default=None,
        help="multiprocessing start method (default: REPRO_MP_START_METHOD, "
        "else fork)",
    )
    server.add_argument(
        "--lease-timeout", type=float, default=None,
        help="kill and respawn a worker whose lease runs longer than this "
        "many seconds (default: REPRO_ENGINE_LEASE_TIMEOUT, else off)",
    )
    server.add_argument(
        "--no-supervise",
        dest="supervise",
        action="store_false",
        help="disable worker supervision: any worker death aborts the "
        "campaign (default: REPRO_ENGINE_SUPERVISE)",
    )
    _request_arguments(server)
    server.add_argument(
        "--no-warm",
        dest="warm",
        action="store_false",
        help="skip pre-warming; state builds on the first submission",
    )
    server.set_defaults(supervise=None)

    submit = commands.add_parser(
        "submit", help="run a driver campaign through a running daemon"
    )
    submit.add_argument("--socket", required=True)
    submit.add_argument(
        "--wait", type=float, default=0.0,
        help="retry the connect for up to this many seconds",
    )
    _request_arguments(submit)

    spec = commands.add_parser(
        "submit-spec", help="run a Devil spec campaign through the daemon"
    )
    spec.add_argument("--socket", required=True)
    spec.add_argument("--wait", type=float, default=0.0)
    spec.add_argument("--spec", required=True, dest="spec_name")
    spec.add_argument("--fraction", type=float, default=1.0)
    spec.add_argument("--seed", type=int, default=DEFAULT_SEED)

    ping = commands.add_parser("ping", help="check the daemon is up")
    ping.add_argument("--socket", required=True)
    ping.add_argument("--wait", type=float, default=0.0)

    stop = commands.add_parser("shutdown", help="stop a running daemon")
    stop.add_argument("--socket", required=True)
    stop.add_argument("--wait", type=float, default=0.0)

    args = parser.parse_args(argv)

    if args.command == "serve":
        warm = (_request(args),) if args.warm else ()
        if args.supervise is False:
            supervision = SupervisionPolicy.disabled()
        else:
            supervision = SupervisionPolicy.from_env()
        if args.lease_timeout is not None:
            supervision = dataclasses.replace(
                supervision, lease_timeout=args.lease_timeout
            )
        serve(
            args.socket,
            workers=args.workers,
            warm=warm,
            start_method=args.start_method,
            ready=lambda: print(f"engine ready on {args.socket}", flush=True),
            supervision=supervision,
        )
        return 0

    client = EngineClient(args.socket, wait=args.wait)

    if args.command == "submit":
        campaign = client.run_campaign(_request(args))
        print(json.dumps({
            "driver": campaign.driver,
            "tested": campaign.tested,
            "enumerated": campaign.enumerated,
            "detected_fraction": round(campaign.detected_fraction(), 4),
            "checkpoint_stats": campaign.checkpoint_stats,
        }, indent=2))
        return 0

    if args.command == "submit-spec":
        campaign = client.run_spec_campaign(SpecRequest(
            spec_name=args.spec_name,
            fraction=args.fraction,
            seed=args.seed,
        ))
        print(json.dumps({
            "spec_name": campaign.spec_name,
            "tested": campaign.tested,
            "enumerated": campaign.enumerated,
            "detected": campaign.detected,
            "detected_fraction": round(campaign.detected_fraction, 4),
        }, indent=2))
        return 0

    if args.command == "ping":
        if client.ping():
            print("pong")
            return 0
        print("no answer", file=sys.stderr)  # pragma: no cover
        return 1  # pragma: no cover

    if args.command == "shutdown":
        client.shutdown()
        print("daemon stopped")
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def _run() -> int:
    from repro.engine.core import EngineError

    try:
        return main()
    except EngineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (FileNotFoundError, ConnectionRefusedError) as error:
        print(f"error: cannot reach daemon: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover
        return 130


if __name__ == "__main__":
    sys.exit(_run())
