"""The warm campaign engine: persistent workers, resident state, stealing.

`repro.distributed` made campaigns parallel but paid a fixed cost per
shard *process*: a fresh interpreter, a plan load, a baseline recompile.
On the committed benchmark that fixed cost swamped small slices — four
shards ran the sampled campaign at 0.4× the serial checkpointed speed.
:class:`Engine` removes the per-campaign process cost entirely:

* **pre-forked worker pool, warmed once** — the parent builds the warm
  state (compiled baseline, enumerated mutant population, incremental
  compiler, recorded checkpoint plan with its pristine machine
  snapshot) *before* forking, so under the default ``fork`` start
  method every worker inherits it by memory inheritance, paying zero
  setup.  Specs warmed after the pool exists are recorded once in the
  parent and shipped to workers as portable plan files
  (`repro.kernel.checkpoint.save_plan`) — a load, not a re-recording;
* **long-lived workers** — a worker evaluates mutants from any number
  of campaign submissions against its resident state; batch evaluation
  happens inside one process off the snapshot tree, with no per-mutant
  (or per-campaign) process setup;
* **work-stealing dispatch** — the sampled index space is dealt out as
  chunked leases by a `repro.engine.scheduler.StealScheduler` (or any
  object with its ``next_lease`` contract, which is how the test suite
  forces adversarial schedules).  Workers keep two leases in flight so
  the pipe round-trip hides behind evaluation.

Determinism: results carry their sampled index and merge positionally,
checkpoint-counter deltas sum commutatively, and each evaluation runs
the serial runner's own code path against state recorded once — so for
every ``(worker count, steal schedule)`` pair the assembled
`~repro.mutation.runner.CampaignResult` is byte-identical to the serial
run, and a warm engine's Nth campaign equals its cold-start equivalent.
The engine validates whatever scheduler it is given: a lease that
repeats or exceeds the index space raises :class:`EngineError` instead
of silently corrupting the merge.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import traceback
from multiprocessing import connection

from repro.mutation.runner import (
    CampaignResult,
    DevilCampaignResult,
    MutantResult,
    _merge_stats,
    _pool_context,
)
from repro.mutation.sampling import DEFAULT_SEED
from repro.engine.scheduler import StealScheduler
from repro.engine.state import (
    DEVIL_KIND,
    DRIVER_KIND,
    FAULT_KIND,
    CampaignRequest,
    FaultRequest,
    SpecRequest,
    WarmSpec,
    WarmState,
)
from repro.faults.campaign import FaultCampaignResult


class EngineError(RuntimeError):
    """A worker died, a scheduler misbehaved, or a request was invalid."""


#: Leases kept in flight per worker: the second lease queues in the pipe
#: while the first evaluates, so workers never idle on the round-trip.
PIPELINE_DEPTH = 2

#: Fork-inheritance hand-off: the parent points this at its warm states
#: immediately before forking the pool, so ``fork``-start workers reuse
#: the parent-built state instead of rebuilding it.  ``spawn`` workers
#: see ``None`` and build from the pickled warm payload instead.
_INHERITED_STATES: dict | None = None


def _worker_main(worker_id: int, conn, warm_payload) -> None:
    """One engine worker: warm states resident, evaluate leases forever."""
    states: dict[WarmSpec, WarmState] = {}
    if _INHERITED_STATES is not None:
        states.update(_INHERITED_STATES)
    try:
        for spec, plan_path in warm_payload:
            if spec not in states:
                states[spec] = WarmState.build(spec, plan_path=plan_path)
        while True:
            message = conn.recv()
            op = message[0]
            if op == "stop":
                break
            if op == "warm":
                _, spec, plan_path = message
                if spec not in states:
                    states[spec] = WarmState.build(spec, plan_path=plan_path)
                conn.send(("warmed", worker_id, spec))
            elif op == "eval":
                _, campaign_id, spec, fraction, seed, indices = message
                state = states[spec]
                tested = state.tested(fraction, seed)
                items = []
                for index in indices:
                    result, delta = state.evaluate(tested[index])
                    items.append((index, result, delta))
                conn.send(("results", worker_id, campaign_id, items))
            else:
                raise RuntimeError(f"unknown engine message {op!r}")
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception:
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class Engine:
    """A resident pool of warm workers serving campaign requests.

    ``warm`` lists requests (or :class:`WarmSpec`\\ s) whose state is
    built before the pool forks — the zero-cost inheritance path.
    Requests submitted later warm on first use.  ``scheduler_factory``
    (``(total, worker_count) -> scheduler``) replaces the default
    :class:`StealScheduler`; ``start_method`` forces a multiprocessing
    start method (default: ``REPRO_MP_START_METHOD``, else ``fork``
    where available).

    Use as a context manager, or call :meth:`close` — workers are
    daemonic either way, so an abandoned engine cannot outlive its
    process.
    """

    def __init__(
        self,
        workers: int | None = None,
        warm=(),
        scheduler_factory=None,
        lease_size: int | None = None,
        start_method: str | None = None,
    ):
        self.workers = workers or multiprocessing.cpu_count()
        if self.workers < 1:
            raise ValueError(f"workers {self.workers} must be >= 1")
        self._warm_requests = tuple(warm)
        self._scheduler_factory = scheduler_factory
        self._lease_size = lease_size
        self._start_method = start_method
        self._states: dict[WarmSpec, WarmState] = {}
        self._plan_paths: dict[WarmSpec, str | None] = {}
        self._worker_warmed: set[WarmSpec] = set()
        self._conns: list = []
        self._procs: list = []
        self._scratch = None
        self._campaign_id = 0
        self._started = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "Engine":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Warm the requested state, then fork the worker pool once."""
        if self._started:
            return
        if self._closed:
            raise EngineError("engine already closed")
        self._scratch = tempfile.mkdtemp(prefix="repro-engine-")
        for request in self._warm_requests:
            self._warm_parent(self._spec_of(request))
        ctx = _pool_context(self._start_method)
        payload = [
            (spec, self._plan_paths.get(spec)) for spec in self._states
        ]
        global _INHERITED_STATES
        if ctx.get_start_method() == "fork":
            _INHERITED_STATES = self._states
        try:
            for worker_id in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(worker_id, child_conn, payload),
                    daemon=True,
                    name=f"repro-engine-worker-{worker_id}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        finally:
            _INHERITED_STATES = None
        self._worker_warmed.update(self._states)
        self._started = True

    def close(self) -> None:
        """Stop the workers and remove the engine's scratch files."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        if self._scratch is not None:
            import shutil

            shutil.rmtree(self._scratch, ignore_errors=True)

    # -- warm state ------------------------------------------------------

    @staticmethod
    def _spec_of(request) -> WarmSpec:
        if isinstance(request, WarmSpec):
            return request
        return request.warm_spec()

    def _warm_parent(self, spec: WarmSpec) -> WarmState:
        """Build the parent's copy of ``spec``'s state (plan included)."""
        state = self._states.get(spec)
        if state is not None:
            return state
        state = WarmState.build(spec)
        plan_path = None
        if spec.kind == DRIVER_KIND and spec.boot_checkpoint:
            # Persist the recorded plan so workers warmed *after* the
            # fork load it instead of re-running the instrumented boot.
            from repro.kernel.checkpoint import save_plan

            plan_path = os.path.join(
                self._scratch, f"plan-{len(self._plan_paths)}.ckpt"
            )
            save_plan(
                state.context._plan,
                plan_path,
                state.setup.source,
                state.setup.driver_filename,
            )
        self._states[spec] = state
        self._plan_paths[spec] = plan_path
        return state

    def _ensure_warm(self, spec: WarmSpec) -> WarmState:
        state = self._warm_parent(spec)
        if self._started and spec not in self._worker_warmed:
            plan_path = self._plan_paths.get(spec)
            for conn in self._conns:
                conn.send(("warm", spec, plan_path))
            for conn in self._conns:
                message = self._recv(conn)
                if message[0] != "warmed" or message[2] != spec:
                    raise EngineError(
                        f"unexpected warm acknowledgement: {message[:2]}"
                    )
            self._worker_warmed.add(spec)
        return state

    def warm(self, request) -> None:
        """Build (or broadcast) the warm state for ``request`` now."""
        if not self._started:
            self.start()
        self._ensure_warm(self._spec_of(request))

    # -- campaign evaluation ---------------------------------------------

    def submit(self, request, progress=None, on_result=None):
        """Evaluate one campaign request against the warm pool.

        Returns the same result object the serial runner produces:
        `~repro.mutation.runner.CampaignResult` for
        :class:`CampaignRequest`,
        `~repro.mutation.runner.DevilCampaignResult` for
        :class:`SpecRequest`,
        `~repro.faults.campaign.FaultCampaignResult` for
        :class:`FaultRequest` — byte-identical to the cold-start
        equivalent.  ``on_result(index, result)`` streams results in
        completion order; ``progress(done, total)`` mirrors the serial
        runner's callback.
        """
        if not self._started:
            self.start()
        if self._closed:
            raise EngineError("engine already closed")
        request = request.resolved()
        spec = request.warm_spec()
        state = self._ensure_warm(spec)
        tested = state.tested(request.fraction, request.seed)
        results, stats = self._evaluate(
            spec, request.fraction, request.seed, len(tested),
            progress, on_result,
        )
        if spec.kind == FAULT_KIND:
            campaign = FaultCampaignResult(
                driver=spec.driver,
                mode=spec.mode,
                seed=request.seed,
                per_dimension=request.per_dimension,
                injection=request.injection,
                granularity=spec.granularity,
                dimensions=tuple(request.dimensions),
                clean_steps=state.fault_context.clean_steps,
                step_budget=state.fault_context.budget,
            )
            campaign.results = results
            campaign.checkpoint_stats = stats
            return campaign
        if spec.kind == DEVIL_KIND:
            campaign = DevilCampaignResult(
                spec_name=spec.spec_name,
                lines=state.lines,
                sites=state.sites,
                enumerated=state.enumerated,
            )
            campaign.results = results
            return campaign
        campaign = CampaignResult(
            driver=spec.driver,
            enumerated=state.enumerated,
            clean_steps=state.setup.clean_steps,
            step_budget=state.setup.budget,
        )
        campaign.results = results
        campaign.checkpoint_stats = stats
        return campaign

    def run_campaign(self, request: CampaignRequest, progress=None, on_result=None) -> CampaignResult:
        """`submit`, typed for driver campaigns (Tables 3/4)."""
        if not isinstance(request, CampaignRequest):
            raise EngineError(
                f"run_campaign takes a CampaignRequest, got {type(request)!r}"
            )
        return self.submit(request, progress=progress, on_result=on_result)

    def run_fault_campaign(
        self, request: FaultRequest, progress=None, on_result=None
    ) -> FaultCampaignResult:
        """`submit`, typed for environment-fault campaigns (`repro.faults`)."""
        if not isinstance(request, FaultRequest):
            raise EngineError(
                f"run_fault_campaign takes a FaultRequest, got {type(request)!r}"
            )
        return self.submit(request, progress=progress, on_result=on_result)

    def _evaluate(
        self, spec, fraction, seed, total, progress, on_result
    ) -> tuple[list[MutantResult], dict | None]:
        results: list[MutantResult | None] = [None] * total
        stats: dict | None = None
        if total == 0:
            return [], stats
        campaign_id = self._campaign_id
        self._campaign_id += 1
        if self._scheduler_factory is not None:
            scheduler = self._scheduler_factory(total, self.workers)
        else:
            scheduler = StealScheduler(
                total, self.workers, lease_size=self._lease_size
            )
        assigned = bytearray(total)
        outstanding = 0

        def dispatch(worker_id: int) -> bool:
            nonlocal outstanding
            lease = scheduler.next_lease(worker_id)
            if lease is None:
                return False
            indices = list(lease)
            for index in indices:
                if not 0 <= index < total:
                    raise EngineError(
                        f"scheduler leased index {index} outside "
                        f"[0, {total})"
                    )
                if assigned[index]:
                    raise EngineError(
                        f"scheduler leased index {index} twice"
                    )
                assigned[index] = 1
            if not indices:
                return True  # empty lease: legal no-op, ask again later
            self._conns[worker_id].send(
                ("eval", campaign_id, spec, fraction, seed, indices)
            )
            outstanding += 1
            return True

        conn_worker = {id(conn): wid for wid, conn in enumerate(self._conns)}
        for worker_id in range(self.workers):
            for _ in range(PIPELINE_DEPTH):
                if not dispatch(worker_id):
                    break
        done = 0
        while done < total:
            if outstanding == 0:
                raise EngineError(
                    f"scheduler ran dry after {done}/{total} results — "
                    "the lease sequence does not cover the index space"
                )
            for conn in connection.wait(self._conns):
                message = self._recv(conn)
                if message[0] == "warmed":  # late ack, never expected here
                    raise EngineError("warm acknowledgement during campaign")
                _, worker_id, got_campaign, items = message
                if got_campaign != campaign_id:
                    raise EngineError(
                        f"worker {worker_id} answered campaign "
                        f"{got_campaign}, expected {campaign_id}"
                    )
                outstanding -= 1
                for index, result, delta in items:
                    results[index] = result
                    stats = _merge_stats(stats, delta)
                    if on_result is not None:
                        on_result(index, result)
                    if progress is not None:
                        progress(done, total)
                    done += 1
                assert conn_worker[id(conn)] == worker_id
                dispatch(worker_id)
        assert all(result is not None for result in results)
        return results, stats  # type: ignore[return-value]

    def _recv(self, conn):
        try:
            message = conn.recv()
        except EOFError as error:
            raise EngineError(
                "an engine worker died mid-campaign (EOF on its pipe); "
                "its traceback, if any, preceded this on stderr"
            ) from error
        if message[0] == "error":
            raise EngineError(
                f"engine worker {message[1]} failed:\n{message[2]}"
            )
        return message


def run_engine_campaign(
    driver: str = "c",
    mode: str = "debug",
    fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    *,
    workers: int | None = None,
    backend: str | None = None,
    compile_cache: bool = True,
    boot_checkpoint: bool | None = None,
    checkpoint_granularity: str | None = None,
    step_budget: int | None = None,
    scheduler_factory=None,
    start_method: str | None = None,
    progress=None,
) -> CampaignResult:
    """One-call engine campaign: warm, fork, evaluate, tear down.

    The throwaway-engine convenience behind ``run-local --engine``,
    ``table3/table4 --engine`` and quick scripts; long-running services
    hold an :class:`Engine` (or talk to the `repro.engine.daemon`) so
    the warm state outlives a single campaign.
    """
    request = CampaignRequest(
        driver=driver,
        mode=mode,
        fraction=fraction,
        seed=seed,
        backend=backend,
        compile_cache=compile_cache,
        boot_checkpoint=boot_checkpoint,
        granularity=checkpoint_granularity,
        step_budget=step_budget,
    )
    with Engine(
        workers=workers,
        warm=(request,),
        scheduler_factory=scheduler_factory,
        start_method=start_method,
    ) as engine:
        return engine.run_campaign(request, progress=progress)
