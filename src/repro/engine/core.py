"""The warm campaign engine: persistent workers, resident state, stealing.

`repro.distributed` made campaigns parallel but paid a fixed cost per
shard *process*: a fresh interpreter, a plan load, a baseline recompile.
On the committed benchmark that fixed cost swamped small slices — four
shards ran the sampled campaign at 0.4× the serial checkpointed speed.
:class:`Engine` removes the per-campaign process cost entirely:

* **pre-forked worker pool, warmed once** — the parent builds the warm
  state (compiled baseline, enumerated mutant population, incremental
  compiler, recorded checkpoint plan with its pristine machine
  snapshot) *before* forking, so under the default ``fork`` start
  method every worker inherits it by memory inheritance, paying zero
  setup.  Specs warmed after the pool exists are recorded once in the
  parent and shipped to workers as portable plan files
  (`repro.kernel.checkpoint.save_plan`) — a load, not a re-recording;
* **long-lived workers** — a worker evaluates mutants from any number
  of campaign submissions against its resident state; batch evaluation
  happens inside one process off the snapshot tree, with no per-mutant
  (or per-campaign) process setup;
* **work-stealing dispatch** — the sampled index space is dealt out as
  chunked leases by a `repro.engine.scheduler.StealScheduler` (or any
  object with its ``next_lease`` contract, which is how the test suite
  forces adversarial schedules).  Workers keep two leases in flight so
  the pipe round-trip hides behind evaluation.
* **worker supervision** — the dispatch loop tracks every lease in
  flight per worker.  A worker that dies (sentinel fires, or its pipe
  hits EOF) is respawned from the resident warm state and its lost
  leases are re-dispatched; a worker that blows the optional lease
  deadline is killed and treated the same way.  A lease that
  *repeatably* kills fresh workers is binary-searched down to the
  single poison mutant, which is quarantined as a structured
  ``worker_crash`` result row instead of aborting the campaign.  See
  `repro.engine.supervision` for the policy knobs.

Determinism: results carry their sampled index and merge positionally,
checkpoint-counter deltas sum commutatively, and each evaluation runs
the serial runner's own code path against state recorded once — so for
every ``(worker count, steal schedule)`` pair the assembled
`~repro.mutation.runner.CampaignResult` is byte-identical to the serial
run, and a warm engine's Nth campaign equals its cold-start equivalent.
Supervision preserves the invariant because leases are answered by
all-or-nothing frames: a frame either merges completely (each index and
its stats delta exactly once) or was never written, so a lost lease
re-evaluates from the same warm state and lands in the same slots.  The
engine validates whatever scheduler it is given: a lease that repeats
or exceeds the index space raises :class:`EngineError` instead of
silently corrupting the merge.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import sys
import tempfile
import time
import traceback
from collections import deque
from multiprocessing import connection

from repro.mutation.runner import (
    CampaignResult,
    DevilCampaignResult,
    MutantResult,
    _merge_stats,
    _pool_context,
)
from repro.mutation.sampling import DEFAULT_SEED
from repro.engine.scheduler import StealScheduler
from repro.engine.state import (
    DEVIL_KIND,
    DRIVER_KIND,
    FAULT_KIND,
    SCENARIO_KIND,
    CampaignRequest,
    FaultRequest,
    ScenarioRequest,
    SpecRequest,
    WarmSpec,
    WarmState,
)
from repro.engine.supervision import QuarantineRecord, SupervisionPolicy
from repro.faults.campaign import FaultCampaignResult


class EngineError(RuntimeError):
    """A worker died, a scheduler misbehaved, or a request was invalid."""


#: Leases kept in flight per worker: the second lease queues in the pipe
#: while the first evaluates, so workers never idle on the round-trip.
PIPELINE_DEPTH = 2

#: Fork-inheritance hand-off: the parent points this at its warm states
#: immediately before forking the pool, so ``fork``-start workers reuse
#: the parent-built state instead of rebuilding it.  ``spawn`` workers
#: see ``None`` and build from the pickled warm payload instead.
_INHERITED_STATES: dict | None = None

#: Test-only fault injection point.  When set (or when the
#: ``REPRO_ENGINE_TEST_HOOK`` environment variable names a
#: ``module:function``), workers call ``hook(spec, index, item)``
#: immediately before evaluating each leased item.  The chaos harness
#: uses it to crash (``os._exit``) or wedge (``time.sleep``) workers on
#: chosen indices; production code never sets it.
_TEST_EVAL_HOOK = None


def _load_test_hook():
    """Resolve the eval hook for this worker process, if any."""
    if _TEST_EVAL_HOOK is not None:
        return _TEST_EVAL_HOOK
    target = os.environ.get("REPRO_ENGINE_TEST_HOOK")
    if not target:
        return None
    module_name, _, func_name = target.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def _worker_main(worker_id: int, conn, warm_payload) -> None:
    """One engine worker: warm states resident, evaluate leases forever."""
    states: dict[WarmSpec, WarmState] = {}
    if _INHERITED_STATES is not None:
        states.update(_INHERITED_STATES)
    hook = _load_test_hook()
    try:
        for spec, plan_path in warm_payload:
            if spec not in states:
                states[spec] = WarmState.build(spec, plan_path=plan_path)
        while True:
            message = conn.recv()
            op = message[0]
            if op == "stop":
                break
            if op == "warm":
                _, spec, plan_path = message
                if spec not in states:
                    states[spec] = WarmState.build(spec, plan_path=plan_path)
                conn.send(("warmed", worker_id, spec))
            elif op == "eval":
                _, campaign_id, spec, fraction, seed, indices = message
                state = states[spec]
                tested = state.tested(fraction, seed)
                items = []
                for index in indices:
                    item = tested[index]
                    if hook is not None:
                        hook(spec, index, item)
                    result, delta = state.evaluate(item)
                    items.append((index, result, delta))
                conn.send(("results", worker_id, campaign_id, items))
            else:
                raise RuntimeError(f"unknown engine message {op!r}")
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception:
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _Lease:
    """One eval message in flight: what was sent, and when it went out.

    ``sent_at`` is restamped whenever the lease reaches the head of its
    worker's in-flight queue — a pipelined second lease only *starts*
    evaluating once the first finishes, so its deadline clock must not
    run while it queues in the pipe.
    """

    __slots__ = ("campaign_id", "indices", "sent_at")

    def __init__(self, campaign_id: int, indices: tuple, sent_at: float):
        self.campaign_id = campaign_id
        self.indices = indices
        self.sent_at = sent_at


class Engine:
    """A resident pool of warm workers serving campaign requests.

    ``warm`` lists requests (or :class:`WarmSpec`\\ s) whose state is
    built before the pool forks — the zero-cost inheritance path.
    Requests submitted later warm on first use.  ``scheduler_factory``
    (``(total, worker_count) -> scheduler``) replaces the default
    :class:`StealScheduler`; ``start_method`` forces a multiprocessing
    start method (default: ``REPRO_MP_START_METHOD``, else ``fork``
    where available).  ``supervision`` is a
    `~repro.engine.supervision.SupervisionPolicy` (default: built from
    the ``REPRO_ENGINE_*`` environment); pass
    ``SupervisionPolicy.disabled()`` for the pre-supervision behaviour
    where any worker death aborts the campaign.

    Use as a context manager, or call :meth:`close` — workers are
    daemonic either way, so an abandoned engine cannot outlive its
    process.
    """

    def __init__(
        self,
        workers: int | None = None,
        warm=(),
        scheduler_factory=None,
        lease_size: int | None = None,
        start_method: str | None = None,
        supervision: SupervisionPolicy | None = None,
        close_timeout: float = 10.0,
    ):
        self.workers = workers or multiprocessing.cpu_count()
        if self.workers < 1:
            raise ValueError(f"workers {self.workers} must be >= 1")
        self._warm_requests = tuple(warm)
        self._scheduler_factory = scheduler_factory
        self._lease_size = lease_size
        self._start_method = start_method
        self.supervision = (
            supervision if supervision is not None
            else SupervisionPolicy.from_env()
        )
        self._close_timeout = close_timeout
        self._states: dict[WarmSpec, WarmState] = {}
        self._plan_paths: dict[WarmSpec, str | None] = {}
        self._worker_warmed: set[WarmSpec] = set()
        self._conns: list = []
        self._procs: list = []
        #: Per-worker FIFO of :class:`_Lease` — every eval message sent
        #: whose results frame has not come back.  Survives a failed
        #: campaign so the next one can drain stale frames.
        self._inflight: list[deque] = []
        #: Every `~repro.engine.supervision.QuarantineRecord` this
        #: engine has produced, across campaigns.
        self.quarantine: list[QuarantineRecord] = []
        self._ctx = None
        self._scratch = None
        self._campaign_id = 0
        self._started = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "Engine":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Warm the requested state, then fork the worker pool once."""
        if self._started:
            return
        if self._closed:
            raise EngineError("engine already closed")
        self._scratch = tempfile.mkdtemp(prefix="repro-engine-")
        for request in self._warm_requests:
            self._warm_parent(self._spec_of(request))
        self._ctx = _pool_context(self._start_method)
        for worker_id in range(self.workers):
            conn, proc = self._spawn_worker(worker_id)
            self._conns.append(conn)
            self._procs.append(proc)
            self._inflight.append(deque())
        self._worker_warmed.update(self._states)
        self._started = True

    def _spawn_worker(self, worker_id: int):
        """Start one worker against the current warm state.

        Used both by :meth:`start` and by mid-campaign respawns: the
        payload is rebuilt from the *current* ``_states``/``_plan_paths``
        maps, so a worker respawned after later warms still knows every
        spec the pool has acknowledged.  Under ``fork`` the states are
        inherited directly; under ``spawn`` the worker rebuilds from the
        pickled specs and portable plan files.
        """
        payload = [
            (spec, self._plan_paths.get(spec)) for spec in self._states
        ]
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        global _INHERITED_STATES
        if self._ctx.get_start_method() == "fork":
            _INHERITED_STATES = self._states
        try:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, child_conn, payload),
                daemon=True,
                name=f"repro-engine-worker-{worker_id}",
            )
            proc.start()
        finally:
            _INHERITED_STATES = None
        child_conn.close()
        return parent_conn, proc

    def _repair_pool(self) -> None:
        """Respawn any dead workers so the next submission starts healthy."""
        for worker_id, proc in enumerate(self._procs):
            if not proc.is_alive():
                self._respawn(worker_id)

    def _respawn(self, worker_id: int) -> None:
        """Replace a dead (or killed) worker with a fresh warm one."""
        old = self._procs[worker_id]
        try:
            self._conns[worker_id].close()
        except OSError:
            pass
        if old.is_alive():
            old.kill()
        old.join(timeout=self._close_timeout)
        conn, proc = self._spawn_worker(worker_id)
        self._conns[worker_id] = conn
        self._procs[worker_id] = proc
        self._inflight[worker_id].clear()

    def close(self) -> None:
        """Stop the workers and remove the engine's scratch files."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=self._close_timeout)
            if proc.is_alive():
                # Wedged worker: escalate SIGTERM, then SIGKILL — close()
                # must reap the pool even when an evaluation never
                # returns (the chaos suite wedges one on purpose).
                proc.terminate()
                proc.join(timeout=self._close_timeout)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=self._close_timeout)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        self._inflight = []
        if self._scratch is not None:
            import shutil

            shutil.rmtree(self._scratch, ignore_errors=True)

    # -- warm state ------------------------------------------------------

    @staticmethod
    def _spec_of(request) -> WarmSpec:
        if isinstance(request, WarmSpec):
            return request
        return request.warm_spec()

    def _warm_parent(self, spec: WarmSpec) -> WarmState:
        """Build the parent's copy of ``spec``'s state (plan included)."""
        state = self._states.get(spec)
        if state is not None:
            return state
        state = WarmState.build(spec)
        plan_path = None
        if spec.kind in (DRIVER_KIND, SCENARIO_KIND) and spec.boot_checkpoint:
            # Persist the recorded plan so workers warmed *after* the
            # fork load it instead of re-running the instrumented boot.
            from repro.kernel.checkpoint import save_plan

            plan_path = os.path.join(
                self._scratch, f"plan-{len(self._plan_paths)}.ckpt"
            )
            save_plan(
                state.context._plan,
                plan_path,
                state.setup.source,
                state.setup.driver_filename,
            )
        self._states[spec] = state
        self._plan_paths[spec] = plan_path
        return state

    def _ensure_warm(self, spec: WarmSpec) -> WarmState:
        state = self._warm_parent(spec)
        if self._started and spec not in self._worker_warmed:
            plan_path = self._plan_paths.get(spec)
            pending = []
            for worker_id in range(self.workers):
                try:
                    self._conns[worker_id].send(("warm", spec, plan_path))
                    pending.append(worker_id)
                except (BrokenPipeError, OSError) as error:
                    self._worker_died_warming(worker_id, error)
            for worker_id in pending:
                try:
                    self._await_warm_ack(worker_id, spec)
                except (EOFError, OSError) as error:
                    self._worker_died_warming(worker_id, error)
            self._worker_warmed.add(spec)
        return state

    def _worker_died_warming(self, worker_id: int, error) -> None:
        """A worker died during a warm broadcast: respawn or abort.

        A stale poison lease (or plain bad luck) can take a worker down
        between campaigns.  Under supervision the respawn builds every
        resident spec — the one being broadcast included, it is already
        in ``_states`` — so no acknowledgement is owed.
        """
        if not self.supervision.enabled:
            raise EngineError(
                "an engine worker died mid-campaign (EOF on its pipe); "
                "its traceback, if any, preceded this on stderr"
            ) from error
        self._respawn(worker_id)

    def _await_warm_ack(self, worker_id: int, spec) -> None:
        conn = self._conns[worker_id]
        while True:
            message = conn.recv()
            if message[0] == "results":
                # A failed campaign's frame still in the pipe: drop it
                # and its ledger entry, exactly like the dispatch loop.
                if self._inflight[worker_id]:
                    self._inflight[worker_id].popleft()
                continue
            break
        if message[0] == "error":
            raise EngineError(
                f"engine worker {message[1]} failed:\n{message[2]}"
            )
        if message[0] != "warmed" or message[2] != spec:
            raise EngineError(
                f"unexpected warm acknowledgement: {message[:2]}"
            )

    def warm(self, request) -> None:
        """Build (or broadcast) the warm state for ``request`` now."""
        if not self._started:
            self.start()
        self._ensure_warm(self._spec_of(request))

    # -- campaign evaluation ---------------------------------------------

    def submit(self, request, progress=None, on_result=None):
        """Evaluate one campaign request against the warm pool.

        Returns the same result object the serial runner produces:
        `~repro.mutation.runner.CampaignResult` for
        :class:`CampaignRequest`,
        `~repro.mutation.runner.DevilCampaignResult` for
        :class:`SpecRequest`,
        `~repro.faults.campaign.FaultCampaignResult` for
        :class:`FaultRequest`,
        `~repro.mutation.runner.CampaignResult` labelled
        ``scenario:<id>`` for :class:`ScenarioRequest` — byte-identical
        to the cold-start equivalent.  ``on_result(index, result)`` streams results in
        completion order; ``progress(done, total)`` mirrors the serial
        runner's callback.
        """
        if not self._started:
            self.start()
        if self._closed:
            raise EngineError("engine already closed")
        request = request.resolved()
        spec = request.warm_spec()
        state = self._ensure_warm(spec)
        tested = state.tested(request.fraction, request.seed)
        try:
            results, stats, quarantined = self._evaluate(
                spec, state, tested, request.fraction, request.seed,
                progress, on_result,
            )
        except BaseException:
            # A failed campaign must not poison the pool: respawn any
            # dead workers now, and leave still-running leases on the
            # in-flight ledger — the next submission drains their stale
            # frames instead of merging them.
            if self.supervision.enabled and not self._closed:
                self._repair_pool()
            raise
        if spec.kind == FAULT_KIND:
            campaign = FaultCampaignResult(
                driver=spec.driver,
                mode=spec.mode,
                seed=request.seed,
                per_dimension=request.per_dimension,
                injection=request.injection,
                granularity=spec.granularity,
                dimensions=tuple(request.dimensions),
                clean_steps=state.fault_context.clean_steps,
                step_budget=state.fault_context.budget,
            )
            campaign.results = results
            campaign.checkpoint_stats = stats
            campaign.quarantine = quarantined
            return campaign
        if spec.kind == DEVIL_KIND:
            campaign = DevilCampaignResult(
                spec_name=spec.spec_name,
                lines=state.lines,
                sites=state.sites,
                enumerated=state.enumerated,
            )
            campaign.results = results
            campaign.quarantine = quarantined
            return campaign
        campaign = CampaignResult(
            # Scenario campaigns carry the serial runner's label so an
            # engine result compares byte-identical to a serial one.
            driver=(
                f"scenario:{spec.spec_name}"
                if spec.kind == SCENARIO_KIND
                else spec.driver
            ),
            enumerated=state.enumerated,
            clean_steps=state.setup.clean_steps,
            step_budget=state.setup.budget,
        )
        campaign.results = results
        campaign.checkpoint_stats = stats
        campaign.quarantine = quarantined
        return campaign

    def run_campaign(self, request: CampaignRequest, progress=None, on_result=None) -> CampaignResult:
        """`submit`, typed for driver campaigns (Tables 3/4)."""
        if not isinstance(request, CampaignRequest):
            raise EngineError(
                f"run_campaign takes a CampaignRequest, got {type(request)!r}"
            )
        return self.submit(request, progress=progress, on_result=on_result)

    def run_fault_campaign(
        self, request: FaultRequest, progress=None, on_result=None
    ) -> FaultCampaignResult:
        """`submit`, typed for environment-fault campaigns (`repro.faults`)."""
        if not isinstance(request, FaultRequest):
            raise EngineError(
                f"run_fault_campaign takes a FaultRequest, got {type(request)!r}"
            )
        return self.submit(request, progress=progress, on_result=on_result)

    def run_scenario_campaign(
        self, request: ScenarioRequest, progress=None, on_result=None
    ) -> CampaignResult:
        """`submit`, typed for generated-scenario campaigns (`repro.scenarios`)."""
        if not isinstance(request, ScenarioRequest):
            raise EngineError(
                f"run_scenario_campaign takes a ScenarioRequest, "
                f"got {type(request)!r}"
            )
        return self.submit(request, progress=progress, on_result=on_result)

    def _evaluate(
        self, spec, state, tested, fraction, seed, progress, on_result
    ) -> tuple[list[MutantResult], dict | None, tuple]:
        total = len(tested)
        results: list[MutantResult | None] = [None] * total
        stats: dict | None = None
        quarantined: list[QuarantineRecord] = []
        if total == 0:
            return [], stats, ()
        policy = self.supervision
        campaign_id = self._campaign_id
        self._campaign_id += 1
        if self._scheduler_factory is not None:
            scheduler = self._scheduler_factory(total, self.workers)
        else:
            scheduler = StealScheduler(
                total, self.workers, lease_size=self._lease_size
            )
        # Lost leases route back through the scheduler when it supports
        # reclaim (StealScheduler records them in its history); an
        # engine-internal queue covers bare next_lease schedulers.
        reclaimer = getattr(scheduler, "reclaim", None)
        pending: deque = deque()
        assigned = bytearray(total)
        outstanding = 0
        done = 0
        respawns = 0
        #: Per-index count of singleton-lease worker deaths: poison
        #: attribution only charges an index once a lease containing it
        #: *alone* kills the worker.
        crash_counts: dict[int, int] = {}

        # Stale heads (leases a failed earlier campaign left in flight)
        # start their deadline clock now, not at their original send.
        now = time.monotonic()
        for queue in self._inflight:
            if queue:
                queue[0].sent_at = now

        def requeue(indices) -> None:
            for index in indices:
                assigned[index] = 0
            if reclaimer is not None:
                reclaimer(indices)
            else:
                pending.append(tuple(indices))

        def dispatch(worker_id: int) -> bool:
            nonlocal outstanding
            if pending:
                lease = pending.popleft()
            else:
                lease = scheduler.next_lease(worker_id)
            if lease is None:
                return False
            indices = list(lease)
            for index in indices:
                if not 0 <= index < total:
                    raise EngineError(
                        f"scheduler leased index {index} outside "
                        f"[0, {total})"
                    )
                if assigned[index]:
                    raise EngineError(
                        f"scheduler leased index {index} twice"
                    )
                assigned[index] = 1
            if not indices:
                return True  # empty lease: legal no-op, ask again later
            try:
                self._conns[worker_id].send(
                    ("eval", campaign_id, spec, fraction, seed, indices)
                )
            except (BrokenPipeError, OSError) as error:
                if not policy.enabled:
                    raise EngineError(
                        "an engine worker died mid-campaign (EOF on its "
                        "pipe); its traceback, if any, preceded this on "
                        "stderr"
                    ) from error
                # Dead worker: put the lease back; the death itself is
                # handled when its sentinel / pipe EOF reports.
                requeue(indices)
                return True
            self._inflight[worker_id].append(
                _Lease(campaign_id, tuple(indices), time.monotonic())
            )
            outstanding += 1
            return True

        def record(index: int, result, delta) -> None:
            nonlocal done, stats
            results[index] = result
            stats = _merge_stats(stats, delta)
            if on_result is not None:
                on_result(index, result)
            if progress is not None:
                progress(done, total)
            done += 1

        def consume_results(worker_id: int, message, refill: bool) -> None:
            nonlocal outstanding
            _, got_worker, got_campaign, items = message
            queue = self._inflight[worker_id]
            if queue:
                queue.popleft()
            if queue:
                queue[0].sent_at = time.monotonic()
            if got_campaign != campaign_id:
                if got_campaign > campaign_id:
                    raise EngineError(
                        f"worker {worker_id} answered campaign "
                        f"{got_campaign}, expected {campaign_id}"
                    )
                return  # stale frame from a failed campaign: drained
            outstanding -= 1
            for index, result, delta in items:
                record(index, result, delta)
            if refill:
                dispatch(worker_id)

        def quarantine(index: int, kind: str, attempts: int) -> None:
            item = tested[index]
            row = state.crash_result(item, kind, attempts)
            entry = QuarantineRecord(
                kind=kind,
                index=index,
                item=state.describe_item(item),
                attempts=attempts,
            )
            quarantined.append(entry)
            self.quarantine.append(entry)
            record(index, row, None)

        def handle_lost_lease(indices: tuple, kind: str) -> None:
            if len(indices) == 1:
                index = indices[0]
                crash_counts[index] = attempts = crash_counts.get(index, 0) + 1
                if attempts > policy.retry_budget:
                    quarantine(index, kind, attempts)
                else:
                    requeue(indices)
                return
            # A multi-index lease died: binary-search for the poison
            # item by re-dispatching the halves separately.
            mid = len(indices) // 2
            requeue(indices[:mid])
            requeue(indices[mid:])

        def fail_worker(worker_id: int, kind: str) -> None:
            nonlocal outstanding, respawns
            if not policy.enabled:
                raise EngineError(
                    "an engine worker died mid-campaign (EOF on its pipe); "
                    "its traceback, if any, preceded this on stderr"
                )
            proc = self._procs[worker_id]
            if proc.is_alive():
                proc.kill()
            # The pipe outlives the writer: join first so a frame the
            # worker was mid-writing reads as a clean EOF, then salvage
            # every complete frame — those leases finished and must not
            # be re-evaluated.
            proc.join(timeout=self._close_timeout)
            conn = self._conns[worker_id]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] != "results":
                    break  # trailing error frame: the stream is done
                consume_results(worker_id, message, refill=False)
            lost = list(self._inflight[worker_id])
            self._inflight[worker_id].clear()
            for position, lease in enumerate(lost):
                if lease.campaign_id != campaign_id:
                    continue  # stale lease of a failed campaign: dropped
                outstanding -= 1
                if position == 0:
                    # Only the head lease was being evaluated when the
                    # worker died — it alone takes poison attribution.
                    handle_lost_lease(lease.indices, kind)
                else:
                    # Pipelined leases queued behind it were never
                    # touched: requeue them uncharged.
                    requeue(lease.indices)
            respawns += 1
            if (
                policy.max_respawns is not None
                and respawns > policy.max_respawns
            ):
                raise EngineError(
                    f"engine worker {worker_id} died and this campaign "
                    f"exhausted its respawn budget "
                    f"({policy.max_respawns}); raise "
                    "REPRO_ENGINE_MAX_RESPAWNS or fix the environment"
                )
            delay = policy.backoff(respawns - 1)
            if delay > 0:
                time.sleep(delay)
            self._respawn(worker_id)
            for _ in range(PIPELINE_DEPTH):
                if not dispatch(worker_id):
                    break

        for worker_id in range(self.workers):
            for _ in range(PIPELINE_DEPTH):
                if not dispatch(worker_id):
                    break
        while done < total:
            if outstanding == 0:
                # A quarantine or requeue may have freed work while
                # every pipeline sat empty — deal once more before
                # declaring the schedule short.
                for worker_id in range(self.workers):
                    for _ in range(PIPELINE_DEPTH):
                        if not dispatch(worker_id):
                            break
                if outstanding == 0:
                    raise EngineError(
                        f"scheduler ran dry after {done}/{total} results — "
                        "the lease sequence does not cover the index space"
                    )
                continue
            timeout = None
            if policy.enabled and policy.lease_timeout is not None:
                now = time.monotonic()
                expired = [
                    worker_id
                    for worker_id, queue in enumerate(self._inflight)
                    if queue
                    and now - queue[0].sent_at > policy.lease_timeout
                ]
                if expired:
                    for worker_id in expired:
                        fail_worker(worker_id, "hang")
                    continue
                deadlines = [
                    queue[0].sent_at + policy.lease_timeout
                    for queue in self._inflight
                    if queue
                ]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - now) + 0.01
            conn_map = {
                id(conn): worker_id
                for worker_id, conn in enumerate(self._conns)
            }
            sentinel_map = {
                proc.sentinel: worker_id
                for worker_id, proc in enumerate(self._procs)
            }
            waitables = list(self._conns)
            if policy.enabled:
                waitables.extend(sentinel_map)
            ready = connection.wait(waitables, timeout)
            ready_conns = [obj for obj in ready if id(obj) in conn_map]
            ready_sentinels = [
                obj
                for obj in ready
                if id(obj) not in conn_map and obj in sentinel_map
            ]
            for conn in ready_conns:
                if done >= total:
                    break
                worker_id = conn_map[id(conn)]
                if self._conns[worker_id] is not conn:
                    continue  # worker respawned earlier in this batch
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    fail_worker(worker_id, "crash")
                    continue
                if message[0] == "warmed":  # late ack, never expected here
                    raise EngineError("warm acknowledgement during campaign")
                if message[0] == "error":
                    if not policy.enabled:
                        raise EngineError(
                            f"engine worker {message[1]} failed:\n"
                            f"{message[2]}"
                        )
                    print(
                        f"repro-engine worker {message[1]} died evaluating "
                        f"a lease:\n{message[2]}",
                        file=sys.stderr,
                    )
                    fail_worker(worker_id, "crash")
                    continue
                consume_results(worker_id, message, refill=True)
            for sentinel in ready_sentinels:
                if done >= total:
                    break
                worker_id = sentinel_map[sentinel]
                proc = self._procs[worker_id]
                if proc.sentinel != sentinel:
                    continue  # already respawned this batch
                if proc.is_alive():
                    continue
                fail_worker(worker_id, "crash")
        assert all(result is not None for result in results)
        return results, stats, tuple(quarantined)  # type: ignore[return-value]

def run_engine_campaign(
    driver: str = "c",
    mode: str = "debug",
    fraction: float = 1.0,
    seed: int = DEFAULT_SEED,
    *,
    workers: int | None = None,
    backend: str | None = None,
    compile_cache: bool = True,
    boot_checkpoint: bool | None = None,
    checkpoint_granularity: str | None = None,
    step_budget: int | None = None,
    scheduler_factory=None,
    start_method: str | None = None,
    supervision: SupervisionPolicy | None = None,
    progress=None,
) -> CampaignResult:
    """One-call engine campaign: warm, fork, evaluate, tear down.

    The throwaway-engine convenience behind ``run-local --engine``,
    ``table3/table4 --engine`` and quick scripts; long-running services
    hold an :class:`Engine` (or talk to the `repro.engine.daemon`) so
    the warm state outlives a single campaign.
    """
    request = CampaignRequest(
        driver=driver,
        mode=mode,
        fraction=fraction,
        seed=seed,
        backend=backend,
        compile_cache=compile_cache,
        boot_checkpoint=boot_checkpoint,
        granularity=checkpoint_granularity,
        step_budget=step_budget,
    )
    with Engine(
        workers=workers,
        warm=(request,),
        scheduler_factory=scheduler_factory,
        start_method=start_method,
        supervision=supervision,
    ) as engine:
        return engine.run_campaign(request, progress=progress)
